//! The CNS lattice and the `Identify_MNS` algorithm (Section IV-A, Figure 8).
//!
//! For an input tuple `t` arriving at a consumer, the *candidate
//! non-demanded sub-tuples* (CNSs) are the combinations of `t`'s components
//! that appear in the consumer's join predicate towards the opposite input.
//! They form a lattice ordered by the sub-tuple relation (Figure 7). The
//! algorithm matches every lattice node against every tuple of the opposite
//! state and finally reports the *minimal* nodes that were never matched —
//! these are the MNSs.
//!
//! Two structural properties make this efficient (and are unit-tested here):
//!
//! 1. a node is matched by a state tuple iff **all** its level-1 descendants
//!    are (so per state tuple we only need the set of matched components);
//! 2. node death (having been matched at least once) is *downward closed*:
//!    if a node has been matched, every sub-tuple of it has been matched too,
//!    hence the alive set is upward closed and the MNSs are exactly the alive
//!    nodes all of whose children are dead.

use jit_metrics::{CostKind, RunMetrics};
use jit_types::SourceSet;

/// One node of the CNS lattice: a non-empty subset of the candidate sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CnsNode {
    sources: SourceSet,
    alive: bool,
}

/// The CNS lattice for one input tuple.
///
/// The lattice is built over *sources* rather than concrete sub-tuples:
/// a node's concrete sub-tuple is obtained by projecting the input tuple onto
/// the node's source set.
#[derive(Debug, Clone)]
pub struct CnsLattice {
    nodes: Vec<CnsNode>,
    candidates: SourceSet,
}

impl CnsLattice {
    /// Build the lattice over the given candidate sources (the components of
    /// the input tuple that appear in the consumer's join predicate towards
    /// the opposite input).
    ///
    /// The number of nodes is `2^|candidates| − 1`; the paper's experiments
    /// go up to 4 candidate components per input (15 nodes).
    pub fn new(candidates: SourceSet) -> Self {
        let nodes = candidates
            .non_empty_subsets()
            .into_iter()
            .map(|sources| CnsNode {
                sources,
                alive: true,
            })
            .collect();
        CnsLattice { nodes, candidates }
    }

    /// The candidate source set the lattice was built over.
    pub fn candidates(&self) -> SourceSet {
        self.candidates
    }

    /// Number of lattice nodes (excluding Ø).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Are all nodes dead (every CNS has found a match)? When true the caller
    /// can stop scanning the opposite state early.
    pub fn all_dead(&self) -> bool {
        self.nodes.iter().all(|n| !n.alive)
    }

    /// Record the outcome of matching the input's components against one
    /// opposite-state tuple: `matched_components` is the set of candidate
    /// sources whose level-1 predicates towards that tuple all hold.
    ///
    /// Per property (1), a node is matched by this tuple iff its source set
    /// is a subset of `matched_components`; matched nodes die.
    pub fn observe(&mut self, matched_components: SourceSet, metrics: &mut RunMetrics) {
        let mut visited = 0u64;
        for node in &mut self.nodes {
            if !node.alive {
                continue;
            }
            visited += 1;
            if node.sources.is_subset(matched_components) {
                node.alive = false;
            }
        }
        metrics.stats.lattice_nodes_visited += visited;
        metrics.charge(CostKind::LatticeNode, visited);
    }

    /// Is the node for `sources` still alive (never fully matched)?
    ///
    /// Used by the hash-indexed probe path, which establishes each node's
    /// death with one membership probe per node (largest nodes first, so a
    /// hit also kills every sub-node via [`CnsLattice::observe`]) instead of
    /// observing every stored tuple. Unknown source sets report as dead.
    pub fn is_alive(&self, sources: SourceSet) -> bool {
        self.nodes.iter().any(|n| n.sources == sources && n.alive)
    }

    /// The minimal alive nodes — the MNSs — as source sets.
    ///
    /// Because aliveness is upward closed, these are the alive nodes none of
    /// whose proper subsets (within the lattice) are alive.
    pub fn minimal_alive(&self) -> Vec<SourceSet> {
        let mut result = Vec::new();
        for node in &self.nodes {
            if !node.alive {
                continue;
            }
            let has_alive_subset = self.nodes.iter().any(|other| {
                other.alive
                    && other.sources != node.sources
                    && other.sources.is_subset(node.sources)
            });
            if !has_alive_subset {
                result.push(node.sources);
            }
        }
        result
    }

    /// Is the lattice empty (no candidate components)? In that case the input
    /// has no CNS other than Ø and the consumer cannot detect anything
    /// beyond the empty-state case.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::SourceId;

    fn set(ids: &[u16]) -> SourceSet {
        SourceSet::from_iter(ids.iter().map(|&i| SourceId(i)))
    }

    #[test]
    fn lattice_size_matches_subset_count() {
        let l = CnsLattice::new(set(&[0, 1, 2, 3]));
        assert_eq!(l.num_nodes(), 15);
        assert_eq!(l.candidates(), set(&[0, 1, 2, 3]));
        assert!(!l.is_empty());
        let empty = CnsLattice::new(SourceSet::EMPTY);
        assert!(empty.is_empty());
        assert_eq!(empty.num_nodes(), 0);
    }

    #[test]
    fn unmatched_singletons_are_reported_as_mns() {
        // Candidates {a, b}; a state tuple matches b only.
        let mut metrics = RunMetrics::new();
        let mut l = CnsLattice::new(set(&[0, 1]));
        l.observe(set(&[1]), &mut metrics);
        let mns = l.minimal_alive();
        // a never matched; ab never matched but contains alive child a → only a is minimal.
        assert_eq!(mns, vec![set(&[0])]);
        assert!(metrics.stats.lattice_nodes_visited > 0);
    }

    #[test]
    fn paper_example_figure5_scenario() {
        // Input abcd at Op4; SE has matching records of b and d, but not a, c.
        // Expected MNSs: {a} and {c} (ac is an NPR but not minimal).
        let mut metrics = RunMetrics::new();
        let mut l = CnsLattice::new(set(&[0, 1, 2, 3]));
        // A single E tuple matching components b and d.
        l.observe(set(&[1, 3]), &mut metrics);
        let mns = l.minimal_alive();
        assert_eq!(mns, vec![set(&[0]), set(&[2])]);
    }

    #[test]
    fn higher_level_mns_when_singletons_match_separately() {
        // Section IV-A discussion: e1 matches a, e2 matches c, but no single
        // tuple matches both — so ac is an MNS while a and c are not.
        let mut metrics = RunMetrics::new();
        let mut l = CnsLattice::new(set(&[0, 2]));
        l.observe(set(&[0]), &mut metrics); // e1 matches a only
        l.observe(set(&[2]), &mut metrics); // e2 matches c only
        let mns = l.minimal_alive();
        assert_eq!(mns, vec![set(&[0, 2])]);
    }

    #[test]
    fn fully_matched_tuple_has_no_mns() {
        let mut metrics = RunMetrics::new();
        let mut l = CnsLattice::new(set(&[0, 1]));
        l.observe(set(&[0, 1]), &mut metrics);
        assert!(l.all_dead());
        assert!(l.minimal_alive().is_empty());
    }

    #[test]
    fn no_observation_means_every_singleton_is_mns() {
        // An empty opposite state is special-cased by the caller (Ø MNS), but
        // a lattice that saw no observations reports all singletons.
        let l = CnsLattice::new(set(&[0, 1, 2]));
        assert_eq!(l.minimal_alive(), vec![set(&[0]), set(&[1]), set(&[2])]);
    }

    #[test]
    fn death_is_permanent_across_observations() {
        // A node that matched once stays dead even if later tuples don't match it.
        let mut metrics = RunMetrics::new();
        let mut l = CnsLattice::new(set(&[0, 1]));
        l.observe(set(&[0]), &mut metrics); // a matches
        l.observe(set(&[]), &mut metrics); // nothing matches
        let mns = l.minimal_alive();
        // a is dead; b is alive and minimal; ab has alive child b → not minimal.
        assert_eq!(mns, vec![set(&[1])]);
    }

    #[test]
    fn all_dead_enables_early_exit() {
        let mut metrics = RunMetrics::new();
        let mut l = CnsLattice::new(set(&[0]));
        assert!(!l.all_dead());
        l.observe(set(&[0]), &mut metrics);
        assert!(l.all_dead());
        let visits_before = metrics.stats.lattice_nodes_visited;
        // Observing after everything is dead visits nothing.
        l.observe(set(&[0]), &mut metrics);
        assert_eq!(metrics.stats.lattice_nodes_visited, visits_before);
    }

    #[test]
    fn minimality_never_reports_a_supertuple_of_another_mns() {
        // Property (i) of Section IV-A, checked exhaustively on a 3-candidate
        // lattice for every pattern of observations.
        for pattern in 0u32..(1 << 3) {
            let mut metrics = RunMetrics::new();
            let mut l = CnsLattice::new(set(&[0, 1, 2]));
            // One observation whose matched set is given by `pattern`.
            let matched =
                SourceSet::from_iter((0..3u16).filter(|i| pattern & (1 << i) != 0).map(SourceId));
            l.observe(matched, &mut metrics);
            let mns = l.minimal_alive();
            for a in &mns {
                for b in &mns {
                    if a != b {
                        assert!(!a.is_subset(*b), "MNS {a} is a subset of MNS {b}");
                    }
                }
            }
        }
    }
}
