//! # jit-core
//!
//! The paper's primary contribution: **Just-In-Time processing of continuous
//! queries** — a feedback mechanism between consumer and producer operators
//! that suppresses the generation of *non-demanded partial results* (NPRs)
//! and resumes their production exactly when a matching partner appears.
//!
//! The crate implements, on top of the `jit-exec` substrate:
//!
//! * [`lattice`] — the CNS lattice and the `Identify_MNS` algorithm
//!   (Section IV-A, Figure 8).
//! * [`bloom`] — Bloom-filter-accelerated MNS detection (Section IV-A).
//! * [`mns_buffer`] — the consumer-side buffer of detected MNSs, probed by
//!   arriving tuples to trigger resumption feedback.
//! * [`blacklist`] — the producer-side blacklist holding suspended tuples,
//!   including "similar" tuples with identical join-attribute signatures.
//! * [`jit_join`] — the JIT-enabled binary window join combining the
//!   consumer role (`Process_Input`, Figure 6) and the producer role
//!   (`Handle_Feedback`: suspend / resume / propagate, Section IV-B).
//! * [`jit_filter`] — JIT-aware selection and stream–static-relation join
//!   consumers (Section V, Figure 9), which issue suspension-only feedback.
//! * [`policy`] — configuration knobs ([`policy::JitPolicy`]): detection
//!   strategy (full lattice / Bloom / empty-state-only), similar-tuple
//!   capture, feedback propagation. The *empty-state-only* preset is exactly
//!   the DOE baseline the paper subsumes.
//! * [`doe`] — convenience constructors for the DOE baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blacklist;
pub mod bloom;
pub mod doe;
pub mod jit_filter;
pub mod jit_join;
pub mod lattice;
pub mod mns_buffer;
pub mod policy;

pub use blacklist::{Blacklist, BlacklistEntry, BlacklistedTuple, SuspendMode};
pub use bloom::BloomFilter;
pub use jit_join::JitJoinOperator;
pub use lattice::CnsLattice;
pub use mns_buffer::{MnsBuffer, MnsEntry};
pub use policy::{ExecutionMode, JitPolicy, MnsDetection};
