//! The DOE baseline (demand-driven operator execution).
//!
//! Section II describes DOE as the special case of JIT in which the only MNS
//! ever detected is the empty tuple Ø: a producer is suspended exactly when
//! the consumer's opposite state is empty (or when all of its own consumers
//! are suspended — which emerges from propagating the Ø feedback upstream).
//! This module provides constructors so experiments can instantiate the DOE
//! baseline without touching policy details.

use crate::jit_join::JitJoinOperator;
use crate::policy::JitPolicy;
use jit_types::{PredicateSet, SourceSet, Window};

/// Create a binary window join operating under the DOE policy.
pub fn doe_join(
    name: impl Into<String>,
    left_schema: SourceSet,
    right_schema: SourceSet,
    predicates: PredicateSet,
    window: Window,
) -> JitJoinOperator {
    JitJoinOperator::new(
        name,
        left_schema,
        right_schema,
        predicates,
        window,
        JitPolicy::doe(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MnsDetection;
    use jit_types::SourceId;

    #[test]
    fn doe_join_uses_empty_state_detection() {
        let op = doe_join(
            "A⋈B (DOE)",
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(1)),
            PredicateSet::clique(2),
            Window::minutes(5.0),
        );
        assert_eq!(op.policy().detection, MnsDetection::EmptyStateOnly);
        assert!(!op.policy().capture_similar);
        assert!(op.policy().propagate_feedback);
    }
}
