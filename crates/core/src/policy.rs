//! JIT configuration knobs.
//!
//! Section III-A stresses that the framework is flexible: a consumer "may
//! choose not to detect all MNSs", a producer "may decide to ignore the
//! message", and Section IV-B lists optional refinements (similar-tuple
//! capture, Type II handling). [`JitPolicy`] exposes these choices so the
//! ablation benchmarks can quantify each one, and so the DOE baseline falls
//! out as a preset.

use serde::{Deserialize, Serialize};

/// How a consumer detects minimal non-demanded sub-tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MnsDetection {
    /// Full `Identify_MNS` over the CNS lattice (Figure 8): finds every MNS.
    FullLattice,
    /// Bloom-filter probe per join attribute: cheaper, detects only
    /// single-component MNSs and may miss some (Section IV-A).
    Bloom,
    /// Only the empty tuple Ø is detected, when the opposite state is empty —
    /// this is exactly the DOE baseline subsumed by JIT (Section II).
    EmptyStateOnly,
}

/// Configuration of the JIT mechanism for one operator (or a whole plan).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitPolicy {
    /// MNS detection strategy used in the consumer role.
    pub detection: MnsDetection,
    /// Capture "similar" tuples (identical join-attribute signature) into the
    /// blacklist, so records like `a2` in the running example are suppressed
    /// together with `a1` (Section IV-B).
    pub capture_similar: bool,
    /// Propagate feedback to upstream operators (Section III-C). Without it,
    /// JIT only affects the immediate producer.
    pub propagate_feedback: bool,
    /// Handle Type II MNSs (sub-tuples spanning both of the producer's
    /// inputs) via mark-result feedback. When off, such MNSs are ignored by
    /// the producer, which is always legal (Section IV-B).
    pub handle_type2: bool,
    /// Number of bits in each Bloom filter (only used with
    /// [`MnsDetection::Bloom`]).
    pub bloom_bits: usize,
    /// Number of hash functions per Bloom filter.
    pub bloom_hashes: usize,
}

impl Default for JitPolicy {
    fn default() -> Self {
        JitPolicy::full()
    }
}

impl JitPolicy {
    /// The full JIT configuration used for the paper's headline results.
    pub fn full() -> Self {
        JitPolicy {
            detection: MnsDetection::FullLattice,
            capture_similar: true,
            propagate_feedback: true,
            handle_type2: false,
            bloom_bits: 4096,
            bloom_hashes: 3,
        }
    }

    /// The DOE baseline: suspend a producer only when the consumer's opposite
    /// state is empty.
    pub fn doe() -> Self {
        JitPolicy {
            detection: MnsDetection::EmptyStateOnly,
            capture_similar: false,
            propagate_feedback: true,
            handle_type2: false,
            ..JitPolicy::full()
        }
    }

    /// Bloom-filter detection: cheaper consumer-side cost, fewer MNSs found.
    pub fn bloom() -> Self {
        JitPolicy {
            detection: MnsDetection::Bloom,
            ..JitPolicy::full()
        }
    }

    /// Disable similar-tuple capture (ablation).
    pub fn without_similar_capture(mut self) -> Self {
        self.capture_similar = false;
        self
    }

    /// Disable feedback propagation (ablation).
    pub fn without_propagation(mut self) -> Self {
        self.propagate_feedback = false;
        self
    }
}

/// Which execution strategy a plan is built for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// The reference solution: plain window joins, no feedback (the paper's
    /// REF).
    Ref,
    /// Demand-driven operator execution: JIT restricted to Ø MNSs.
    Doe,
    /// Full JIT with the given policy.
    Jit(JitPolicy),
}

impl ExecutionMode {
    /// Short label used in reports and plots.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Ref => "REF",
            ExecutionMode::Doe => "DOE",
            ExecutionMode::Jit(_) => "JIT",
        }
    }

    /// The JIT policy to apply, if any.
    pub fn policy(&self) -> Option<JitPolicy> {
        match self {
            ExecutionMode::Ref => None,
            ExecutionMode::Doe => Some(JitPolicy::doe()),
            ExecutionMode::Jit(p) => Some(*p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_policy_enables_everything_but_type2() {
        let p = JitPolicy::full();
        assert_eq!(p.detection, MnsDetection::FullLattice);
        assert!(p.capture_similar);
        assert!(p.propagate_feedback);
        assert!(!p.handle_type2);
    }

    #[test]
    fn doe_policy_is_empty_state_only() {
        let p = JitPolicy::doe();
        assert_eq!(p.detection, MnsDetection::EmptyStateOnly);
        assert!(!p.capture_similar);
    }

    #[test]
    fn ablation_builders() {
        let p = JitPolicy::full().without_similar_capture();
        assert!(!p.capture_similar);
        let p = JitPolicy::full().without_propagation();
        assert!(!p.propagate_feedback);
        let p = JitPolicy::bloom();
        assert_eq!(p.detection, MnsDetection::Bloom);
    }

    #[test]
    fn execution_mode_labels_and_policies() {
        assert_eq!(ExecutionMode::Ref.label(), "REF");
        assert_eq!(ExecutionMode::Doe.label(), "DOE");
        assert_eq!(ExecutionMode::Jit(JitPolicy::full()).label(), "JIT");
        assert!(ExecutionMode::Ref.policy().is_none());
        assert_eq!(
            ExecutionMode::Doe.policy().unwrap().detection,
            MnsDetection::EmptyStateOnly
        );
        assert_eq!(
            ExecutionMode::Jit(JitPolicy::bloom())
                .policy()
                .unwrap()
                .detection,
            MnsDetection::Bloom
        );
    }

    #[test]
    fn default_is_full() {
        assert_eq!(JitPolicy::default(), JitPolicy::full());
    }

    #[test]
    fn serialises() {
        let p = JitPolicy::full();
        let json = serde_json::to_string(&p).unwrap();
        let back: JitPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
