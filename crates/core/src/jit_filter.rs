//! JIT-aware non-join consumers (Section V, Figure 9).
//!
//! A consumer does not need to be a join to benefit from JIT — it only needs
//! to detect MNSs. Two cases from the paper:
//!
//! * a **selection** (`σ A.x > 200`, Figure 9a): an input whose filtered
//!   component fails the predicate will never pass, no matter what arrives
//!   later, so that component is an MNS and the feedback is suspension-only;
//! * a **stream ⋈ static relation** (Figure 9b): components with no partner
//!   in the static relation can never obtain one, so again suspension-only
//!   feedback is issued.
//!
//! Neither consumer ever sends resumption feedback, which is why the paper
//! notes the producer may simply delete the suppressed tuples.

use crate::lattice::CnsLattice;
use jit_exec::operator::{
    DataMessage, OpContext, Operator, OperatorOutput, Port, ResultBlock, LEFT,
};
use jit_metrics::CostKind;
use jit_types::{
    BaseTuple, FastSet, Feedback, FilterPredicate, PredicateSet, SourceId, SourceSet, Tuple,
};
use std::sync::Arc;

/// A selection that reports the failing component as an MNS to its producer.
pub struct JitSelectionOperator {
    name: String,
    predicate: FilterPredicate,
    input_schema: SourceSet,
    reported: FastSet<jit_types::TupleKey>,
    reported_bytes: usize,
}

impl JitSelectionOperator {
    /// Create a JIT selection over inputs covering `input_schema`.
    pub fn new(
        name: impl Into<String>,
        predicate: FilterPredicate,
        input_schema: SourceSet,
    ) -> Self {
        JitSelectionOperator {
            name: name.into(),
            predicate,
            input_schema,
            reported: FastSet::default(),
            reported_bytes: 0,
        }
    }

    /// Number of distinct MNSs reported so far.
    pub fn reported_count(&self) -> usize {
        self.reported.len()
    }
}

impl Operator for JitSelectionOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        self.input_schema
    }

    fn num_ports(&self) -> usize {
        1
    }

    fn process(
        &mut self,
        _port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        ctx.metrics.stats.predicate_evals += 1;
        ctx.metrics.charge(CostKind::PredicateEval, 1);
        if self.predicate.holds_on(&msg.tuple).unwrap_or(false) {
            return OperatorOutput::with_results(vec![msg.clone()]);
        }
        // The component carrying the filtered column is non-demanded forever.
        let failing = msg
            .tuple
            .project(SourceSet::single(self.predicate.column.source));
        let mut output = OperatorOutput::empty();
        if !failing.is_empty() && self.reported.insert(failing.key()) {
            self.reported_bytes += failing.size_bytes();
            ctx.metrics.stats.mns_detected += 1;
            output
                .feedback
                .push((LEFT, Feedback::suspend(vec![failing])));
        }
        output
    }

    fn memory_bytes(&self) -> usize {
        self.reported_bytes
    }
}

/// A stream–static-relation join that reports stream components with no
/// partner in the relation as MNSs.
pub struct JitStaticJoinOperator {
    name: String,
    input_schema: SourceSet,
    relation_source: SourceId,
    relation: Vec<Arc<BaseTuple>>,
    relation_bytes: usize,
    predicates: PredicateSet,
    reported: FastSet<jit_types::TupleKey>,
    reported_bytes: usize,
}

impl JitStaticJoinOperator {
    /// Create the operator over the given static relation.
    pub fn new(
        name: impl Into<String>,
        input_schema: SourceSet,
        relation_source: SourceId,
        relation: Vec<Arc<BaseTuple>>,
        predicates: PredicateSet,
    ) -> Self {
        let relation_bytes = relation.iter().map(|t| t.size_bytes()).sum();
        JitStaticJoinOperator {
            name: name.into(),
            input_schema,
            relation_source,
            relation,
            relation_bytes,
            predicates,
            reported: FastSet::default(),
            reported_bytes: 0,
        }
    }
}

impl Operator for JitStaticJoinOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        self.input_schema
            .union(SourceSet::single(self.relation_source))
    }

    fn num_ports(&self) -> usize {
        1
    }

    fn process(
        &mut self,
        _port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        let rel_schema = SourceSet::single(self.relation_source);
        let candidates = self
            .predicates
            .sources_facing(msg.tuple.sources(), rel_schema);
        let mut lattice = if candidates.is_empty() || self.relation.is_empty() {
            None
        } else {
            Some(CnsLattice::new(candidates))
        };
        ctx.metrics.stats.state_probes += 1;
        let mut results = ResultBlock::new();
        let mut evals = 0u64;
        for rel_tuple in &self.relation {
            ctx.metrics.stats.probe_pairs += 1;
            ctx.metrics.charge(CostKind::ProbePair, 1);
            let rel = Tuple::from_base(rel_tuple.clone());
            // Per-component matching feeds the lattice and the join result.
            let mut matched = SourceSet::EMPTY;
            for source in candidates.iter() {
                let component = msg.tuple.project(SourceSet::single(source));
                let mut ok = true;
                for p in self.predicates.predicates() {
                    if p.spans(SourceSet::single(source), rel_schema) {
                        evals += 1;
                        if p.holds_across(&component, &rel) == Some(false) {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    matched.insert(source);
                }
            }
            if let Some(l) = lattice.as_mut() {
                l.observe(matched, ctx.metrics);
            }
            // Matches assemble columnar-ly, as in the symmetric join
            // ([`Tuple::join`] fails exactly when the coverages overlap, so
            // the disjointness guard is the same filter the row path
            // applied).
            if matched == candidates && msg.tuple.sources().is_disjoint(rel.sources()) {
                ctx.metrics.charge(CostKind::ResultBuild, 1);
                results.push_join(&msg.tuple, &rel, msg.marked);
            }
        }
        ctx.metrics.stats.predicate_evals += evals;
        ctx.metrics.charge(CostKind::PredicateEval, evals);

        // Report MNSs; the relation never changes, so suspension is final.
        let detected: Vec<Tuple> = if self.relation.is_empty() {
            vec![Tuple::empty()]
        } else {
            lattice
                .map(|l| {
                    l.minimal_alive()
                        .into_iter()
                        .map(|s| msg.tuple.project(s))
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut fresh = Vec::new();
        for mns in detected {
            if self.reported.insert(mns.key()) {
                self.reported_bytes += mns.size_bytes();
                ctx.metrics.stats.mns_detected += 1;
                fresh.push(mns);
            }
        }
        let mut output = OperatorOutput::with_columnar(results);
        if !fresh.is_empty() {
            output.feedback.push((LEFT, Feedback::suspend(fresh)));
        }
        output
    }

    fn memory_bytes(&self) -> usize {
        self.relation_bytes + self.reported_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_metrics::RunMetrics;
    use jit_types::{ColumnRef, EquiPredicate, FeedbackCommand, Timestamp, Value};

    fn a_msg(seq: u64, x: i64) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            seq,
            Timestamp::from_millis(seq * 10),
            vec![Value::int(x)],
        ))))
    }

    fn ab_msg(a_seq: u64, x: i64, b_seq: u64) -> DataMessage {
        let a = Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            a_seq,
            Timestamp::from_millis(a_seq * 10),
            vec![Value::int(x)],
        )));
        let b = Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(1),
            b_seq,
            Timestamp::from_millis(b_seq * 10),
            vec![Value::int(1)],
        )));
        DataMessage::new(a.join(&b).unwrap())
    }

    #[test]
    fn selection_passes_and_suspends() {
        let mut op = JitSelectionOperator::new(
            "σ A.x0>200",
            FilterPredicate::gt(ColumnRef::new(SourceId(0), 0), 200),
            SourceSet::first_n(2),
        );
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        // Passing tuple: forwarded, no feedback.
        let out = op.process(0, &ab_msg(1, 500, 1), &mut ctx);
        assert_eq!(out.results.len(), 1);
        assert!(out.feedback.is_empty());
        // Failing tuple: dropped, the A component is reported once.
        let out = op.process(0, &ab_msg(2, 100, 1), &mut ctx);
        assert!(out.results.is_empty());
        assert_eq!(out.feedback.len(), 1);
        assert_eq!(out.feedback[0].1.command, FeedbackCommand::Suspend);
        assert_eq!(
            out.feedback[0].1.mns_set[0].sources(),
            SourceSet::single(SourceId(0))
        );
        // The same failing component is not reported twice.
        let out = op.process(0, &ab_msg(2, 100, 2), &mut ctx);
        assert!(out.feedback.is_empty());
        assert_eq!(op.reported_count(), 1);
        assert!(op.memory_bytes() > 0);
    }

    #[test]
    fn static_join_joins_and_suspends_missing_components() {
        // Relation R_C over source 2 with values {1, 2}; predicate A.x0 = C.x0.
        let relation = vec![
            Arc::new(BaseTuple::new(
                SourceId(2),
                0,
                Timestamp::ZERO,
                vec![Value::int(1)],
            )),
            Arc::new(BaseTuple::new(
                SourceId(2),
                1,
                Timestamp::ZERO,
                vec![Value::int(2)],
            )),
        ];
        let preds = PredicateSet::from_predicates(vec![EquiPredicate::new(
            ColumnRef::new(SourceId(0), 0),
            ColumnRef::new(SourceId(2), 0),
        )]);
        let mut op = JitStaticJoinOperator::new(
            "⋈ R_C",
            SourceSet::single(SourceId(0)),
            SourceId(2),
            relation,
            preds,
        );
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        // Matching stream tuple joins, no feedback.
        let out = op.process(0, &a_msg(1, 2), &mut ctx);
        assert!(out.results.is_empty(), "static-join output is columnar");
        assert_eq!(out.columnar.map_or(0, |b| b.len()), 1);
        assert!(out.feedback.is_empty());
        // Non-matching tuple: no results, suspension naming the component.
        let out = op.process(0, &a_msg(2, 9), &mut ctx);
        assert!(out.columnar.is_none_or(|b| b.is_empty()));
        assert_eq!(out.feedback.len(), 1);
        assert_eq!(out.feedback[0].1.command, FeedbackCommand::Suspend);
        assert_eq!(
            op.output_schema(),
            SourceSet::from_iter([SourceId(0), SourceId(2)])
        );
        assert!(op.memory_bytes() > 0);
    }

    #[test]
    fn static_join_with_empty_relation_reports_empty_mns() {
        let preds = PredicateSet::new();
        let mut op = JitStaticJoinOperator::new(
            "⋈ ∅",
            SourceSet::single(SourceId(0)),
            SourceId(2),
            Vec::new(),
            preds,
        );
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        let out = op.process(0, &a_msg(1, 1), &mut ctx);
        assert!(out.results.is_empty());
        assert!(out.columnar.is_none_or(|b| b.is_empty()));
        assert_eq!(out.feedback.len(), 1);
        assert!(out.feedback[0].1.mns_set[0].is_empty());
        // Reported only once.
        let out = op.process(0, &a_msg(2, 1), &mut ctx);
        assert!(out.feedback.is_empty());
    }
}
