//! Bloom filters for cheap MNS detection.
//!
//! Section IV-A: when the consumer's join condition is an equi-join, a Bloom
//! filter maintained on the opposite state's join-attribute values can detect
//! (some) sub-tuples that cannot possibly have a match. A negative membership
//! answer is definitive ("no tuple in the state carries this value"), so
//! every MNS reported this way is sound; false positives merely cause missed
//! MNSs, never wrong ones.

use jit_types::Value;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A fixed-size Bloom filter over column values.
///
/// Insert-only: expired values are not removed, which only increases the
/// false-positive rate (fewer detected MNSs) and never affects correctness.
/// Callers may call [`BloomFilter::clear`] to rebuild it from the live state
/// when staleness accumulates.
///
/// The filter is plain data (`derive`d `Serialize`/`Deserialize`): a
/// durability checkpoint persists the exact bit pattern, so a restored
/// filter gives byte-identical membership answers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: usize,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter with `num_bits` bits and `num_hashes` hash functions.
    ///
    /// Both parameters are clamped to sensible minimums (64 bits, 1 hash).
    pub fn new(num_bits: usize, num_hashes: usize) -> Self {
        let num_bits = num_bits.max(64);
        let num_hashes = num_hashes.max(1);
        BloomFilter {
            bits: vec![0; num_bits.div_ceil(64)],
            num_bits,
            num_hashes,
            inserted: 0,
        }
    }

    /// The `i`-th hash of a value, in `[0, num_bits)`.
    fn bit_index(&self, value: &Value, i: usize) -> usize {
        let mut hasher = DefaultHasher::new();
        // Mix the hash-function index in so the k functions are independent.
        (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .hash(&mut hasher);
        value.hash(&mut hasher);
        (hasher.finish() % self.num_bits as u64) as usize
    }

    /// Record a value.
    pub fn insert(&mut self, value: &Value) {
        for i in 0..self.num_hashes {
            let idx = self.bit_index(value, i);
            self.bits[idx / 64] |= 1u64 << (idx % 64);
        }
        self.inserted += 1;
    }

    /// Might the value have been inserted? `false` is definitive.
    pub fn maybe_contains(&self, value: &Value) -> bool {
        (0..self.num_hashes).all(|i| {
            let idx = self.bit_index(value, i);
            self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
        })
    }

    /// Definitely absent?
    pub fn definitely_absent(&self, value: &Value) -> bool {
        !self.maybe_contains(value)
    }

    /// Number of insertions performed since the last clear.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Reset the filter to empty.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// Analytical size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8 + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_values_are_found() {
        let mut f = BloomFilter::new(1024, 3);
        for v in 0..100 {
            f.insert(&Value::int(v));
        }
        for v in 0..100 {
            assert!(f.maybe_contains(&Value::int(v)));
            assert!(!f.definitely_absent(&Value::int(v)));
        }
        assert_eq!(f.inserted(), 100);
    }

    #[test]
    fn most_absent_values_are_detected() {
        let mut f = BloomFilter::new(8192, 4);
        for v in 0..200 {
            f.insert(&Value::int(v));
        }
        // With 8192 bits / 200 values / 4 hashes the false-positive rate is
        // well under 1%; over 1000 absent probes we expect the vast majority
        // to be definitively absent.
        let absent = (10_000..11_000)
            .filter(|v| f.definitely_absent(&Value::int(*v)))
            .count();
        assert!(absent > 950, "only {absent} of 1000 detected as absent");
    }

    #[test]
    fn never_false_negative() {
        let mut f = BloomFilter::new(64, 2); // deliberately tiny
        let values: Vec<Value> = (0..500).map(Value::int).collect();
        for v in &values {
            f.insert(v);
        }
        // A saturated filter may answer "maybe" for everything, but it must
        // never answer "absent" for something inserted.
        assert!(values.iter().all(|v| f.maybe_contains(v)));
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(256, 2);
        f.insert(&Value::int(7));
        assert!(f.maybe_contains(&Value::int(7)));
        f.clear();
        assert!(f.definitely_absent(&Value::int(7)));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn works_with_string_values() {
        let mut f = BloomFilter::new(1024, 3);
        f.insert(&Value::str("sensor-1"));
        assert!(f.maybe_contains(&Value::str("sensor-1")));
        assert!(f.definitely_absent(&Value::str("sensor-2")));
    }

    #[test]
    fn parameters_are_clamped() {
        let f = BloomFilter::new(0, 0);
        assert!(f.size_bytes() >= 8);
        // A single value round-trips even with minimal parameters.
        let mut f = BloomFilter::new(1, 1);
        f.insert(&Value::int(1));
        assert!(f.maybe_contains(&Value::int(1)));
    }
}
