//! The producer-side blacklist.
//!
//! Section IV-B: when a producer handles `<suspend, {s}>`, it scans its
//! operator state, extracts the super-tuples of the MNS `s` (and, optionally,
//! tuples with identical join-attribute values — the "similar" tuples like
//! `a2` in the running example) and moves them to a blacklist. New arrivals
//! matching a blacklisted MNS are diverted straight into the blacklist
//! instead of being processed. On `<resume, {s}>` the entry's tuples are
//! moved back and joined only with the opposite tuples they have not been
//! joined with yet.

use jit_types::{ColumnRef, Signature, Timestamp, Tuple, TupleKey, Window};
use std::fmt;

/// Whether an entry suppresses production entirely or only marks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendMode {
    /// Super-tuples are not produced at all (`<suspend, …>`).
    Suspend,
    /// Super-tuples are produced but marked (`<mark, …>`, Type II handling).
    Mark,
}

/// One suspended tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlacklistedTuple {
    /// The suspended tuple (a super-tuple of the entry's MNS, or a similar
    /// tuple captured by signature).
    pub tuple: Tuple,
    /// The opposite-state tuples this tuple has already been joined with are
    /// exactly those inserted at or before this instant. `None` means the
    /// tuple was diverted on arrival and has never probed the opposite state.
    pub joined_up_to: Option<Timestamp>,
}

/// All tuples suspended on behalf of one MNS.
#[derive(Debug, Clone)]
pub struct BlacklistEntry {
    /// The MNS that justified the suspension (as received in the feedback).
    pub mns: Tuple,
    /// The join-attribute columns used to recognise similar tuples.
    pub signature_columns: Vec<ColumnRef>,
    /// The MNS's values on those columns.
    pub signature: Signature,
    /// Suspension vs mark-only.
    pub mode: SuspendMode,
    /// When the suspension was installed.
    pub suspended_at: Timestamp,
    /// The suspended tuples.
    pub tuples: Vec<BlacklistedTuple>,
}

impl BlacklistEntry {
    /// Does `tuple` belong to this entry — i.e. is it a super-tuple of the
    /// MNS, or (when `allow_similar`) does it carry the same join-attribute
    /// values?
    pub fn captures(&self, tuple: &Tuple, allow_similar: bool) -> bool {
        if self.mns.is_subtuple_of(tuple) {
            return true;
        }
        if allow_similar
            && !self.signature_columns.is_empty()
            && self.mns.sources().is_subset(tuple.sources())
        {
            return Signature::of(tuple, &self.signature_columns) == self.signature;
        }
        false
    }
}

/// The blacklist attached to one operator state.
#[derive(Debug, Clone, Default)]
pub struct Blacklist {
    name: String,
    entries: Vec<BlacklistEntry>,
    bytes: usize,
}

impl Blacklist {
    /// An empty blacklist with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Blacklist {
            name: name.into(),
            entries: Vec::new(),
            bytes: 0,
        }
    }

    /// The blacklist's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entries (distinct MNSs).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total number of suspended tuples across all entries.
    pub fn num_tuples(&self) -> usize {
        self.entries.iter().map(|e| e.tuples.len()).sum()
    }

    /// Is the blacklist empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Analytical size in bytes (MNSs plus suspended tuples).
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// The entries, for inspection.
    pub fn entries(&self) -> &[BlacklistEntry] {
        &self.entries
    }

    /// Index of the entry for an MNS, if present.
    pub fn entry_index(&self, key: &TupleKey) -> Option<usize> {
        self.entries.iter().position(|e| &e.mns.key() == key)
    }

    /// Create (or find) the entry for `mns`. Returns its index.
    pub fn upsert_entry(
        &mut self,
        mns: Tuple,
        signature_columns: Vec<ColumnRef>,
        mode: SuspendMode,
        now: Timestamp,
    ) -> usize {
        if let Some(idx) = self.entry_index(&mns.key()) {
            // Upgrade a mark-only entry to a full suspension if asked.
            if mode == SuspendMode::Suspend {
                self.entries[idx].mode = SuspendMode::Suspend;
            }
            return idx;
        }
        let signature = Signature::of(&mns, &signature_columns);
        self.bytes += mns.size_bytes() + signature.size_bytes();
        self.entries.push(BlacklistEntry {
            mns,
            signature_columns,
            signature,
            mode,
            suspended_at: now,
            tuples: Vec::new(),
        });
        self.entries.len() - 1
    }

    /// Add a suspended tuple to an entry.
    pub fn add_tuple(&mut self, entry: usize, tuple: Tuple, joined_up_to: Option<Timestamp>) {
        self.bytes += tuple.size_bytes();
        self.entries[entry].tuples.push(BlacklistedTuple {
            tuple,
            joined_up_to,
        });
    }

    /// The first entry that captures an arriving tuple, if any.
    pub fn matching_entry(&self, tuple: &Tuple, allow_similar: bool) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.captures(tuple, allow_similar))
    }

    /// Remove and return the entry for an MNS (resumption).
    pub fn remove_entry(&mut self, key: &TupleKey) -> Option<BlacklistEntry> {
        let idx = self.entry_index(key)?;
        let entry = self.entries.remove(idx);
        self.bytes -= entry.mns.size_bytes() + entry.signature.size_bytes();
        self.bytes -= entry
            .tuples
            .iter()
            .map(|t| t.tuple.size_bytes())
            .sum::<usize>();
        Some(entry)
    }

    /// Drop expired suspended tuples and entries that have become useless
    /// (MNS expired and no live tuples remain). Returns the number of tuples
    /// removed.
    pub fn purge(&mut self, window: Window, now: Timestamp) -> usize {
        let mut removed = 0usize;
        let mut freed = 0usize;
        for entry in &mut self.entries {
            entry.tuples.retain(|t| {
                if window.is_expired(t.tuple.ts(), now) {
                    removed += 1;
                    freed += t.tuple.size_bytes();
                    false
                } else {
                    true
                }
            });
        }
        self.entries.retain(|e| {
            let dead =
                e.tuples.is_empty() && !e.mns.is_empty() && window.is_expired(e.mns.ts(), now);
            if dead {
                freed += e.mns.size_bytes() + e.signature.size_bytes();
            }
            !dead
        });
        self.bytes -= freed;
        removed
    }
}

impl fmt::Display for Blacklist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} entries, {} tuples, {} B]",
            self.name,
            self.num_entries(),
            self.num_tuples(),
            self.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Duration, SourceId, Value};
    use std::sync::Arc;

    fn tup(source: u16, seq: u64, ts_ms: u64, vals: &[i64]) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts_ms),
            vals.iter().map(|&v| Value::int(v)).collect(),
        )))
    }

    fn window() -> Window {
        Window::new(Duration::from_secs(60))
    }

    /// Signature column A.x1 — the "y" attribute of the running example.
    fn sig_cols() -> Vec<ColumnRef> {
        vec![ColumnRef::new(SourceId(0), 1)]
    }

    #[test]
    fn upsert_and_lookup() {
        let mut bl = Blacklist::new("B_A");
        let a1 = tup(0, 1, 1_000, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        assert_eq!(idx, 0);
        // Upserting the same MNS returns the same entry.
        let again = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        assert_eq!(again, 0);
        assert_eq!(bl.num_entries(), 1);
        assert_eq!(bl.entry_index(&a1.key()), Some(0));
        assert!(bl.to_string().contains("B_A"));
    }

    #[test]
    fn captures_supertuple_and_similar() {
        let mut bl = Blacklist::new("B_A");
        let a1 = tup(0, 1, 1_000, &[7, 100]);
        bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        // a1 itself (and any super-tuple of it) is captured.
        assert_eq!(bl.matching_entry(&a1, false), Some(0));
        let b = tup(1, 1, 1_500, &[7]);
        let a1b = a1.join(&b).unwrap();
        assert_eq!(bl.matching_entry(&a1b, false), Some(0));
        // a2 shares the join attribute value 100 → similar (only with the flag).
        let a2 = tup(0, 2, 2_000, &[9, 100]);
        assert_eq!(bl.matching_entry(&a2, true), Some(0));
        assert_eq!(bl.matching_entry(&a2, false), None);
        // a3 has a different join value → never captured.
        let a3 = tup(0, 3, 2_000, &[7, 200]);
        assert_eq!(bl.matching_entry(&a3, true), None);
    }

    #[test]
    fn tuples_and_bytes_accounting() {
        let mut bl = Blacklist::new("B");
        let a1 = tup(0, 1, 0, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        bl.add_tuple(idx, a1.clone(), Some(Timestamp::from_millis(0)));
        bl.add_tuple(idx, tup(0, 2, 10, &[9, 100]), None);
        assert_eq!(bl.num_tuples(), 2);
        let bytes_with_tuples = bl.size_bytes();
        let entry = bl.remove_entry(&a1.key()).unwrap();
        assert_eq!(entry.tuples.len(), 2);
        assert_eq!(entry.tuples[0].joined_up_to, Some(Timestamp::ZERO));
        assert_eq!(entry.tuples[1].joined_up_to, None);
        assert!(bl.is_empty());
        assert!(bl.size_bytes() < bytes_with_tuples);
        assert_eq!(bl.size_bytes(), 0);
    }

    #[test]
    fn remove_missing_entry_is_none() {
        let mut bl = Blacklist::new("B");
        assert!(bl.remove_entry(&tup(0, 1, 0, &[1]).key()).is_none());
    }

    #[test]
    fn purge_drops_expired_tuples_and_dead_entries() {
        let mut bl = Blacklist::new("B");
        let a1 = tup(0, 1, 0, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        bl.add_tuple(idx, a1.clone(), Some(Timestamp::ZERO));
        let a2 = tup(0, 2, 50_000, &[9, 100]);
        bl.add_tuple(idx, a2, None);
        // At t = 70s, a1 (ts 0, window 60s) has expired but a2 is alive; the
        // entry stays because it still holds a live tuple.
        assert_eq!(bl.purge(window(), Timestamp::from_millis(70_000)), 1);
        assert_eq!(bl.num_entries(), 1);
        assert_eq!(bl.num_tuples(), 1);
        // Once a2 expires too, the entry disappears.
        assert_eq!(bl.purge(window(), Timestamp::from_millis(120_000)), 1);
        assert_eq!(bl.num_entries(), 0);
        assert_eq!(bl.size_bytes(), 0);
    }

    #[test]
    fn mark_entries_can_be_upgraded_to_suspend() {
        let mut bl = Blacklist::new("B");
        let a1 = tup(0, 1, 0, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Mark, a1.ts());
        assert_eq!(bl.entries()[idx].mode, SuspendMode::Mark);
        bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        assert_eq!(bl.entries()[idx].mode, SuspendMode::Suspend);
    }

    #[test]
    fn empty_mns_entry_captures_everything_and_survives_purge() {
        let mut bl = Blacklist::new("B");
        let idx = bl.upsert_entry(
            Tuple::empty(),
            vec![],
            SuspendMode::Suspend,
            Timestamp::ZERO,
        );
        assert_eq!(bl.matching_entry(&tup(0, 1, 5, &[1]), false), Some(idx));
        // The Ø entry has no timestamp, so it is never purged by the window.
        assert_eq!(bl.purge(window(), Timestamp::from_millis(10_000_000)), 0);
        assert_eq!(bl.num_entries(), 1);
    }
}
