//! The producer-side blacklist.
//!
//! Section IV-B: when a producer handles `<suspend, {s}>`, it scans its
//! operator state, extracts the super-tuples of the MNS `s` (and, optionally,
//! tuples with identical join-attribute values — the "similar" tuples like
//! `a2` in the running example) and moves them to a blacklist. New arrivals
//! matching a blacklisted MNS are diverted straight into the blacklist
//! instead of being processed. On `<resume, {s}>` the entry's tuples are
//! moved back and joined only with the opposite tuples they have not been
//! joined with yet.

use jit_exec::state::StateIndexMode;
use jit_types::{ColumnRef, FastMap, Signature, Timestamp, Tuple, TupleKey, Window};
use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Whether an entry suppresses production entirely or only marks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuspendMode {
    /// Super-tuples are not produced at all (`<suspend, …>`).
    Suspend,
    /// Super-tuples are produced but marked (`<mark, …>`, Type II handling).
    Mark,
}

/// One suspended tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlacklistedTuple {
    /// The suspended tuple (a super-tuple of the entry's MNS, or a similar
    /// tuple captured by signature).
    pub tuple: Tuple,
    /// The opposite-state tuples this tuple has already been joined with are
    /// exactly those inserted at or before this instant. `None` means the
    /// tuple was diverted on arrival and has never probed the opposite state.
    pub joined_up_to: Option<Timestamp>,
}

/// All tuples suspended on behalf of one MNS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlacklistEntry {
    /// The MNS that justified the suspension (as received in the feedback).
    pub mns: Tuple,
    /// The join-attribute columns used to recognise similar tuples.
    pub signature_columns: Vec<ColumnRef>,
    /// The MNS's values on those columns.
    pub signature: Signature,
    /// Suspension vs mark-only.
    pub mode: SuspendMode,
    /// When the suspension was installed.
    pub suspended_at: Timestamp,
    /// The suspended tuples.
    pub tuples: Vec<BlacklistedTuple>,
}

impl BlacklistEntry {
    /// Does `tuple` belong to this entry — i.e. is it a super-tuple of the
    /// MNS, or (when `allow_similar`) does it carry the same join-attribute
    /// values?
    pub fn captures(&self, tuple: &Tuple, allow_similar: bool) -> bool {
        if self.mns.is_subtuple_of(tuple) {
            return true;
        }
        if allow_similar
            && !self.signature_columns.is_empty()
            && self.mns.sources().is_subset(tuple.sources())
        {
            return Signature::of(tuple, &self.signature_columns) == self.signature;
        }
        false
    }
}

/// The blacklist attached to one operator state.
///
/// # The index layer
///
/// Every arrival is probed against the blacklist (the producer-side
/// diversion check), so a linear scan over the entries is a per-arrival
/// cost term. Under [`StateIndexMode::Hashed`] (the default) the blacklist
/// keeps three hash indexes over its entries — by MNS identity, by the
/// identity of the MNS's first component (a super-tuple must carry that
/// component), and by signature over each distinct signature-column set —
/// so [`Blacklist::matching_entry`] examines only the candidate entries.
/// Candidates are verified with [`BlacklistEntry::captures`] in ascending
/// entry order, which makes the hashed lookup return exactly the entry the
/// historical linear scan would have found. [`StateIndexMode::Scan`]
/// restores the linear scan itself. Neither mode changes the analytical
/// byte accounting: index bookkeeping is not charged, mirroring
/// [`jit_exec::state::OperatorState`].
#[derive(Debug, Clone, Default)]
pub struct Blacklist {
    name: String,
    entries: Vec<BlacklistEntry>,
    bytes: usize,
    mode: StateIndexMode,
    /// MNS identity → entry index (all entries).
    by_key: FastMap<TupleKey, usize>,
    /// Indices of entries whose MNS is Ø (they capture every tuple).
    empty_entries: Vec<usize>,
    /// Non-empty entries keyed by the identity of their MNS's first
    /// component: any super-tuple of the MNS carries that component.
    by_component: FastMap<(u16, u64), Vec<usize>>,
    /// Similar-capture entries grouped by signature column set, then by the
    /// MNS's signature on those columns.
    by_signature: FastMap<Vec<ColumnRef>, FastMap<Signature, Vec<usize>>>,
    /// Conservative lower bound on the earliest timestamp whose expiry could
    /// make [`Blacklist::purge`] remove something (a suspended tuple's `ts`
    /// or a non-Ø entry's MNS `ts`). `None` means no purge can remove
    /// anything. Lowered on insertions, recomputed exactly by `purge` (which
    /// scans every entry anyway); removals leave it stale-low, which only
    /// costs one recomputing purge scan.
    min_expiry: Option<Timestamp>,
}

impl Blacklist {
    /// An empty blacklist with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Blacklist {
            name: name.into(),
            ..Blacklist::default()
        }
    }

    /// Select how [`Blacklist::matching_entry`] and
    /// [`Blacklist::entry_index`] answer probes (default
    /// [`StateIndexMode::Hashed`]). The two modes return identical entries;
    /// only the number of entries examined differs.
    pub fn set_index_mode(&mut self, mode: StateIndexMode) {
        self.mode = mode;
    }

    /// The probing mode in effect.
    pub fn index_mode(&self) -> StateIndexMode {
        self.mode
    }

    /// File entry `idx` in the hash indexes.
    fn index_entry(&mut self, idx: usize) {
        let entry = &self.entries[idx];
        self.by_key.insert(entry.mns.key(), idx);
        if entry.mns.is_empty() {
            self.empty_entries.push(idx);
        } else {
            let first = &entry.mns.parts()[0];
            self.by_component
                .entry((first.source.0, first.seq))
                .or_default()
                .push(idx);
            if !entry.signature_columns.is_empty() {
                self.by_signature
                    .entry(entry.signature_columns.clone())
                    .or_default()
                    .entry(entry.signature.clone())
                    .or_default()
                    .push(idx);
            }
        }
    }

    /// Rebuild every hash index from scratch (entry indices shift whenever
    /// an entry is removed; removals are rare feedback events, probes are
    /// per-arrival, so the O(entries) rebuild is the cheap side).
    fn reindex(&mut self) {
        self.by_key.clear();
        self.empty_entries.clear();
        self.by_component.clear();
        self.by_signature.clear();
        for idx in 0..self.entries.len() {
            self.index_entry(idx);
        }
    }

    /// The blacklist's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entries (distinct MNSs).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total number of suspended tuples across all entries.
    pub fn num_tuples(&self) -> usize {
        self.entries.iter().map(|e| e.tuples.len()).sum()
    }

    /// Is the blacklist empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Analytical size in bytes (MNSs plus suspended tuples).
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// The entries, for inspection.
    pub fn entries(&self) -> &[BlacklistEntry] {
        &self.entries
    }

    /// Index of the entry for an MNS, if present.
    pub fn entry_index(&self, key: &TupleKey) -> Option<usize> {
        if self.mode == StateIndexMode::Hashed {
            return self.by_key.get(key).copied();
        }
        self.entries.iter().position(|e| &e.mns.key() == key)
    }

    /// Create (or find) the entry for `mns`. Returns its index.
    pub fn upsert_entry(
        &mut self,
        mns: Tuple,
        signature_columns: Vec<ColumnRef>,
        mode: SuspendMode,
        now: Timestamp,
    ) -> usize {
        if let Some(idx) = self.entry_index(&mns.key()) {
            // Upgrade a mark-only entry to a full suspension if asked.
            if mode == SuspendMode::Suspend {
                self.entries[idx].mode = SuspendMode::Suspend;
            }
            return idx;
        }
        let signature = Signature::of(&mns, &signature_columns);
        if !mns.is_empty() {
            self.note_expiry(mns.ts());
        }
        self.bytes += mns.size_bytes() + signature.size_bytes();
        self.entries.push(BlacklistEntry {
            mns,
            signature_columns,
            signature,
            mode,
            suspended_at: now,
            tuples: Vec::new(),
        });
        let idx = self.entries.len() - 1;
        self.index_entry(idx);
        idx
    }

    /// Lower the purge bound to cover a timestamp that just became purgeable
    /// in the future.
    fn note_expiry(&mut self, ts: Timestamp) {
        self.min_expiry = Some(match self.min_expiry {
            Some(cur) => cur.min(ts),
            None => ts,
        });
    }

    /// The earliest timestamp whose window expiry could make
    /// [`Blacklist::purge`] remove a tuple or an entry, or `None` when a
    /// purge provably removes nothing. Conservative (see the field docs):
    /// a premature instant only triggers a purge scan that removes nothing
    /// — which charges nothing — and tightens the bound.
    pub fn next_expiry(&self) -> Option<Timestamp> {
        self.min_expiry
    }

    /// Add a suspended tuple to an entry.
    pub fn add_tuple(&mut self, entry: usize, tuple: Tuple, joined_up_to: Option<Timestamp>) {
        self.note_expiry(tuple.ts());
        self.bytes += tuple.size_bytes();
        self.entries[entry].tuples.push(BlacklistedTuple {
            tuple,
            joined_up_to,
        });
    }

    /// The first entry that captures an arriving tuple, if any.
    ///
    /// Under [`StateIndexMode::Hashed`] only the candidate entries surfaced
    /// by the hash indexes are verified (ascending, so the entry returned is
    /// exactly the linear scan's first match); under
    /// [`StateIndexMode::Scan`] every entry is examined in order.
    pub fn matching_entry(&self, tuple: &Tuple, allow_similar: bool) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        if self.mode == StateIndexMode::Scan {
            return self
                .entries
                .iter()
                .position(|e| e.captures(tuple, allow_similar));
        }
        let mut candidates: Vec<usize> = self.empty_entries.clone();
        for part in tuple.parts() {
            if let Some(idxs) = self.by_component.get(&(part.source.0, part.seq)) {
                candidates.extend_from_slice(idxs);
            }
        }
        if allow_similar {
            for (cols, groups) in &self.by_signature {
                if let Some(idxs) = groups.get(&Signature::of(tuple, cols)) {
                    candidates.extend_from_slice(idxs);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .find(|&idx| self.entries[idx].captures(tuple, allow_similar))
    }

    /// Remove and return the entry for an MNS (resumption).
    pub fn remove_entry(&mut self, key: &TupleKey) -> Option<BlacklistEntry> {
        let idx = self.entry_index(key)?;
        let entry = self.entries.remove(idx);
        self.bytes -= entry.mns.size_bytes() + entry.signature.size_bytes();
        self.bytes -= entry
            .tuples
            .iter()
            .map(|t| t.tuple.size_bytes())
            .sum::<usize>();
        self.reindex();
        Some(entry)
    }

    /// Drop expired suspended tuples and entries that have become useless
    /// (MNS expired and no live tuples remain). Returns the number of tuples
    /// removed.
    pub fn purge(&mut self, window: Window, now: Timestamp) -> usize {
        let mut removed = 0usize;
        let mut freed = 0usize;
        for entry in &mut self.entries {
            entry.tuples.retain(|t| {
                if window.is_expired(t.tuple.ts(), now) {
                    removed += 1;
                    freed += t.tuple.size_bytes();
                    false
                } else {
                    true
                }
            });
        }
        let before = self.entries.len();
        self.entries.retain(|e| {
            let dead =
                e.tuples.is_empty() && !e.mns.is_empty() && window.is_expired(e.mns.ts(), now);
            if dead {
                freed += e.mns.size_bytes() + e.signature.size_bytes();
            }
            !dead
        });
        if self.entries.len() != before {
            self.reindex();
        }
        self.bytes -= freed;
        // The scan visited everything, so recompute the purge bound exactly.
        self.min_expiry = self
            .entries
            .iter()
            .flat_map(|e| {
                e.tuples
                    .iter()
                    .map(|t| t.tuple.ts())
                    .chain((!e.mns.is_empty()).then(|| e.mns.ts()))
            })
            .min();
        removed
    }

    /// Serialise the entries for a durability checkpoint. The index mode and
    /// the hash indexes are runtime configuration / derived structure and are
    /// not persisted.
    pub fn checkpoint(&self) -> Content {
        Content::Map(vec![
            ("name".to_string(), Content::Str(self.name.clone())),
            ("entries".to_string(), self.entries.to_content()),
        ])
    }

    /// Replace the entries with a checkpointed set, rebuilding the byte
    /// accounting and the hash indexes. The checkpoint must carry the same
    /// diagnostic name (i.e. come from the same operator slot).
    pub fn restore_checkpoint(&mut self, content: &Content) -> Result<(), serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "Blacklist"))?;
        let name: String = serde::field(map, "name", "Blacklist")?;
        if name != self.name {
            return Err(serde::Error::msg(format!(
                "blacklist mismatch: checkpoint holds `{name}`, plan expects `{}`",
                self.name
            )));
        }
        let entries: Vec<BlacklistEntry> = serde::field(map, "entries", "Blacklist")?;
        self.min_expiry = entries
            .iter()
            .flat_map(|e| {
                e.tuples
                    .iter()
                    .map(|t| t.tuple.ts())
                    .chain((!e.mns.is_empty()).then(|| e.mns.ts()))
            })
            .min();
        self.bytes = entries
            .iter()
            .map(|e| {
                e.mns.size_bytes()
                    + e.signature.size_bytes()
                    + e.tuples.iter().map(|t| t.tuple.size_bytes()).sum::<usize>()
            })
            .sum();
        self.entries = entries;
        self.reindex();
        Ok(())
    }
}

impl fmt::Display for Blacklist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} entries, {} tuples, {} B]",
            self.name,
            self.num_entries(),
            self.num_tuples(),
            self.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Duration, SourceId, Value};
    use std::sync::Arc;

    fn tup(source: u16, seq: u64, ts_ms: u64, vals: &[i64]) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts_ms),
            vals.iter().map(|&v| Value::int(v)).collect(),
        )))
    }

    fn window() -> Window {
        Window::new(Duration::from_secs(60))
    }

    /// Signature column A.x1 — the "y" attribute of the running example.
    fn sig_cols() -> Vec<ColumnRef> {
        vec![ColumnRef::new(SourceId(0), 1)]
    }

    #[test]
    fn upsert_and_lookup() {
        let mut bl = Blacklist::new("B_A");
        let a1 = tup(0, 1, 1_000, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        assert_eq!(idx, 0);
        // Upserting the same MNS returns the same entry.
        let again = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        assert_eq!(again, 0);
        assert_eq!(bl.num_entries(), 1);
        assert_eq!(bl.entry_index(&a1.key()), Some(0));
        assert!(bl.to_string().contains("B_A"));
    }

    #[test]
    fn captures_supertuple_and_similar() {
        let mut bl = Blacklist::new("B_A");
        let a1 = tup(0, 1, 1_000, &[7, 100]);
        bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        // a1 itself (and any super-tuple of it) is captured.
        assert_eq!(bl.matching_entry(&a1, false), Some(0));
        let b = tup(1, 1, 1_500, &[7]);
        let a1b = a1.join(&b).unwrap();
        assert_eq!(bl.matching_entry(&a1b, false), Some(0));
        // a2 shares the join attribute value 100 → similar (only with the flag).
        let a2 = tup(0, 2, 2_000, &[9, 100]);
        assert_eq!(bl.matching_entry(&a2, true), Some(0));
        assert_eq!(bl.matching_entry(&a2, false), None);
        // a3 has a different join value → never captured.
        let a3 = tup(0, 3, 2_000, &[7, 200]);
        assert_eq!(bl.matching_entry(&a3, true), None);
    }

    #[test]
    fn tuples_and_bytes_accounting() {
        let mut bl = Blacklist::new("B");
        let a1 = tup(0, 1, 0, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        bl.add_tuple(idx, a1.clone(), Some(Timestamp::from_millis(0)));
        bl.add_tuple(idx, tup(0, 2, 10, &[9, 100]), None);
        assert_eq!(bl.num_tuples(), 2);
        let bytes_with_tuples = bl.size_bytes();
        let entry = bl.remove_entry(&a1.key()).unwrap();
        assert_eq!(entry.tuples.len(), 2);
        assert_eq!(entry.tuples[0].joined_up_to, Some(Timestamp::ZERO));
        assert_eq!(entry.tuples[1].joined_up_to, None);
        assert!(bl.is_empty());
        assert!(bl.size_bytes() < bytes_with_tuples);
        assert_eq!(bl.size_bytes(), 0);
    }

    #[test]
    fn remove_missing_entry_is_none() {
        let mut bl = Blacklist::new("B");
        assert!(bl.remove_entry(&tup(0, 1, 0, &[1]).key()).is_none());
    }

    #[test]
    fn purge_drops_expired_tuples_and_dead_entries() {
        let mut bl = Blacklist::new("B");
        let a1 = tup(0, 1, 0, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        bl.add_tuple(idx, a1.clone(), Some(Timestamp::ZERO));
        let a2 = tup(0, 2, 50_000, &[9, 100]);
        bl.add_tuple(idx, a2, None);
        // At t = 70s, a1 (ts 0, window 60s) has expired but a2 is alive; the
        // entry stays because it still holds a live tuple.
        assert_eq!(bl.purge(window(), Timestamp::from_millis(70_000)), 1);
        assert_eq!(bl.num_entries(), 1);
        assert_eq!(bl.num_tuples(), 1);
        // Once a2 expires too, the entry disappears.
        assert_eq!(bl.purge(window(), Timestamp::from_millis(120_000)), 1);
        assert_eq!(bl.num_entries(), 0);
        assert_eq!(bl.size_bytes(), 0);
    }

    #[test]
    fn mark_entries_can_be_upgraded_to_suspend() {
        let mut bl = Blacklist::new("B");
        let a1 = tup(0, 1, 0, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Mark, a1.ts());
        assert_eq!(bl.entries()[idx].mode, SuspendMode::Mark);
        bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        assert_eq!(bl.entries()[idx].mode, SuspendMode::Suspend);
    }

    /// The hashed index and the linear scan must pick the same entry for
    /// every probe, across upserts, removals and purges.
    #[test]
    fn hashed_and_scan_agree_on_matching_entry() {
        let mut hashed = Blacklist::new("H");
        let mut scan = Blacklist::new("S");
        scan.set_index_mode(StateIndexMode::Scan);
        assert_eq!(hashed.index_mode(), StateIndexMode::Hashed);
        assert_eq!(scan.index_mode(), StateIndexMode::Scan);
        // A mix of entries: several signatures, one signature-less entry,
        // and the Ø entry added last (so earlier entries win first-match).
        let mnss: Vec<Tuple> = (0..6)
            .map(|i| tup(0, i + 1, i * 1_000, &[i as i64, (i % 3) as i64 * 100]))
            .collect();
        for (i, mns) in mnss.iter().enumerate() {
            let cols = if i == 3 { vec![] } else { sig_cols() };
            let mode = if i % 2 == 0 {
                SuspendMode::Suspend
            } else {
                SuspendMode::Mark
            };
            hashed.upsert_entry(mns.clone(), cols.clone(), mode, mns.ts());
            scan.upsert_entry(mns.clone(), cols, mode, mns.ts());
        }
        hashed.upsert_entry(
            Tuple::empty(),
            vec![],
            SuspendMode::Suspend,
            Timestamp::ZERO,
        );
        scan.upsert_entry(
            Tuple::empty(),
            vec![],
            SuspendMode::Suspend,
            Timestamp::ZERO,
        );
        let probes: Vec<Tuple> = (0..12)
            .map(|i| tup(0, 20 + i, 5_000, &[i as i64 / 2, (i % 4) as i64 * 100]))
            .chain(mnss.iter().cloned())
            .collect();
        for allow_similar in [false, true] {
            for p in &probes {
                assert_eq!(
                    hashed.matching_entry(p, allow_similar),
                    scan.matching_entry(p, allow_similar),
                    "probe {p} similar={allow_similar}"
                );
            }
        }
        for mns in &mnss {
            assert_eq!(hashed.entry_index(&mns.key()), scan.entry_index(&mns.key()));
        }
        // Remove an entry (indices shift) and re-check agreement.
        hashed.remove_entry(&mnss[1].key());
        scan.remove_entry(&mnss[1].key());
        // Purge the oldest entries (indices shift again).
        hashed.purge(window(), Timestamp::from_millis(62_000));
        scan.purge(window(), Timestamp::from_millis(62_000));
        assert_eq!(hashed.num_entries(), scan.num_entries());
        for allow_similar in [false, true] {
            for p in &probes {
                assert_eq!(
                    hashed.matching_entry(p, allow_similar),
                    scan.matching_entry(p, allow_similar),
                    "post-removal probe {p} similar={allow_similar}"
                );
            }
        }
    }

    /// A super-tuple probe (components from several sources) is found via
    /// the component index.
    #[test]
    fn hashed_lookup_finds_entry_for_supertuple_probe() {
        let mut bl = Blacklist::new("B");
        let a1 = tup(0, 1, 1_000, &[7, 100]);
        bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        let b = tup(1, 9, 1_500, &[7]);
        let a1b = a1.join(&b).unwrap();
        assert_eq!(bl.matching_entry(&a1b, false), Some(0));
        // A composite that does not contain a1 is not captured.
        let a2 = tup(0, 2, 1_000, &[7, 999]);
        let a2b = a2.join(&b).unwrap();
        assert_eq!(bl.matching_entry(&a2b, false), None);
    }

    #[test]
    fn checkpoint_round_trips_entries_and_bytes() {
        let mut bl = Blacklist::new("B");
        let a1 = tup(0, 1, 0, &[7, 100]);
        let idx = bl.upsert_entry(a1.clone(), sig_cols(), SuspendMode::Suspend, a1.ts());
        bl.add_tuple(idx, a1.clone(), Some(Timestamp::from_millis(5)));
        bl.add_tuple(idx, tup(0, 2, 10, &[9, 100]), None);
        bl.upsert_entry(tup(0, 3, 20, &[1, 200]), vec![], SuspendMode::Mark, a1.ts());
        let blob = bl.checkpoint();
        let mut restored = Blacklist::new("B");
        restored.restore_checkpoint(&blob).unwrap();
        assert_eq!(restored.num_entries(), bl.num_entries());
        assert_eq!(restored.num_tuples(), bl.num_tuples());
        assert_eq!(restored.size_bytes(), bl.size_bytes());
        assert_eq!(restored.entries()[0].mode, SuspendMode::Suspend);
        assert_eq!(
            restored.entries()[0].tuples[0].joined_up_to,
            Some(Timestamp::from_millis(5))
        );
        // The rebuilt indexes answer probes like the original.
        assert_eq!(
            restored.matching_entry(&a1, true),
            bl.matching_entry(&a1, true)
        );
        assert_eq!(restored.entry_index(&a1.key()), bl.entry_index(&a1.key()));
        // A checkpoint from a differently named blacklist is rejected.
        let mut other = Blacklist::new("C");
        assert!(other.restore_checkpoint(&blob).is_err());
    }

    #[test]
    fn empty_mns_entry_captures_everything_and_survives_purge() {
        let mut bl = Blacklist::new("B");
        let idx = bl.upsert_entry(
            Tuple::empty(),
            vec![],
            SuspendMode::Suspend,
            Timestamp::ZERO,
        );
        assert_eq!(bl.matching_entry(&tup(0, 1, 5, &[1]), false), Some(idx));
        // The Ø entry has no timestamp, so it is never purged by the window.
        assert_eq!(bl.purge(window(), Timestamp::from_millis(10_000_000)), 0);
        assert_eq!(bl.num_entries(), 1);
    }
}
