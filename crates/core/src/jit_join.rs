//! The JIT-enabled binary window join.
//!
//! This operator plays both roles of the paper's framework (Figure 6):
//!
//! * **Consumer** (`Process_Input`): every arriving tuple first probes the
//!   MNS buffer of the opposite input (possibly triggering resumption
//!   feedback), then the opposite state (producing join results and feeding
//!   the CNS lattice), then reports newly detected MNSs as suspension
//!   feedback to the producer of its own input, and is finally inserted into
//!   its own state.
//! * **Producer** (`Handle_Feedback`): suspension feedback drains the
//!   super-tuples of the named MNS (and, optionally, "similar" tuples with
//!   the same join-attribute values) from the corresponding state into a
//!   blacklist and diverts future matching arrivals; resumption feedback
//!   restores them, regenerating exactly the partial results that were never
//!   produced; both kinds are propagated upstream (Section III-C).
//!
//! ## Granularity note (vs the paper)
//!
//! The paper interleaves producer and consumer at the granularity of single
//! probe steps, so a suspension can cut a probe short halfway through. This
//! reproduction processes one input tuple at a time to completion (one probe
//! = one batch of partial results); a suspension therefore takes effect from
//! the *next* input onwards. This only affects the very first batch after an
//! MNS appears — all subsequent suppression, which dominates the savings, is
//! identical — and matches the paper's own treatment of partial results that
//! are already sitting in an inter-operator queue (Section III-B).
//!
//! ## Duplicate avoidance on resumption
//!
//! The paper regenerates, on resumption, the super-tuples "not produced
//! before" using a per-tuple suspension timestamp. When *both* inputs of the
//! same operator have suspended tuples with interleaved suspension/resumption
//! cycles, a single timestamp cannot tell whether a particular pair was
//! already produced. This implementation keeps, for every tuple that has
//! ever been blacklisted, its past *presence intervals* in the state; a pair
//! is regenerated iff its members' presence intervals never overlapped. This
//! makes resumed production exactly duplicate-free.

use crate::blacklist::{Blacklist, SuspendMode};
use crate::bloom::BloomFilter;
use crate::lattice::CnsLattice;
use crate::mns_buffer::MnsBuffer;
use crate::policy::{JitPolicy, MnsDetection};
use jit_exec::operator::{
    BatchPrep, DataMessage, FeedbackOutcome, OpContext, Operator, OperatorOutput, Port, ProbePrep,
    ResultBlock, SuppressionDigest, LEFT, RIGHT,
};
use jit_exec::state::{JoinKeySpec, OperatorState, StateIndexMode};
use jit_metrics::CostKind;
use jit_types::{
    Batch, ColumnRef, FastMap, Feedback, FeedbackCommand, PredicateSet, SourceSet, Timestamp,
    Tuple, TupleKey, Value, Window,
};
use serde::{Content, Deserialize, Serialize};

/// Serialise a hash map as its `(key, value)` pairs sorted by key, so the
/// checkpoint bytes are deterministic regardless of hasher state.
fn sorted_pairs<K: Ord + Clone, V: Clone>(map: &FastMap<K, V>) -> Vec<(K, V)> {
    let mut pairs: Vec<(K, V)> = map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    pairs
}

/// Past presence intervals of a tuple that has been blacklisted at least
/// once, expressed in the operator's logical event sequence (one tick per
/// insertion or drain), so that same-millisecond events stay ordered.
type PresenceHistory = FastMap<TupleKey, Vec<(u64, u64)>>;

/// Window-verdict bounds recorded while one input walked the opposite
/// state, classifying every `can_join` outcome it saw. A later input with
/// the same value signature may replay the walk iff its timestamp provably
/// reproduces every verdict (see [`ProbeMemo::window_verdicts_hold`]).
#[derive(Debug, Clone, Copy, Default)]
struct WindowLog {
    /// Smallest / largest stored timestamp that passed the window check.
    pass_min: Option<Timestamp>,
    pass_max: Option<Timestamp>,
    /// Largest stored timestamp rejected as expired (older than probe − w).
    rej_low_max: Option<Timestamp>,
    /// Smallest stored timestamp rejected as future (newer than probe + w).
    rej_high_min: Option<Timestamp>,
}

impl WindowLog {
    fn note(&mut self, stored_ts: Timestamp, probe_ts: Timestamp, pass: bool) {
        if pass {
            self.pass_min = Some(self.pass_min.map_or(stored_ts, |t| t.min(stored_ts)));
            self.pass_max = Some(self.pass_max.map_or(stored_ts, |t| t.max(stored_ts)));
        } else if stored_ts < probe_ts {
            self.rej_low_max = Some(self.rej_low_max.map_or(stored_ts, |t| t.max(stored_ts)));
        } else {
            self.rej_high_min = Some(self.rej_high_min.map_or(stored_ts, |t| t.min(stored_ts)));
        }
    }
}

/// One batch's memoized probe outcome for a distinct row value signature:
/// the result partners, lattice verdicts, detected MNS shapes, and the
/// counter deltas the walk charged. Replaying charges *identical* counters
/// (probe pairs, predicate evaluations, lattice visits, Bloom checks) so
/// batch and tuple mode stay bit-for-bit comparable, while doing one
/// lattice membership walk per distinct signature instead of per row.
#[derive(Debug, Clone)]
struct ProbeMemo {
    /// Opposite-state generation at capture; any insert/purge/drain/compact
    /// in between invalidates the memo.
    generation: u64,
    probe_pairs: u64,
    predicate_evals: u64,
    lattice_nodes: u64,
    bloom_checks: u64,
    /// Probe handles of the stored partners that produced results, in
    /// probe order.
    result_seqs: Vec<u64>,
    /// Source sets of the detected MNSs (Ø = empty set); the replay
    /// projects the *new* input onto them.
    detected: Vec<SourceSet>,
    window_log: WindowLog,
}

impl ProbeMemo {
    /// Would an input at `ts` have seen exactly the recorded window
    /// verdicts? Passes must still pass (both bounds re-checked), expired
    /// rejections must still be expired, future rejections still future.
    fn window_verdicts_hold(&self, window: Window, ts: Timestamp) -> bool {
        let w = &self.window_log;
        w.pass_min.is_none_or(|t| window.can_join(ts, t))
            && w.pass_max.is_none_or(|t| window.can_join(ts, t))
            && w.rej_low_max
                .is_none_or(|t| t < ts && !window.can_join(ts, t))
            && w.rej_high_min
                .is_none_or(|t| t > ts && !window.can_join(ts, t))
    }
}

/// Binary sliding-window join with JIT feedback (consumer and producer roles).
pub struct JitJoinOperator {
    name: String,
    left_schema: SourceSet,
    right_schema: SourceSet,
    predicates: PredicateSet,
    window: Window,
    policy: JitPolicy,
    /// Per-side operator states (index 0 = left, 1 = right).
    states: [OperatorState; 2],
    /// Per-side MNS buffers: MNSs detected on that side's inputs.
    mns_buffers: [MnsBuffer; 2],
    /// Per-side blacklists: suspended tuples drained from that side's state.
    blacklists: [Blacklist; 2],
    /// Per-side presence histories for tuples that have been blacklisted.
    histories: [PresenceHistory; 2],
    /// Logical event counter (ticks on every state insertion or drain).
    event_seq: u64,
    /// For every tuple currently stored in a state, the event at which its
    /// current presence interval started.
    interval_start: [FastMap<TupleKey, u64>; 2],
    /// Per-side Bloom filters over the state's join-column values
    /// (only maintained under [`MnsDetection::Bloom`]).
    blooms: [FastMap<ColumnRef, BloomFilter>; 2],
    /// Full-key spec for probing the *opposite* state with an input
    /// arriving on each port, precomputed from the predicates.
    probe_specs: [JoinKeySpec; 2],
    /// Per-port membership-probe specs for every lattice node (subset of
    /// the port's candidate sources), precomputed so the hashed probe path
    /// allocates no spec per tuple.
    node_specs: [FastMap<SourceSet, JoinKeySpec>; 2],
    /// Per-port lattice nodes in settling order (largest first), so the
    /// hashed probe path allocates and sorts nothing per tuple.
    node_order: [Vec<SourceSet>; 2],
    /// Ø-suspension: when set, all inputs are buffered unprocessed.
    fully_suspended: bool,
    /// Inputs buffered while fully suspended, with their arrival instants.
    pending: Vec<(Port, DataMessage, Timestamp)>,
    pending_bytes: usize,
    /// Per-batch, per-port probe memo keyed by row value signature (both
    /// ports of one block interleave, so each needs its own map). Cleared
    /// at every [`Operator::prepare_batch`]; purely transient (never
    /// checkpointed).
    batch_memo: [FastMap<Vec<Value>, ProbeMemo>; 2],
}

impl JitJoinOperator {
    /// Create a JIT join whose left/right inputs cover the given schemas.
    pub fn new(
        name: impl Into<String>,
        left_schema: SourceSet,
        right_schema: SourceSet,
        predicates: PredicateSet,
        window: Window,
        policy: JitPolicy,
    ) -> Self {
        let name = name.into();
        let schema_of = |port: Port| {
            if port == LEFT {
                left_schema
            } else {
                right_schema
            }
        };
        let probe_specs = [LEFT, RIGHT].map(|port| {
            JoinKeySpec::between(
                &predicates,
                schema_of(Self::opposite(port)),
                schema_of(port),
            )
        });
        let node_specs = [LEFT, RIGHT].map(|port| {
            let opp_schema = schema_of(Self::opposite(port));
            predicates
                .sources_facing(schema_of(port), opp_schema)
                .non_empty_subsets()
                .into_iter()
                .map(|node| (node, JoinKeySpec::between(&predicates, opp_schema, node)))
                .collect()
        });
        let node_order = [LEFT, RIGHT].map(|port| {
            let mut nodes = predicates
                .sources_facing(schema_of(port), schema_of(Self::opposite(port)))
                .non_empty_subsets();
            nodes.sort_by_key(|s| std::cmp::Reverse(s.len()));
            nodes
        });
        JitJoinOperator {
            states: [
                OperatorState::new(format!("{name}.SL")),
                OperatorState::new(format!("{name}.SR")),
            ],
            probe_specs,
            node_specs,
            node_order,
            mns_buffers: [
                MnsBuffer::new(format!("{name}.NB_L")),
                MnsBuffer::new(format!("{name}.NB_R")),
            ],
            blacklists: [
                Blacklist::new(format!("{name}.BL_L")),
                Blacklist::new(format!("{name}.BL_R")),
            ],
            histories: [FastMap::default(), FastMap::default()],
            event_seq: 0,
            interval_start: [FastMap::default(), FastMap::default()],
            blooms: [FastMap::default(), FastMap::default()],
            fully_suspended: false,
            pending: Vec::new(),
            pending_bytes: 0,
            batch_memo: [FastMap::default(), FastMap::default()],
            name,
            left_schema,
            right_schema,
            predicates,
            window,
            policy,
        }
    }

    /// Select how the two operator states, MNS buffers and blacklists
    /// answer probes (default [`StateIndexMode::Hashed`]).
    ///
    /// Under the hashed mode the consumer probe, the lattice-based MNS
    /// detection, `Resume_Production`'s regeneration probe, the MNS-buffer
    /// match and the blacklist diversion check all go through hash indexes;
    /// [`StateIndexMode::Scan`] restores the historical nested-loop
    /// behaviour (the two are result- and feedback-equivalent, see the
    /// equivalence suite).
    pub fn with_state_index(mut self, mode: StateIndexMode) -> Self {
        for state in &mut self.states {
            state.set_index_mode(mode);
        }
        for buffer in &mut self.mns_buffers {
            buffer.set_index_mode(mode);
        }
        for blacklist in &mut self.blacklists {
            blacklist.set_index_mode(mode);
        }
        self
    }

    /// Schema of one input side.
    fn schema_of(&self, port: Port) -> SourceSet {
        if port == LEFT {
            self.left_schema
        } else {
            self.right_schema
        }
    }

    /// The opposite port.
    fn opposite(port: Port) -> Port {
        if port == LEFT {
            RIGHT
        } else {
            LEFT
        }
    }

    /// The policy the operator runs under.
    pub fn policy(&self) -> &JitPolicy {
        &self.policy
    }

    /// Number of tuples in the state of the given side.
    pub fn state_len(&self, port: Port) -> usize {
        self.states[port].len()
    }

    /// Number of MNSs currently buffered for the given side.
    pub fn mns_buffer_len(&self, port: Port) -> usize {
        self.mns_buffers[port].len()
    }

    /// Number of tuples suspended in the blacklist of the given side.
    pub fn blacklist_len(&self, port: Port) -> usize {
        self.blacklists[port].num_tuples()
    }

    /// Is the operator fully suspended (Ø MNS / DOE-style)?
    pub fn is_fully_suspended(&self) -> bool {
        self.fully_suspended
    }

    /// Columns used to recognise tuples "similar" to an MNS covering
    /// `mns_sources`: the join attributes of those sources towards the part
    /// of the query outside this operator's output.
    fn similarity_columns(&self, mns_sources: SourceSet) -> Vec<ColumnRef> {
        let external = self
            .predicates
            .referenced_sources()
            .difference(self.output_schema());
        self.predicates.join_columns(mns_sources, external)
    }

    /// Can a purge at `now` remove anything from any of the six containers?
    /// Each container maintains a (conservative) earliest-expiry bound, so
    /// the common case — nothing has expired since the last arrival — is
    /// answered with six O(1) peeks instead of scans. A purge that removes
    /// nothing charges nothing and emits no feedback, so eliding it is
    /// observationally identical.
    fn purge_due(&self, now: Timestamp) -> bool {
        [LEFT, RIGHT].into_iter().any(|side| {
            let expired =
                |ts: Option<Timestamp>| ts.is_some_and(|ts| self.window.is_expired(ts, now));
            expired(self.states[side].next_expiry())
                || expired(self.blacklists[side].next_expiry())
                || expired(self.mns_buffers[side].next_expiry())
        })
    }

    /// Purge every container and emit resumption feedback for MNSs whose
    /// justification has expired.
    fn purge_all(
        &mut self,
        now: Timestamp,
        ctx: &mut OpContext<'_>,
        output: &mut Vec<(Port, Feedback)>,
    ) {
        if !self.purge_due(now) {
            return;
        }
        let mut purged = 0usize;
        for side in [LEFT, RIGHT] {
            purged += self.states[side].purge(self.window, now);
            purged += self.blacklists[side].purge(self.window, now);
            let expired = self.mns_buffers[side].take_expired(self.window, now);
            purged += expired.len();
            if !expired.is_empty() {
                // The suspension justification expired: ask the producer of
                // that side to release anything it still holds for these MNSs.
                output.push((side, Feedback::resume(expired)));
            }
        }
        ctx.metrics.stats.purged_tuples += purged as u64;
        ctx.metrics.charge(CostKind::StatePurge, purged as u64);
    }

    /// The candidate sources of an input on `port`: its components that are
    /// referenced by a predicate towards the opposite schema.
    fn candidate_sources(&self, tuple: &Tuple, port: Port) -> SourceSet {
        self.predicates
            .sources_facing(tuple.sources(), self.schema_of(Self::opposite(port)))
    }

    /// For one (input, stored) pair, the set of candidate components of the
    /// input whose predicates towards the stored tuple all hold.
    fn matched_components(
        &self,
        input: &Tuple,
        stored: &Tuple,
        candidates: SourceSet,
        evals: &mut u64,
    ) -> SourceSet {
        let mut matched = SourceSet::EMPTY;
        for source in candidates.iter() {
            let component = input.project(SourceSet::single(source));
            let mut ok = true;
            for p in self.predicates.predicates() {
                if p.spans(SourceSet::single(source), stored.sources()) {
                    *evals += 1;
                    match p.holds_across(&component, stored) {
                        Some(true) => {}
                        Some(false) => {
                            ok = false;
                            break;
                        }
                        None => {}
                    }
                }
            }
            if ok {
                matched.insert(source);
            }
        }
        matched
    }

    /// MNS detection for an input whose probe of the opposite state has been
    /// summarised in `lattice` (if the full algorithm is active).
    fn detect_mns(
        &mut self,
        input: &Tuple,
        port: Port,
        candidates: SourceSet,
        lattice: Option<&CnsLattice>,
        ctx: &mut OpContext<'_>,
    ) -> Vec<Tuple> {
        let opp = Self::opposite(port);
        if self.states[opp].is_empty() {
            // Figure 8, line 2: an empty opposite state makes Ø the only MNS.
            return vec![Tuple::empty()];
        }
        match self.policy.detection {
            MnsDetection::EmptyStateOnly => Vec::new(),
            MnsDetection::FullLattice => lattice
                .map(|l| {
                    l.minimal_alive()
                        .into_iter()
                        .map(|sources| input.project(sources))
                        .collect()
                })
                .unwrap_or_default(),
            MnsDetection::Bloom => {
                // A level-1 component is an MNS if any of its equi-join
                // values is definitively absent from the opposite state.
                let mut found = Vec::new();
                for source in candidates.iter() {
                    let single = SourceSet::single(source);
                    let mut absent = false;
                    for p in self.predicates.predicates() {
                        if !p.spans(single, self.schema_of(opp)) {
                            continue;
                        }
                        let (own_col, opp_col) = if single.contains(p.left.source) {
                            (p.left, p.right)
                        } else {
                            (p.right, p.left)
                        };
                        let value = match input.value(own_col) {
                            Some(v) => v.clone(),
                            None => continue,
                        };
                        ctx.metrics.stats.bloom_checks += 1;
                        ctx.metrics.charge(CostKind::BloomCheck, 1);
                        if let Some(filter) = self.blooms[opp].get(&opp_col) {
                            if filter.definitely_absent(&value) {
                                absent = true;
                                break;
                            }
                        }
                    }
                    if absent {
                        found.push(input.project(single));
                    }
                }
                found
            }
        }
    }

    /// Record a value insertion in the Bloom filters of `port`'s state.
    fn update_bloom(&mut self, port: Port, tuple: &Tuple) {
        if self.policy.detection != MnsDetection::Bloom {
            return;
        }
        let own_schema = self.schema_of(port);
        let opp_schema = self.schema_of(Self::opposite(port));
        let columns = self.predicates.join_columns(own_schema, opp_schema);
        for col in columns {
            if let Some(v) = tuple.value(col) {
                self.blooms[port]
                    .entry(col)
                    .or_insert_with(|| {
                        BloomFilter::new(self.policy.bloom_bits, self.policy.bloom_hashes)
                    })
                    .insert(v);
            }
        }
    }

    /// Record an insertion into the state of `side` (normal processing or a
    /// restore): ticks the event clock and starts a presence interval.
    fn note_insertion(&mut self, side: Port, key: TupleKey) {
        self.event_seq += 1;
        self.interval_start[side].insert(key, self.event_seq);
    }

    /// Has the pair (restoring tuple on `side`, stored opposite tuple) been
    /// produced before? True iff their presence intervals ever overlapped:
    /// a pair is joined exactly when one member is inserted while the other
    /// is present, so overlapping presence ⇔ already produced.
    fn produced_before(&self, side: Port, restoring_key: &TupleKey, opp_key: &TupleKey) -> bool {
        let empty = Vec::new();
        let own_hist = self.histories[side].get(restoring_key).unwrap_or(&empty);
        if own_hist.is_empty() {
            // Diverted on arrival: never present, never joined anything.
            return false;
        }
        let opp_side = Self::opposite(side);
        let opp_hist = self.histories[opp_side].get(opp_key).unwrap_or(&empty);
        let overlaps = |a: (u64, u64), b: (u64, u64)| a.0 < b.1 && b.0 < a.1;
        // The opposite tuple's current (ongoing) presence interval.
        let opp_current_start = self.interval_start[opp_side]
            .get(opp_key)
            .copied()
            .unwrap_or(0);
        let opp_current = (opp_current_start, u64::MAX);
        own_hist.iter().any(|&interval| {
            overlaps(interval, opp_current)
                || opp_hist.iter().any(|&other| overlaps(interval, other))
        })
    }

    /// Enter Ø suspension: every future input is buffered unprocessed.
    fn enter_full_suspension(&mut self) {
        self.fully_suspended = true;
    }

    /// Leave Ø suspension, reprocessing buffered inputs with their original
    /// arrival instants (so purge decisions match what a prompt execution
    /// would have done).
    fn exit_full_suspension(
        &mut self,
        ctx: &mut OpContext<'_>,
    ) -> (Vec<DataMessage>, Vec<(Port, Feedback)>) {
        self.fully_suspended = false;
        let pending = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        let mut results = Vec::new();
        let mut feedback = Vec::new();
        for (port, msg, arrived_at) in pending {
            let mut inner = OpContext::new(arrived_at, &mut *ctx.metrics);
            let out = self.process(port, &msg, &mut inner);
            results.extend(out.result_messages());
            feedback.extend(out.feedback);
        }
        (results, feedback)
    }

    /// Handle the suspension (or mark) of one MNS in the producer role.
    fn suspend_one(
        &mut self,
        mns: &Tuple,
        command: FeedbackCommand,
        now: Timestamp,
        ctx: &mut OpContext<'_>,
        outcome: &mut FeedbackOutcome,
    ) {
        if mns.is_empty() {
            self.enter_full_suspension();
            if self.policy.propagate_feedback {
                for side in [LEFT, RIGHT] {
                    outcome
                        .propagate
                        .push((side, Feedback::suspend(vec![Tuple::empty()])));
                    ctx.metrics.stats.feedback_propagated += 1;
                }
            }
            return;
        }
        let on_left = mns.sources().is_subset(self.left_schema);
        let on_right = mns.sources().is_subset(self.right_schema);
        let side = match (on_left, on_right) {
            (true, _) => LEFT,
            (_, true) => RIGHT,
            _ => {
                // Type II MNS: spans both inputs. Handling it requires the
                // mark-result machinery; ignoring it is always legal
                // (Section IV-B) and is the default policy.
                if self.policy.handle_type2 && self.policy.propagate_feedback {
                    let left_part = mns.project(self.left_schema);
                    let right_part = mns.project(self.right_schema);
                    outcome
                        .propagate
                        .push((LEFT, Feedback::mark(vec![left_part])));
                    outcome
                        .propagate
                        .push((RIGHT, Feedback::mark(vec![right_part])));
                    ctx.metrics.stats.feedback_propagated += 2;
                }
                return;
            }
        };
        // Propagate before handling (Section III-C, rule (i)).
        if self.policy.propagate_feedback {
            outcome.propagate.push((
                side,
                Feedback {
                    command,
                    mns_set: vec![mns.clone()],
                },
            ));
            ctx.metrics.stats.feedback_propagated += 1;
        }
        let mode = if command == FeedbackCommand::Mark {
            SuspendMode::Mark
        } else {
            SuspendMode::Suspend
        };
        let sig_columns = self.similarity_columns(mns.sources());
        let entry_idx = self.blacklists[side].upsert_entry(mns.clone(), sig_columns, mode, now);
        // Drain super-tuples (and similar tuples) of the MNS from the state.
        let capture_similar = self.policy.capture_similar;
        let entry_snapshot = self.blacklists[side].entries()[entry_idx].clone();
        let drained = self.states[side]
            .drain_where(|stored| entry_snapshot.captures(&stored.tuple, capture_similar));
        for stored in drained {
            // Close the tuple's presence interval at the current event.
            let key = stored.tuple.key();
            let started = self.interval_start[side].remove(&key).unwrap_or(0);
            self.event_seq += 1;
            self.histories[side]
                .entry(key)
                .or_default()
                .push((started, self.event_seq));
            ctx.metrics.stats.blacklisted_tuples += 1;
            ctx.metrics.charge(CostKind::BlacklistMove, 1);
            self.blacklists[side].add_tuple(entry_idx, stored.tuple, Some(now));
        }
    }

    /// Handle the resumption (or unmark) of one MNS in the producer role.
    fn resume_one(
        &mut self,
        mns: &Tuple,
        command: FeedbackCommand,
        now: Timestamp,
        ctx: &mut OpContext<'_>,
        outcome: &mut FeedbackOutcome,
    ) {
        if mns.is_empty() {
            if self.fully_suspended {
                let (results, feedback) = self.exit_full_suspension(ctx);
                outcome.resumed.extend(results);
                outcome.propagate.extend(feedback);
            }
            if self.policy.propagate_feedback {
                for side in [LEFT, RIGHT] {
                    outcome
                        .propagate
                        .push((side, Feedback::resume(vec![Tuple::empty()])));
                    ctx.metrics.stats.feedback_propagated += 1;
                }
            }
            return;
        }
        let on_left = mns.sources().is_subset(self.left_schema);
        let on_right = mns.sources().is_subset(self.right_schema);
        let side = match (on_left, on_right) {
            (true, _) => LEFT,
            (_, true) => RIGHT,
            _ => return, // Type II: nothing was suspended locally.
        };
        // Propagate so our own producer regenerates what it suppressed.
        if self.policy.propagate_feedback {
            outcome.propagate.push((
                side,
                Feedback {
                    command,
                    mns_set: vec![mns.clone()],
                },
            ));
            ctx.metrics.stats.feedback_propagated += 1;
        }
        let Some(entry) = self.blacklists[side].remove_entry(&mns.key()) else {
            return;
        };
        for suspended in entry.tuples {
            self.restore_suspended(side, suspended, now, ctx, outcome);
        }
    }

    /// Move one suspended tuple back into the state of `side`: regenerate
    /// exactly the pairs never produced before, resume any opposite-side MNS
    /// the tuple is the awaited partner of, and start a fresh presence
    /// interval.
    fn restore_suspended(
        &mut self,
        side: Port,
        suspended: crate::blacklist::BlacklistedTuple,
        now: Timestamp,
        ctx: &mut OpContext<'_>,
        outcome: &mut FeedbackOutcome,
    ) {
        // Expired tuples can no longer contribute results.
        if self.window.is_expired(suspended.tuple.ts(), now) {
            return;
        }
        let opp = Self::opposite(side);
        ctx.metrics.stats.resumed_tuples += 1;
        ctx.metrics.charge(CostKind::BlacklistMove, 1);
        // The restored tuple may be the awaited partner of an MNS
        // detected on the opposite input while it was suspended.
        let matching = self.mns_buffers[opp].take_matching(
            &suspended.tuple,
            &self.predicates,
            self.window,
            ctx.metrics,
        );
        if !matching.is_empty() {
            outcome.propagate.push((opp, Feedback::resume(matching)));
        }
        // Regenerate exactly the pairs never produced before, probing only
        // the candidates sharing the restored tuple's equi-join key.
        let mut evals = 0u64;
        let key = suspended.tuple.key();
        let mut produced = Vec::new();
        let spec_owned;
        let spec = if suspended.tuple.sources() == self.schema_of(side) {
            &self.probe_specs[side]
        } else {
            spec_owned = JoinKeySpec::between(
                &self.predicates,
                self.schema_of(opp),
                suspended.tuple.sources(),
            );
            &spec_owned
        };
        let seqs = self.states[opp].probe(spec, &suspended.tuple);
        for seq in seqs {
            let Some(stored) = self.states[opp].get(seq) else {
                continue;
            };
            ctx.metrics.stats.probe_pairs += 1;
            ctx.metrics.charge(CostKind::ProbePair, 1);
            if !self
                .window
                .can_join(suspended.tuple.ts(), stored.tuple.ts())
            {
                continue;
            }
            if self.produced_before(side, &key, &stored.tuple.key()) {
                continue;
            }
            if self
                .predicates
                .join_matches(&suspended.tuple, &stored.tuple, &mut evals)
            {
                if let Ok(joined) = suspended.tuple.join(&stored.tuple) {
                    ctx.metrics.charge(CostKind::ResultBuild, 1);
                    produced.push(DataMessage::new(joined));
                }
            }
        }
        ctx.metrics.stats.predicate_evals += evals;
        ctx.metrics.charge(CostKind::PredicateEval, evals);
        outcome.resumed.extend(produced);
        // Back into the state; a fresh presence interval starts now.
        self.states[side].insert(suspended.tuple.clone(), now);
        self.note_insertion(side, key);
        self.update_bloom(side, &suspended.tuple);
        ctx.metrics.stats.state_insertions += 1;
        ctx.metrics.charge(CostKind::StateInsert, 1);
    }
}

impl JitJoinOperator {
    /// The consumer/producer step for one input (the body of
    /// [`Operator::process`]).
    ///
    /// `memo_key` is the row's value signature on the batch path (`None` on
    /// the tuple path): rows of one batch that share a signature reuse the
    /// first row's probe/lattice/detection walk when the [`ProbeMemo`]
    /// guards prove the replay exact — one lattice membership walk per
    /// distinct run of equal rows instead of per row, with every counter
    /// charged identically.
    fn process_impl(
        &mut self,
        port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
        memo_key: Option<&[Value]>,
    ) -> OperatorOutput {
        debug_assert!(port == LEFT || port == RIGHT);
        let now = ctx.now;

        // Ø suspension: buffer the input untouched.
        if self.fully_suspended {
            self.pending_bytes += msg.size_bytes();
            self.pending.push((port, msg.clone(), now));
            ctx.metrics.stats.intermediate_suppressed += 1;
            return OperatorOutput::empty();
        }

        let mut feedback: Vec<(Port, Feedback)> = Vec::new();
        self.purge_all(now, ctx, &mut feedback);

        let opp = Self::opposite(port);

        // Producer-side diversion: an arrival captured by a blacklist entry is
        // suspended immediately instead of being processed.
        if let Some(idx) =
            self.blacklists[port].matching_entry(&msg.tuple, self.policy.capture_similar)
        {
            if self.blacklists[port].entries()[idx].mode == SuspendMode::Suspend {
                self.blacklists[port].add_tuple(idx, msg.tuple.clone(), None);
                ctx.metrics.stats.blacklisted_tuples += 1;
                ctx.metrics.stats.intermediate_suppressed += 1;
                ctx.metrics.charge(CostKind::BlacklistMove, 1);
                return OperatorOutput {
                    results: Vec::new(),
                    columnar: None,
                    feedback,
                };
            }
        }

        // Consumer step 1: probe the opposite MNS buffer; matches trigger
        // resumption at the opposite producer.
        let resumed_mns = self.mns_buffers[opp].take_matching(
            &msg.tuple,
            &self.predicates,
            self.window,
            ctx.metrics,
        );
        if !resumed_mns.is_empty() {
            feedback.push((opp, Feedback::resume(resumed_mns)));
        }

        // Batch memo: an equal-signature row earlier in this batch already
        // walked the opposite state. Replay is exact iff the state is
        // untouched since (generation) and the new timestamp provably
        // reproduces every window verdict the walk saw.
        let memo_ok = memo_key.is_some()
            && self.states[opp].index_mode() == StateIndexMode::Hashed
            && !self.states[opp].is_empty()
            && msg.tuple.sources() == self.schema_of(port);
        if memo_ok {
            // INVARIANT: memo_ok checked memo_key.is_some() above.
            let key = memo_key.expect("checked by memo_ok");
            let hit = self.batch_memo[port].get(key).filter(|m| {
                m.generation == self.states[opp].generation()
                    && m.window_verdicts_hold(self.window, msg.tuple.ts())
            });
            if let Some(m) = hit {
                let m = m.clone();
                ctx.metrics.stats.state_probes += 1;
                ctx.metrics.stats.probe_pairs += m.probe_pairs;
                ctx.metrics.charge(CostKind::ProbePair, m.probe_pairs);
                let mut results = ResultBlock::new();
                for &seq in &m.result_seqs {
                    let Some(stored) = self.states[opp].get(seq) else {
                        continue;
                    };
                    if msg.tuple.sources().is_disjoint(stored.tuple.sources()) {
                        ctx.metrics.charge(CostKind::ResultBuild, 1);
                        results.push_join(&msg.tuple, &stored.tuple, msg.marked);
                    }
                }
                ctx.metrics.stats.predicate_evals += m.predicate_evals;
                ctx.metrics
                    .charge(CostKind::PredicateEval, m.predicate_evals);
                ctx.metrics.stats.lattice_nodes_visited += m.lattice_nodes;
                ctx.metrics.charge(CostKind::LatticeNode, m.lattice_nodes);
                ctx.metrics.stats.bloom_checks += m.bloom_checks;
                ctx.metrics.charge(CostKind::BloomCheck, m.bloom_checks);
                let detected: Vec<Tuple> = m
                    .detected
                    .iter()
                    .map(|&srcs| msg.tuple.project(srcs))
                    .collect();
                return self.finish_process(port, msg, now, detected, results, feedback, ctx);
            }
        }

        // Consumer step 2: probe the opposite state, producing results and
        // feeding the CNS lattice.
        let candidates = self.candidate_sources(&msg.tuple, port);
        let mut lattice = match self.policy.detection {
            MnsDetection::FullLattice if !self.states[opp].is_empty() && !candidates.is_empty() => {
                Some(CnsLattice::new(candidates))
            }
            _ => None,
        };
        ctx.metrics.stats.state_probes += 1;
        let walk_counters_before = (
            ctx.metrics.stats.probe_pairs,
            ctx.metrics.stats.lattice_nodes_visited,
            ctx.metrics.stats.bloom_checks,
        );
        let mut window_log = WindowLog::default();
        let mut results = ResultBlock::new();
        let mut evals = 0u64;
        let mut pairs: Vec<(u64, Tuple)> = Vec::new();
        if self.states[opp].index_mode() == StateIndexMode::Hashed {
            // Hash-indexed probe: only candidates carrying the full
            // spanning equi-join key (plus unindexable overflow entries)
            // are examined for results. The spec is precomputed per port;
            // a fresh one is derived only for inputs not covering the
            // port's schema exactly (never the case in well-formed plans).
            let spec_owned;
            let spec = if msg.tuple.sources() == self.schema_of(port) {
                &self.probe_specs[port]
            } else {
                spec_owned = JoinKeySpec::between(
                    &self.predicates,
                    self.schema_of(opp),
                    msg.tuple.sources(),
                );
                &spec_owned
            };
            let seqs = self.states[opp].probe(spec, &msg.tuple);
            for seq in seqs {
                let Some(stored) = self.states[opp].get(seq) else {
                    continue;
                };
                ctx.metrics.stats.probe_pairs += 1;
                ctx.metrics.charge(CostKind::ProbePair, 1);
                let pass = self.window.can_join(msg.tuple.ts(), stored.tuple.ts());
                window_log.note(stored.tuple.ts(), msg.tuple.ts(), pass);
                if !pass {
                    continue;
                }
                let matched =
                    self.matched_components(&msg.tuple, &stored.tuple, candidates, &mut evals);
                if let Some(l) = lattice.as_mut() {
                    l.observe(matched, ctx.metrics);
                }
                if matched == candidates {
                    pairs.push((seq, stored.tuple.clone()));
                }
            }
            // The lattice's remaining nodes are settled by one membership
            // probe each (largest first, so a hit also kills the
            // sub-nodes): node S is dead iff some live stored tuple within
            // the window matches every predicate from S — exactly what the
            // per-tuple scan used to establish. The top node is already
            // settled by the full probe above.
            if let Some(l) = lattice.as_mut() {
                // Settling order is precomputed per port; derive it fresh
                // only for inputs not covering the port's schema exactly.
                let node_order_owned;
                let node_order: &[SourceSet] = if msg.tuple.sources() == self.schema_of(port) {
                    &self.node_order[port]
                } else {
                    let mut nodes = candidates.non_empty_subsets();
                    nodes.sort_by_key(|s| std::cmp::Reverse(s.len()));
                    node_order_owned = nodes;
                    &node_order_owned
                };
                for &node in node_order {
                    if l.all_dead() {
                        break;
                    }
                    if node == candidates || !l.is_alive(node) {
                        continue;
                    }
                    let node_spec_owned;
                    let node_spec = match self.node_specs[port].get(&node) {
                        Some(spec) => spec,
                        None => {
                            node_spec_owned =
                                JoinKeySpec::between(&self.predicates, self.schema_of(opp), node);
                            &node_spec_owned
                        }
                    };
                    let seqs = self.states[opp].probe(node_spec, &msg.tuple);
                    let mut hit = false;
                    for seq in seqs {
                        let Some(stored) = self.states[opp].get(seq) else {
                            continue;
                        };
                        ctx.metrics.stats.probe_pairs += 1;
                        ctx.metrics.charge(CostKind::ProbePair, 1);
                        let pass = self.window.can_join(msg.tuple.ts(), stored.tuple.ts());
                        window_log.note(stored.tuple.ts(), msg.tuple.ts(), pass);
                        if !pass {
                            continue;
                        }
                        if self.matched_components(&msg.tuple, &stored.tuple, node, &mut evals)
                            == node
                        {
                            hit = true;
                            break;
                        }
                    }
                    if hit {
                        l.observe(node, ctx.metrics);
                    }
                }
            }
        } else {
            // Scan baseline: every stored tuple is examined and observed.
            for stored in self.states[opp].iter() {
                ctx.metrics.stats.probe_pairs += 1;
                ctx.metrics.charge(CostKind::ProbePair, 1);
                if !self.window.can_join(msg.tuple.ts(), stored.tuple.ts()) {
                    continue;
                }
                let matched =
                    self.matched_components(&msg.tuple, &stored.tuple, candidates, &mut evals);
                if let Some(l) = lattice.as_mut() {
                    l.observe(matched, ctx.metrics);
                }
                if matched == candidates {
                    pairs.push((u64::MAX, stored.tuple.clone()));
                }
            }
        }
        let mut result_seqs = Vec::new();
        for (seq, stored_tuple) in pairs {
            if msg.tuple.sources().is_disjoint(stored_tuple.sources()) {
                ctx.metrics.charge(CostKind::ResultBuild, 1);
                results.push_join(&msg.tuple, &stored_tuple, msg.marked);
                result_seqs.push(seq);
            }
        }
        ctx.metrics.stats.predicate_evals += evals;
        ctx.metrics.charge(CostKind::PredicateEval, evals);

        // Consumer step 3: detect MNSs of the input and report them to the
        // producer of this side.
        let detected = self.detect_mns(&msg.tuple, port, candidates, lattice.as_ref(), ctx);
        if memo_ok {
            // INVARIANT: memo_ok checked memo_key.is_some() above.
            let key = memo_key.expect("checked by memo_ok");
            self.batch_memo[port].insert(
                key.to_vec(),
                ProbeMemo {
                    generation: self.states[opp].generation(),
                    probe_pairs: ctx.metrics.stats.probe_pairs - walk_counters_before.0,
                    predicate_evals: evals,
                    lattice_nodes: ctx.metrics.stats.lattice_nodes_visited - walk_counters_before.1,
                    bloom_checks: ctx.metrics.stats.bloom_checks - walk_counters_before.2,
                    result_seqs,
                    detected: detected.iter().map(|t| t.sources()).collect(),
                    window_log,
                },
            );
        }
        self.finish_process(port, msg, now, detected, results, feedback, ctx)
    }

    /// Shared tail of [`JitJoinOperator::process_impl`] (live walk and memo
    /// replay): MNS-buffer insertion + suspension feedback, then
    /// purge--probe--insert completes with the insertion.
    #[allow(clippy::too_many_arguments)]
    fn finish_process(
        &mut self,
        port: Port,
        msg: &DataMessage,
        now: Timestamp,
        detected: Vec<Tuple>,
        results: ResultBlock,
        mut feedback: Vec<(Port, Feedback)>,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        let mut fresh = Vec::new();
        for mns in detected {
            if self.mns_buffers[port].insert(mns.clone(), now) {
                fresh.push(mns);
            }
        }
        if !fresh.is_empty() {
            ctx.metrics.stats.mns_detected += fresh.len() as u64;
            feedback.push((port, Feedback::suspend(fresh)));
        }

        self.states[port].insert(msg.tuple.clone(), now);
        self.note_insertion(port, msg.tuple.key());
        self.update_bloom(port, &msg.tuple);
        ctx.metrics.stats.state_insertions += 1;
        ctx.metrics.charge(CostKind::StateInsert, 1);

        OperatorOutput {
            results: Vec::new(),
            columnar: (!results.is_empty()).then_some(results),
            feedback,
        }
    }
}

impl Operator for JitJoinOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        self.left_schema.union(self.right_schema)
    }

    fn num_ports(&self) -> usize {
        2
    }

    fn is_suspended(&self) -> bool {
        self.fully_suspended
    }

    fn process(
        &mut self,
        port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        self.process_impl(port, msg, ctx, None)
    }

    fn prepare_batch(
        &mut self,
        port: Port,
        batch: &Batch,
        _block_min_ts: Timestamp,
        _ctx: &mut OpContext<'_>,
    ) -> Option<BatchPrep> {
        // The memo never outlives the block that built it (both per-port
        // maps are cleared: one block prepares every subscribed port before
        // its first row).
        self.batch_memo[LEFT].clear();
        self.batch_memo[RIGHT].clear();
        if self.fully_suspended {
            return None;
        }
        let arity = batch.rows().first().map_or(0, |r| r.arity());
        if arity == 0
            || batch.len() < 2
            || self.states[Self::opposite(port)].index_mode() != StateIndexMode::Hashed
        {
            return None;
        }
        // Row signature = every column of the source, extracted columnar-ly
        // (typed arrays are copied slice-at-a-time); rows with identical
        // signatures share one probe/lattice walk via the batch memo.
        let cols: Vec<ColumnRef> = (0..arity)
            .map(|c| ColumnRef::new(batch.source(), c as u16))
            .collect();
        let mut keys = Vec::new();
        let mut valid = Vec::new();
        jit_types::kernel::extract_probe_keys(batch, &cols, &mut keys, &mut valid);
        // Only signatures that occur more than once in this batch can ever
        // be replayed; unique rows skip the memo bookkeeping entirely
        // (their walk is live either way).
        let mut occurrences: FastMap<&[Value], u32> = FastMap::default();
        for r in 0..batch.len() {
            if valid[r] {
                *occurrences
                    .entry(&keys[r * arity..(r + 1) * arity])
                    .or_insert(0) += 1;
            }
        }
        let repeated: Vec<bool> = (0..batch.len())
            .map(|r| {
                valid[r]
                    && occurrences
                        .get(&keys[r * arity..(r + 1) * arity])
                        .is_some_and(|&n| n > 1)
            })
            .collect();
        valid = repeated;
        if !valid.iter().any(|&v| v) {
            return None;
        }
        Some(BatchPrep::Probe(ProbePrep {
            keys,
            valid,
            arity,
            skip_purge: false,
        }))
    }

    fn process_batch_row(
        &mut self,
        port: Port,
        row: usize,
        prep: &BatchPrep,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        let key = match prep {
            BatchPrep::Probe(p) => p.key(row),
            _ => None,
        };
        self.process_impl(port, msg, ctx, key)
    }

    fn flush(&mut self, ctx: &mut OpContext<'_>) -> FeedbackOutcome {
        let now = ctx.now;
        let mut outcome = FeedbackOutcome::empty();
        if self.fully_suspended {
            let (results, feedback) = self.exit_full_suspension(ctx);
            outcome.resumed.extend(results);
            outcome.propagate.extend(feedback);
        }
        for side in [LEFT, RIGHT] {
            let suspended: Vec<Tuple> = self.blacklists[side]
                .entries()
                .iter()
                .map(|entry| entry.mns.clone())
                .collect();
            for mns in suspended {
                self.resume_one(&mns, FeedbackCommand::Resume, now, ctx, &mut outcome);
            }
        }
        outcome
    }

    fn on_watermark(&mut self, ctx: &mut OpContext<'_>) -> OperatorOutput {
        // Under the watermark clock expiry work runs here instead of
        // piggybacking on the next arrival; in particular the resumption of
        // suppressed tuples whose MNS justification expired must not wait
        // for traffic. While Ø-suspended nothing is purged: pending inputs
        // replay with their original arrival instants on resumption, and
        // purging at the watermark would remove state they still need.
        if self.fully_suspended {
            return OperatorOutput::empty();
        }
        let mut feedback = Vec::new();
        self.purge_all(ctx.now, ctx, &mut feedback);
        OperatorOutput {
            results: Vec::new(),
            columnar: None,
            feedback,
        }
    }

    fn handle_feedback(&mut self, fb: &Feedback, ctx: &mut OpContext<'_>) -> FeedbackOutcome {
        let now = ctx.now;
        let mut outcome = FeedbackOutcome::empty();
        match fb.command {
            FeedbackCommand::Suspend | FeedbackCommand::Mark => {
                for mns in &fb.mns_set {
                    self.suspend_one(mns, fb.command, now, ctx, &mut outcome);
                }
            }
            FeedbackCommand::Resume | FeedbackCommand::Unmark => {
                for mns in &fb.mns_set {
                    self.resume_one(mns, fb.command, now, ctx, &mut outcome);
                }
            }
        }
        outcome
    }

    fn memory_bytes(&self) -> usize {
        self.states[LEFT].size_bytes()
            + self.states[RIGHT].size_bytes()
            + self.mns_buffers[LEFT].size_bytes()
            + self.mns_buffers[RIGHT].size_bytes()
            + self.blacklists[LEFT].size_bytes()
            + self.blacklists[RIGHT].size_bytes()
            + self.pending_bytes
            + self.blooms[LEFT]
                .values()
                .chain(self.blooms[RIGHT].values())
                .map(|b| b.size_bytes())
                .sum::<usize>()
    }

    fn checkpoint(&self) -> Content {
        // Everything derivable from the query is rebuilt by the constructor
        // (probe/node specs, node order); everything that evolved with the
        // stream is persisted. `pending_bytes` is recomputed on restore.
        let pending: Vec<(usize, Tuple, bool, Timestamp)> = self
            .pending
            .iter()
            .map(|(port, msg, at)| (*port, msg.tuple.clone(), msg.marked, *at))
            .collect();
        let per_side = |f: &dyn Fn(usize) -> Content| Content::Seq(vec![f(LEFT), f(RIGHT)]);
        Content::Map(vec![
            (
                "states".to_string(),
                per_side(&|s| self.states[s].checkpoint()),
            ),
            (
                "mns_buffers".to_string(),
                per_side(&|s| self.mns_buffers[s].checkpoint()),
            ),
            (
                "blacklists".to_string(),
                per_side(&|s| self.blacklists[s].checkpoint()),
            ),
            (
                "histories".to_string(),
                per_side(&|s| sorted_pairs(&self.histories[s]).to_content()),
            ),
            ("event_seq".to_string(), self.event_seq.to_content()),
            (
                "interval_start".to_string(),
                per_side(&|s| sorted_pairs(&self.interval_start[s]).to_content()),
            ),
            (
                "blooms".to_string(),
                per_side(&|s| sorted_pairs(&self.blooms[s]).to_content()),
            ),
            (
                "fully_suspended".to_string(),
                self.fully_suspended.to_content(),
            ),
            ("pending".to_string(), pending.to_content()),
        ])
    }

    fn restore(&mut self, state: &Content) -> Result<(), serde::Error> {
        const TY: &str = "JitJoinOperator";
        let map = state
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", TY))?;
        let sides = |name: &str| -> Result<[Content; 2], serde::Error> {
            let blob: Content = serde::field(map, name, TY)?;
            let pair = blob.as_seq_n(2, TY)?;
            Ok([pair[0].clone(), pair[1].clone()])
        };
        let states = sides("states")?;
        let mns_buffers = sides("mns_buffers")?;
        let blacklists = sides("blacklists")?;
        let histories = sides("histories")?;
        let interval_start = sides("interval_start")?;
        let blooms = sides("blooms")?;
        for side in [LEFT, RIGHT] {
            self.states[side].restore_checkpoint(&states[side])?;
            self.mns_buffers[side].restore_checkpoint(&mns_buffers[side])?;
            self.blacklists[side].restore_checkpoint(&blacklists[side])?;
            self.histories[side] =
                Vec::<(TupleKey, Vec<(u64, u64)>)>::from_content(&histories[side])?
                    .into_iter()
                    .collect();
            self.interval_start[side] =
                Vec::<(TupleKey, u64)>::from_content(&interval_start[side])?
                    .into_iter()
                    .collect();
            self.blooms[side] = Vec::<(ColumnRef, BloomFilter)>::from_content(&blooms[side])?
                .into_iter()
                .collect();
        }
        self.event_seq = serde::field(map, "event_seq", TY)?;
        self.fully_suspended = serde::field(map, "fully_suspended", TY)?;
        let pending: Vec<(usize, Tuple, bool, Timestamp)> = serde::field(map, "pending", TY)?;
        self.pending = pending
            .into_iter()
            .map(|(port, tuple, marked, at)| (port, DataMessage { tuple, marked }, at))
            .collect();
        self.pending_bytes = self
            .pending
            .iter()
            .map(|(_, msg, _)| msg.size_bytes())
            .sum();
        Ok(())
    }

    fn suppression_digest(&self) -> SuppressionDigest {
        let mut digest = SuppressionDigest::default();
        for side in [LEFT, RIGHT] {
            for entry in self.blacklists[side].entries() {
                digest.add(entry.signature_columns.clone(), entry.signature.clone());
            }
        }
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_metrics::RunMetrics;
    use jit_types::{BaseTuple, Duration, SourceId, Value};
    use std::sync::Arc;

    /// Sources: A=0, B=1, C=2 with the Figure 1 predicates
    /// A.x0 = B.x0 and A.x1 = C.x0.
    fn figure1_predicates() -> PredicateSet {
        PredicateSet::from_predicates(vec![
            jit_types::EquiPredicate::new(
                ColumnRef::new(SourceId(0), 0),
                ColumnRef::new(SourceId(1), 0),
            ),
            jit_types::EquiPredicate::new(
                ColumnRef::new(SourceId(0), 1),
                ColumnRef::new(SourceId(2), 0),
            ),
        ])
    }

    fn window() -> Window {
        Window::new(Duration::from_mins(5))
    }

    fn op1(policy: JitPolicy) -> JitJoinOperator {
        JitJoinOperator::new(
            "A⋈B",
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(1)),
            figure1_predicates(),
            window(),
            policy,
        )
    }

    fn op2(policy: JitPolicy) -> JitJoinOperator {
        JitJoinOperator::new(
            "AB⋈C",
            SourceSet::first_n(2),
            SourceSet::single(SourceId(2)),
            figure1_predicates(),
            window(),
            policy,
        )
    }

    fn a(seq: u64, ts_s: u64, x: i64, y: i64) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            seq,
            Timestamp::from_secs(ts_s),
            vec![Value::int(x), Value::int(y)],
        ))))
    }

    fn b(seq: u64, ts_s: u64, x: i64) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(1),
            seq,
            Timestamp::from_secs(ts_s),
            vec![Value::int(x)],
        ))))
    }

    fn c(seq: u64, ts_s: u64, y: i64) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(2),
            seq,
            Timestamp::from_secs(ts_s),
            vec![Value::int(y)],
        ))))
    }

    fn process(
        op: &mut JitJoinOperator,
        port: Port,
        msg: &DataMessage,
        metrics: &mut RunMetrics,
    ) -> OperatorOutput {
        let now = msg.tuple.ts();
        let mut ctx = OpContext::new(now, metrics);
        op.process(port, msg, &mut ctx)
    }

    /// A checkpoint captures the whole evolving state — operator states,
    /// blacklists, MNS buffers, presence histories, Bloom filters — so a
    /// restored operator behaves identically on the subsequent stream.
    #[test]
    fn checkpoint_restores_full_dynamic_state() {
        let mut orig = op1(JitPolicy::bloom());
        let mut metrics = RunMetrics::new();
        process(&mut orig, RIGHT, &b(1, 0, 1), &mut metrics);
        process(&mut orig, LEFT, &a(1, 1, 1, 100), &mut metrics);
        // Suspend a1: it moves to the blacklist; a2 is then diverted there.
        let mut ctx = OpContext::new(Timestamp::from_secs(1), &mut metrics);
        orig.handle_feedback(&Feedback::suspend(vec![a(1, 1, 1, 100).tuple]), &mut ctx);
        process(&mut orig, LEFT, &a(2, 2, 1, 100), &mut metrics);

        let blob = orig.checkpoint();
        let mut restored = op1(JitPolicy::bloom());
        restored.restore(&blob).unwrap();
        assert_eq!(restored.memory_bytes(), orig.memory_bytes());
        assert_eq!(restored.blacklist_len(LEFT), orig.blacklist_len(LEFT));
        assert_eq!(restored.state_len(RIGHT), orig.state_len(RIGHT));

        // Resuming a1 must release the same tuples with the same
        // catch-up joins in both operators (exercises the restored
        // presence histories and joined-up-to instants).
        let fb = Feedback::resume(vec![a(1, 1, 1, 100).tuple]);
        let mut ctx = OpContext::new(Timestamp::from_secs(3), &mut metrics);
        let out_orig = orig.handle_feedback(&fb, &mut ctx);
        let mut ctx = OpContext::new(Timestamp::from_secs(3), &mut metrics);
        let out_rest = restored.handle_feedback(&fb, &mut ctx);
        let keys = |msgs: &[DataMessage]| msgs.iter().map(|m| m.tuple.key()).collect::<Vec<_>>();
        assert_eq!(keys(&out_rest.resumed), keys(&out_orig.resumed));
        // And the next arrival joins identically.
        let out_orig = process(&mut orig, RIGHT, &b(5, 4, 1), &mut metrics);
        let out_rest = process(&mut restored, RIGHT, &b(5, 4, 1), &mut metrics);
        assert_eq!(
            keys(&out_rest.result_messages()),
            keys(&out_orig.result_messages())
        );
    }

    /// Ø suspension survives a checkpoint: the buffered pending inputs are
    /// replayed with their original arrival instants after a restore.
    #[test]
    fn checkpoint_round_trips_full_suspension_and_pending() {
        let mut orig = op1(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        process(&mut orig, RIGHT, &b(1, 0, 1), &mut metrics);
        let mut ctx = OpContext::new(Timestamp::from_secs(1), &mut metrics);
        orig.handle_feedback(&Feedback::suspend(vec![Tuple::empty()]), &mut ctx);
        // Buffered unprocessed while fully suspended.
        process(&mut orig, LEFT, &a(1, 2, 1, 100), &mut metrics);
        assert!(orig.is_fully_suspended());

        let mut restored = op1(JitPolicy::full());
        restored.restore(&orig.checkpoint()).unwrap();
        assert!(restored.is_fully_suspended());
        assert_eq!(restored.memory_bytes(), orig.memory_bytes());
        // Flushing replays the pending input against the restored state.
        let mut ctx = OpContext::new(Timestamp::from_secs(3), &mut metrics);
        let out = restored.flush(&mut ctx);
        assert_eq!(out.resumed.len(), 1);
        assert_eq!(out.resumed[0].tuple.num_parts(), 2);
    }

    /// Table I scenario at the consumer Op2: an AB tuple with no C partner
    /// yields a suspension feedback naming the A component as MNS.
    #[test]
    fn consumer_detects_component_mns() {
        let mut consumer = op2(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        // A C tuple with y=999 sits in the right state, so it is not empty.
        process(&mut consumer, RIGHT, &c(0, 0, 999), &mut metrics);
        // a1b1 arrives: matching on A.x1=C.x0 fails → a1 is an MNS.
        let a1 = a(1, 1, 1, 100);
        let b1 = b(1, 0, 1);
        let a1b1 = DataMessage::new(a1.tuple.join(&b1.tuple).unwrap());
        let out = process(&mut consumer, LEFT, &a1b1, &mut metrics);
        assert!(out.result_messages().is_empty());
        let (port, fb) = out
            .feedback
            .iter()
            .find(|(_, fb)| fb.command == FeedbackCommand::Suspend)
            .expect("a suspension feedback must be issued");
        assert_eq!(*port, LEFT);
        assert_eq!(fb.mns_set.len(), 1);
        assert_eq!(fb.mns_set[0].sources(), SourceSet::single(SourceId(0)));
        assert_eq!(consumer.mns_buffer_len(LEFT), 1);
        // Two detections in total: the Ø MNS when c arrived into an empty
        // operator, and the a1 component MNS.
        assert_eq!(metrics.stats.mns_detected, 2);
    }

    /// An empty opposite state yields the Ø MNS (the DOE case).
    #[test]
    fn consumer_detects_empty_mns_when_state_empty() {
        let mut consumer = op2(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        let ab = DataMessage::new(a(1, 1, 1, 100).tuple.join(&b(1, 0, 1).tuple).unwrap());
        let out = process(&mut consumer, LEFT, &ab, &mut metrics);
        let (_, fb) = &out.feedback[0];
        assert_eq!(fb.command, FeedbackCommand::Suspend);
        assert!(fb.mns_set[0].is_empty());
    }

    /// The producer suspends production for a reported MNS: existing
    /// super-tuples move to the blacklist and future similar tuples are
    /// diverted (Table I: b4 and a2 generate nothing).
    #[test]
    fn producer_suspends_and_diverts() {
        let mut producer = op1(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        // b1, b2, b3 then a1: the probe produces three partial results.
        for (i, bm) in [b(1, 0, 1), b(2, 0, 1), b(3, 0, 1)].iter().enumerate() {
            let out = process(&mut producer, RIGHT, bm, &mut metrics);
            assert!(
                out.result_messages().is_empty(),
                "b{} should produce nothing",
                i + 1
            );
        }
        let out = process(&mut producer, LEFT, &a(1, 1, 1, 100), &mut metrics);
        assert_eq!(out.num_results(), 3);
        // The consumer reports a1 as MNS.
        let a1_sub = a(1, 1, 1, 100).tuple;
        let mut ctx = OpContext::new(Timestamp::from_secs(1), &mut metrics);
        let outcome = producer.handle_feedback(&Feedback::suspend(vec![a1_sub.clone()]), &mut ctx);
        assert!(outcome.resumed.is_empty());
        assert_eq!(producer.blacklist_len(LEFT), 1);
        assert_eq!(producer.state_len(LEFT), 0);
        // b4 arrives: a1 is no longer in the state, so nothing is produced.
        let out = process(&mut producer, RIGHT, &b(4, 2, 1), &mut metrics);
        assert!(out.result_messages().is_empty());
        // a2 has the same join attribute y=100 → diverted into the blacklist.
        let out = process(&mut producer, LEFT, &a(2, 3, 1, 100), &mut metrics);
        assert!(out.result_messages().is_empty());
        assert_eq!(producer.blacklist_len(LEFT), 2);
        assert!(metrics.stats.intermediate_suppressed >= 1);
        // An unrelated A tuple (different y) is processed normally.
        let out = process(&mut producer, LEFT, &a(3, 4, 1, 200), &mut metrics);
        assert_eq!(out.num_results(), 4); // joins b1..b4
    }

    /// Resumption regenerates exactly the missing partial results: a1 is not
    /// re-joined with b1 (produced before the suspension), a2 joins everything.
    #[test]
    fn resumption_regenerates_without_duplicates() {
        let mut producer = op1(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        for bm in [b(1, 0, 1), b(2, 0, 1), b(3, 0, 1)] {
            process(&mut producer, RIGHT, &bm, &mut metrics);
        }
        // a1 probes and produces a1b1, a1b2, a1b3 (batch granularity).
        let out = process(&mut producer, LEFT, &a(1, 1, 1, 100), &mut metrics);
        assert_eq!(out.num_results(), 3);
        let a1_sub = a(1, 1, 1, 100).tuple;
        let mut ctx = OpContext::new(Timestamp::from_secs(1), &mut metrics);
        producer.handle_feedback(&Feedback::suspend(vec![a1_sub.clone()]), &mut ctx);
        // b4 arrives (suppressed), a2 arrives (diverted).
        process(&mut producer, RIGHT, &b(4, 2, 1), &mut metrics);
        process(&mut producer, LEFT, &a(2, 3, 1, 100), &mut metrics);
        // Resume a1.
        let mut ctx = OpContext::new(Timestamp::from_secs(4), &mut metrics);
        let outcome = producer.handle_feedback(&Feedback::resume(vec![a1_sub]), &mut ctx);
        // a1 joins only b4 (b1-b3 were produced before the suspension);
        // a2 joins b1, b2, b3, b4.
        assert_eq!(outcome.resumed.len(), 1 + 4);
        assert_eq!(producer.blacklist_len(LEFT), 0);
        assert_eq!(producer.state_len(LEFT), 2);
        // No duplicates among resumed results.
        let keys: std::collections::HashSet<_> =
            outcome.resumed.iter().map(|m| m.tuple.key()).collect();
        assert_eq!(keys.len(), outcome.resumed.len());
        assert_eq!(metrics.stats.resumed_tuples, 2);
    }

    /// The consumer resumes an MNS when a matching partner finally arrives.
    #[test]
    fn consumer_sends_resume_on_matching_arrival() {
        let mut consumer = op2(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        process(&mut consumer, RIGHT, &c(0, 0, 999), &mut metrics);
        let a1b1 = DataMessage::new(a(1, 1, 1, 100).tuple.join(&b(1, 0, 1).tuple).unwrap());
        process(&mut consumer, LEFT, &a1b1, &mut metrics);
        assert_eq!(consumer.mns_buffer_len(LEFT), 1);
        // c1 with y=100 matches the buffered MNS a1.
        let out = process(&mut consumer, RIGHT, &c(1, 2, 100), &mut metrics);
        assert!(out
            .feedback
            .iter()
            .any(|(port, fb)| *port == LEFT && fb.command == FeedbackCommand::Resume));
        assert_eq!(consumer.mns_buffer_len(LEFT), 0);
        // c1 also joins the stored a1b1 directly.
        assert_eq!(out.num_results(), 1);
    }

    /// Ø suspension buffers inputs and reprocesses them faithfully on resume.
    #[test]
    fn full_suspension_buffers_and_replays() {
        let mut producer = op1(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::from_secs(1), &mut metrics);
        producer.handle_feedback(&Feedback::suspend(vec![Tuple::empty()]), &mut ctx);
        assert!(producer.is_fully_suspended());
        // Arrivals are buffered, not processed.
        assert!(process(&mut producer, RIGHT, &b(1, 2, 7), &mut metrics).is_empty());
        assert!(process(&mut producer, LEFT, &a(1, 3, 7, 50), &mut metrics).is_empty());
        assert_eq!(producer.state_len(LEFT), 0);
        assert_eq!(producer.state_len(RIGHT), 0);
        assert!(producer.memory_bytes() > 0);
        // Resume Ø: the buffered tuples are replayed and the join appears.
        let mut ctx = OpContext::new(Timestamp::from_secs(4), &mut metrics);
        let outcome = producer.handle_feedback(&Feedback::resume(vec![Tuple::empty()]), &mut ctx);
        assert!(!producer.is_fully_suspended());
        assert_eq!(outcome.resumed.len(), 1);
        assert_eq!(producer.state_len(LEFT), 1);
        assert_eq!(producer.state_len(RIGHT), 1);
    }

    /// Feedback for a Type I MNS is propagated upstream in its original form.
    #[test]
    fn feedback_propagation_preserves_type1_mns() {
        let mut middle = op2(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        let a1 = a(1, 1, 1, 100).tuple;
        let mut ctx = OpContext::new(Timestamp::from_secs(1), &mut metrics);
        let outcome = middle.handle_feedback(&Feedback::suspend(vec![a1.clone()]), &mut ctx);
        // a1 is a sub-tuple of the left input (AB), so the suspension goes left.
        assert!(outcome.propagate.iter().any(|(port, fb)| *port == LEFT
            && fb.command == FeedbackCommand::Suspend
            && fb.mns_set[0].key() == a1.key()));
        assert_eq!(metrics.stats.feedback_propagated, 1);
        // Without propagation the list stays empty.
        let mut quiet = op2(JitPolicy::full().without_propagation());
        let mut ctx = OpContext::new(Timestamp::from_secs(1), &mut metrics);
        let outcome = quiet.handle_feedback(&Feedback::suspend(vec![a1]), &mut ctx);
        assert!(outcome.propagate.is_empty());
    }

    /// DOE (empty-state-only) never detects component MNSs.
    #[test]
    fn doe_policy_only_reports_empty_mns() {
        let mut consumer = op2(JitPolicy::doe());
        let mut metrics = RunMetrics::new();
        process(&mut consumer, RIGHT, &c(0, 0, 999), &mut metrics);
        let ab = DataMessage::new(a(1, 1, 1, 100).tuple.join(&b(1, 0, 1).tuple).unwrap());
        let out = process(&mut consumer, LEFT, &ab, &mut metrics);
        // Opposite state is non-empty, so DOE detects nothing.
        assert!(out
            .feedback
            .iter()
            .all(|(_, fb)| fb.command != FeedbackCommand::Suspend));
    }

    /// Bloom detection finds value-absent components without a lattice.
    #[test]
    fn bloom_policy_detects_absent_values() {
        let mut consumer = op2(JitPolicy::bloom());
        let mut metrics = RunMetrics::new();
        process(&mut consumer, RIGHT, &c(0, 0, 999), &mut metrics);
        let ab = DataMessage::new(a(1, 1, 1, 100).tuple.join(&b(1, 0, 1).tuple).unwrap());
        let out = process(&mut consumer, LEFT, &ab, &mut metrics);
        assert!(out
            .feedback
            .iter()
            .any(|(port, fb)| *port == LEFT && fb.command == FeedbackCommand::Suspend));
        assert!(metrics.stats.bloom_checks > 0);
    }

    /// Expired MNSs trigger a release (resume) towards the producer so that
    /// still-alive similar tuples are not suppressed forever.
    #[test]
    fn expired_mns_triggers_release_feedback() {
        let mut consumer = op2(JitPolicy::full());
        let mut metrics = RunMetrics::new();
        process(&mut consumer, RIGHT, &c(0, 0, 999), &mut metrics);
        let ab = DataMessage::new(a(1, 1, 1, 100).tuple.join(&b(1, 0, 1).tuple).unwrap());
        process(&mut consumer, LEFT, &ab, &mut metrics);
        assert_eq!(consumer.mns_buffer_len(LEFT), 1);
        // Long after the MNS expired, any arrival triggers the release.
        let out = process(&mut consumer, RIGHT, &c(5, 1_000, 555), &mut metrics);
        assert!(out
            .feedback
            .iter()
            .any(|(port, fb)| *port == LEFT && fb.command == FeedbackCommand::Resume));
        assert_eq!(consumer.mns_buffer_len(LEFT), 0);
    }

    #[test]
    fn metadata_and_memory() {
        let op = op1(JitPolicy::full());
        assert_eq!(op.num_ports(), 2);
        assert_eq!(op.output_schema(), SourceSet::first_n(2));
        assert_eq!(op.memory_bytes(), 0);
        assert!(!op.is_suspended());
        assert_eq!(op.policy().detection, MnsDetection::FullLattice);
        assert_eq!(op.name(), "A⋈B");
    }
}
