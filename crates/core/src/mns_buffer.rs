//! The consumer-side MNS buffer.
//!
//! Section III-A: "OC stores all detected MNSs in an MNS buffer until their
//! expiration, and probes each incoming tuple from the opposite input against
//! the MNS buffer." A match removes the MNS and triggers a resumption
//! feedback to the producer.

use jit_metrics::{CostKind, RunMetrics};
use jit_types::{PredicateSet, Timestamp, Tuple, TupleKey, Window};

/// One buffered MNS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MnsEntry {
    /// The minimal non-demanded sub-tuple.
    pub mns: Tuple,
    /// When it was detected (application time).
    pub detected_at: Timestamp,
}

/// A buffer of detected MNSs for one input side of a consumer.
#[derive(Debug, Clone, Default)]
pub struct MnsBuffer {
    name: String,
    entries: Vec<MnsEntry>,
    bytes: usize,
}

impl MnsBuffer {
    /// An empty buffer with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        MnsBuffer {
            name: name.into(),
            entries: Vec::new(),
            bytes: 0,
        }
    }

    /// The buffer's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of buffered MNSs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Analytical size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Is an MNS with the same component identity already buffered?
    pub fn contains(&self, mns: &Tuple) -> bool {
        let key = mns.key();
        self.entries.iter().any(|e| e.mns.key() == key)
    }

    /// Buffer a newly detected MNS (ignored if an identical one is present).
    /// Returns whether it was inserted.
    pub fn insert(&mut self, mns: Tuple, now: Timestamp) -> bool {
        if self.contains(&mns) {
            return false;
        }
        self.bytes += mns.size_bytes();
        self.entries.push(MnsEntry {
            mns,
            detected_at: now,
        });
        true
    }

    /// Drop MNSs whose components have expired. The empty MNS Ø never
    /// expires through the window (it is removed when resumed).
    pub fn purge(&mut self, window: Window, now: Timestamp) -> usize {
        self.take_expired(window, now).len()
    }

    /// Remove and return the MNSs whose components have expired.
    ///
    /// The caller (the consumer operator) turns these into resumption
    /// feedback: once the justification for a suspension has expired, the
    /// producer must release any still-alive similar tuples it suppressed on
    /// its behalf, otherwise their future join partners would be missed.
    pub fn take_expired(&mut self, window: Window, now: Timestamp) -> Vec<Tuple> {
        let mut expired = Vec::new();
        let mut freed = 0usize;
        self.entries.retain(|e| {
            if !e.mns.is_empty() && window.is_expired(e.mns.ts(), now) {
                freed += e.mns.size_bytes();
                expired.push(e.mns.clone());
                false
            } else {
                true
            }
        });
        self.bytes -= freed;
        expired
    }

    /// Remove and return every buffered MNS matched by `tuple`.
    ///
    /// An MNS `s` is matched when every join predicate between `s`'s sources
    /// and the tuple's sources holds and the two are within the window. The
    /// empty MNS Ø is matched by any tuple (the opposite state is no longer
    /// empty).
    pub fn take_matching(
        &mut self,
        tuple: &Tuple,
        predicates: &PredicateSet,
        window: Window,
        metrics: &mut RunMetrics,
    ) -> Vec<Tuple> {
        let mut matched = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        let mut probes = 0u64;
        for entry in self.entries.drain(..) {
            probes += 1;
            let is_match = if entry.mns.is_empty() {
                true
            } else {
                window.can_join(entry.mns.ts(), tuple.ts()) && predicates.matches(&entry.mns, tuple)
            };
            if is_match {
                self.bytes -= entry.mns.size_bytes();
                matched.push(entry.mns);
            } else {
                kept.push(entry);
            }
        }
        self.entries = kept;
        metrics.stats.mns_buffer_probes += probes;
        metrics.charge(CostKind::MnsBufferProbe, probes);
        matched
    }

    /// Remove a specific MNS by identity (used when a producer reports it can
    /// no longer serve it). Returns whether it was present.
    pub fn remove(&mut self, key: &TupleKey) -> bool {
        let before = self.entries.len();
        let mut freed = 0usize;
        self.entries.retain(|e| {
            if &e.mns.key() == key {
                freed += e.mns.size_bytes();
                false
            } else {
                true
            }
        });
        self.bytes -= freed;
        before != self.entries.len()
    }

    /// Iterate over buffered entries.
    pub fn iter(&self) -> impl Iterator<Item = &MnsEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Duration, SourceId, Value};
    use std::sync::Arc;

    fn tup(source: u16, seq: u64, ts_ms: u64, vals: &[i64]) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts_ms),
            vals.iter().map(|&v| Value::int(v)).collect(),
        )))
    }

    fn window() -> Window {
        Window::new(Duration::from_secs(60))
    }

    #[test]
    fn insert_dedups_by_identity() {
        let mut b = MnsBuffer::new("NB_left");
        let a1 = tup(0, 1, 0, &[5, 7]);
        assert!(b.insert(a1.clone(), Timestamp::ZERO));
        assert!(!b.insert(a1.clone(), Timestamp::from_millis(10)));
        assert_eq!(b.len(), 1);
        assert!(b.contains(&a1));
        assert!(b.size_bytes() > 0);
        assert_eq!(b.name(), "NB_left");
    }

    #[test]
    fn take_matching_respects_predicates() {
        // Clique over 2 sources: A.x0 = B.x0.
        let preds = PredicateSet::clique(2);
        let mut metrics = RunMetrics::new();
        let mut b = MnsBuffer::new("NB");
        b.insert(tup(0, 1, 0, &[5]), Timestamp::ZERO);
        b.insert(tup(0, 2, 0, &[9]), Timestamp::ZERO);
        // A B tuple with value 5 matches the first MNS only.
        let probe = tup(1, 1, 1_000, &[5]);
        let matched = b.take_matching(&probe, &preds, window(), &mut metrics);
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].parts()[0].seq, 1);
        assert_eq!(b.len(), 1);
        assert_eq!(metrics.stats.mns_buffer_probes, 2);
    }

    #[test]
    fn empty_mns_matches_anything_and_never_expires() {
        let preds = PredicateSet::clique(2);
        let mut metrics = RunMetrics::new();
        let mut b = MnsBuffer::new("NB");
        b.insert(Tuple::empty(), Timestamp::ZERO);
        assert_eq!(b.purge(window(), Timestamp::from_millis(10_000_000)), 0);
        let matched = b.take_matching(&tup(1, 1, 500, &[1]), &preds, window(), &mut metrics);
        assert_eq!(matched.len(), 1);
        assert!(matched[0].is_empty());
        assert!(b.is_empty());
    }

    #[test]
    fn expired_mns_is_purged_and_not_matched() {
        let preds = PredicateSet::clique(2);
        let mut metrics = RunMetrics::new();
        let mut b = MnsBuffer::new("NB");
        b.insert(tup(0, 1, 0, &[5]), Timestamp::ZERO);
        // After the window has passed, the MNS cannot be matched…
        let matched = b.take_matching(&tup(1, 1, 100_000, &[5]), &preds, window(), &mut metrics);
        assert!(matched.is_empty());
        // …and purge removes it.
        assert_eq!(b.purge(window(), Timestamp::from_millis(100_000)), 1);
        assert!(b.is_empty());
        assert_eq!(b.size_bytes(), 0);
    }

    #[test]
    fn remove_by_key() {
        let mut b = MnsBuffer::new("NB");
        let m = tup(0, 3, 0, &[1]);
        b.insert(m.clone(), Timestamp::ZERO);
        assert!(b.remove(&m.key()));
        assert!(!b.remove(&m.key()));
        assert_eq!(b.size_bytes(), 0);
    }

    #[test]
    fn iteration_exposes_detection_times() {
        let mut b = MnsBuffer::new("NB");
        b.insert(tup(0, 1, 0, &[1]), Timestamp::from_millis(42));
        let times: Vec<Timestamp> = b.iter().map(|e| e.detected_at).collect();
        assert_eq!(times, vec![Timestamp::from_millis(42)]);
    }
}
