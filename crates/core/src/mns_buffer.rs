//! The consumer-side MNS buffer.
//!
//! Section III-A: "OC stores all detected MNSs in an MNS buffer until their
//! expiration, and probes each incoming tuple from the opposite input against
//! the MNS buffer." A match removes the MNS and triggers a resumption
//! feedback to the producer.

use jit_exec::state::{JoinKeySpec, StateIndexMode};
use jit_metrics::{CostKind, RunMetrics};
use jit_types::{FastMap, PredicateSet, SourceSet, Timestamp, Tuple, TupleKey, Value, Window};
use serde::{Content, Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One buffered MNS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MnsEntry {
    /// The minimal non-demanded sub-tuple.
    pub mns: Tuple,
    /// When it was detected (application time).
    pub detected_at: Timestamp,
}

/// Candidate entries for probes of one MNS-coverage class, keyed on the
/// equi-join key between that coverage and the probing tuples' sources —
/// the [`JoinKeySpec`] machinery of `state.rs` generalised to the buffer.
#[derive(Debug, Clone)]
struct ProbeGroup {
    /// The source coverage shared by the group's entries.
    coverage: SourceSet,
    /// The stored/probe key pairing for this coverage.
    spec: JoinKeySpec,
    /// Stored-key values → entry positions, ascending.
    buckets: FastMap<Vec<Value>, Vec<usize>>,
    /// Positions that cannot be keyed (Ø, empty spec, overlapping sources
    /// or missing key columns); always examined.
    overflow: Vec<usize>,
    /// All positions in the group, ascending (missing-probe-key fallback).
    all: Vec<usize>,
}

/// Lazily built candidate index for one probe shape (Hashed mode only).
#[derive(Debug, Clone)]
struct ProbeCache {
    /// The probing tuples' source coverage the cache was built for.
    probe_sources: SourceSet,
    /// The predicates the group specs were derived from. Each spec is a
    /// pure function of `(predicates, coverage, probe_sources)`, so an
    /// equality check here revalidates every group without recomputing a
    /// single spec — the per-probe fast path.
    predicates: PredicateSet,
    groups: Vec<ProbeGroup>,
}

/// A buffer of detected MNSs for one input side of a consumer.
///
/// # The index layer
///
/// Every arrival probes the opposite MNS buffer, so the historical
/// entry-by-entry scan of [`MnsBuffer::take_matching`] is a per-arrival
/// cost term. Under [`StateIndexMode::Hashed`] (the default) the buffer
/// lazily builds, per probe shape actually observed, a hash index over the
/// entries' equi-join key values — the same [`JoinKeySpec`] discipline as
/// [`jit_exec::state::OperatorState`] — and examines only the candidate
/// entries. Matched MNSs, their order and all removals are identical in
/// both modes; only the number of entries examined (the
/// `mns_buffer_probes` statistic and [`CostKind::MnsBufferProbe`] charge)
/// shrinks. [`StateIndexMode::Scan`] restores the historical scan,
/// charges included.
#[derive(Debug, Clone, Default)]
pub struct MnsBuffer {
    name: String,
    /// Slab of entries: removals leave `None` tombstones so positions stay
    /// stable — the probe cache and identity map survive removals instead
    /// of being rebuilt O(entries) per expiry or match. Compaction (once
    /// tombstones outnumber live entries) reclaims the space, amortised
    /// O(1) per removal.
    slots: Vec<Option<MnsEntry>>,
    /// Number of `Some` slots.
    live: usize,
    bytes: usize,
    mode: StateIndexMode,
    /// Min-heap of `(mns timestamp, position)` over non-empty entries:
    /// purges pop only what has expired instead of scanning the buffer.
    /// The empty MNS Ø never expires, so it is never pushed. Positions of
    /// removed entries are skipped as stale when popped.
    expiry: BinaryHeap<Reverse<(Timestamp, usize)>>,
    /// MNS identity → entry position (kept in sync across removals).
    by_key: FastMap<TupleKey, usize>,
    cache: Option<ProbeCache>,
}

impl MnsBuffer {
    /// An empty buffer with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        MnsBuffer {
            name: name.into(),
            ..MnsBuffer::default()
        }
    }

    /// Select how [`MnsBuffer::take_matching`] answers probes (default
    /// [`StateIndexMode::Hashed`]). Matched MNSs are identical in both
    /// modes; only the probe count charged differs.
    pub fn set_index_mode(&mut self, mode: StateIndexMode) {
        self.mode = mode;
        self.cache = None;
    }

    /// The probing mode in effect.
    pub fn index_mode(&self) -> StateIndexMode {
        self.mode
    }

    /// Rebuild everything derived from the slab (identity map, expiry
    /// heap; the probe cache is dropped and rebuilt lazily). Needed only
    /// after wholesale slab replacement — compaction and restore.
    fn rebuild_derived(&mut self) {
        self.by_key.clear();
        self.expiry.clear();
        for (pos, slot) in self.slots.iter().enumerate() {
            if let Some(e) = slot {
                self.by_key.insert(e.mns.key(), pos);
                if !e.mns.is_empty() {
                    self.expiry.push(Reverse((e.mns.ts(), pos)));
                }
            }
        }
        self.cache = None;
    }

    /// Reclaim tombstones once they outnumber the live entries: repack the
    /// slab and rebuild the derived structures — amortised O(1) per
    /// removal.
    fn maybe_compact(&mut self) {
        if self.slots.len() - self.live <= self.live.max(16) {
            return;
        }
        let entries: Vec<MnsEntry> = self.slots.drain(..).flatten().collect();
        self.slots = entries.into_iter().map(Some).collect();
        self.rebuild_derived();
    }

    /// Tombstone the entry at `pos`, maintaining the byte accounting and
    /// the identity map (the probe cache keeps the stale position and
    /// filters it on the next probe). Panics if the slot is already dead.
    fn take_at(&mut self, pos: usize) -> MnsEntry {
        // INVARIANT: take_at's contract (doc above) requires a live slot;
        // callers pass positions read from the identity map or candidates().
        let entry = self.slots[pos].take().expect("live entry");
        self.live -= 1;
        self.bytes -= entry.mns.size_bytes();
        self.by_key.remove(&entry.mns.key());
        entry
    }

    /// Make sure the probe cache answers for probes covering
    /// `probe_sources` under `predicates`, rebuilding it if the probe
    /// shape (or the predicate-derived key pairing) changed.
    fn ensure_cache(&mut self, predicates: &PredicateSet, probe_sources: SourceSet) {
        if let Some(cache) = &self.cache {
            if cache.probe_sources == probe_sources && &cache.predicates == predicates {
                return;
            }
        }
        let mut groups: Vec<ProbeGroup> = Vec::new();
        let live = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(pos, slot)| slot.as_ref().map(|e| (pos, e)));
        for (pos, entry) in live {
            let coverage = entry.mns.sources();
            let group = match groups.iter_mut().find(|g| g.coverage == coverage) {
                Some(g) => g,
                None => {
                    groups.push(ProbeGroup {
                        coverage,
                        spec: JoinKeySpec::between(predicates, coverage, probe_sources),
                        buckets: FastMap::default(),
                        overflow: Vec::new(),
                        all: Vec::new(),
                    });
                    // INVARIANT: a group was pushed on the line above.
                    groups.last_mut().expect("just pushed")
                }
            };
            group.all.push(pos);
            // Only fully keyed entries of a disjoint coverage can be
            // excluded by a bucket miss; everything else stays scanned.
            let keyed = !group.spec.is_empty() && coverage.is_disjoint(probe_sources);
            match group.spec.stored_key(&entry.mns) {
                Some(key) if keyed => group.buckets.entry(key).or_default().push(pos),
                _ => group.overflow.push(pos),
            }
        }
        self.cache = Some(ProbeCache {
            probe_sources,
            predicates: predicates.clone(),
            groups,
        });
    }

    /// The candidate entry positions for `tuple`, ascending: per group, the
    /// probe key's bucket plus the overflow list, or the whole group when
    /// no key can be formed. A non-candidate entry is fully keyed with a
    /// differing key value, so some spanning predicate evaluates to false —
    /// candidates are exactly a superset of the matches.
    fn candidates(&mut self, tuple: &Tuple) -> Vec<usize> {
        // Removals leave stale positions behind in the cached lists;
        // retain-live maintenance on the lists a probe actually consults
        // keeps the examined candidates — and the probe charges — exactly
        // the live entries, as a freshly built cache would return.
        let slots = &self.slots;
        let is_live = |pos: &usize| slots.get(*pos).is_some_and(Option::is_some);
        // INVARIANT: every probe path calls ensure_cache first, which
        // fills self.cache.
        let cache = self.cache.as_mut().expect("ensure_cache called");
        let mut cand = Vec::new();
        let mut key = Vec::new();
        for g in &mut cache.groups {
            if g.spec.is_empty() {
                g.all.retain(is_live);
                cand.extend_from_slice(&g.all);
            } else if g.spec.probe_key_into(tuple, &mut key) {
                if let Some(bucket) = g.buckets.get_mut(&key[..]) {
                    bucket.retain(is_live);
                    cand.extend_from_slice(bucket);
                }
                g.overflow.retain(is_live);
                cand.extend_from_slice(&g.overflow);
            } else {
                g.all.retain(is_live);
                cand.extend_from_slice(&g.all);
            }
        }
        cand.sort_unstable();
        cand.dedup();
        cand
    }

    /// The buffer's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of buffered MNSs.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Analytical size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Is an MNS with the same component identity already buffered?
    pub fn contains(&self, mns: &Tuple) -> bool {
        self.by_key.contains_key(&mns.key())
    }

    /// Buffer a newly detected MNS (ignored if an identical one is present).
    /// Returns whether it was inserted.
    pub fn insert(&mut self, mns: Tuple, now: Timestamp) -> bool {
        if self.contains(&mns) {
            return false;
        }
        self.bytes += mns.size_bytes();
        let pos = self.slots.len();
        self.by_key.insert(mns.key(), pos);
        if !mns.is_empty() {
            self.expiry.push(Reverse((mns.ts(), pos)));
        }
        // Extend the probe cache in place rather than dropping it: the new
        // entry takes the largest position, so pushing keeps every
        // candidate list ascending. Detection fires on (nearly) every
        // non-joining arrival, so an O(entries) rebuild per insert would
        // make probing quadratic. Only an unseen coverage class (no group
        // to file the entry under, whose spec would need the predicates we
        // don't have here) forces a rebuild on the next probe.
        let mut keep_cache = true;
        if let Some(cache) = &mut self.cache {
            match cache
                .groups
                .iter_mut()
                .find(|g| g.coverage == mns.sources())
            {
                Some(group) => {
                    group.all.push(pos);
                    let keyed =
                        !group.spec.is_empty() && mns.sources().is_disjoint(cache.probe_sources);
                    match group.spec.stored_key(&mns) {
                        Some(key) if keyed => group.buckets.entry(key).or_default().push(pos),
                        _ => group.overflow.push(pos),
                    }
                }
                None => keep_cache = false,
            }
        }
        if !keep_cache {
            self.cache = None;
        }
        self.slots.push(Some(MnsEntry {
            mns,
            detected_at: now,
        }));
        self.live += 1;
        true
    }

    /// Drop MNSs whose components have expired. The empty MNS Ø never
    /// expires through the window (it is removed when resumed).
    pub fn purge(&mut self, window: Window, now: Timestamp) -> usize {
        self.take_expired(window, now).len()
    }

    /// Remove and return the MNSs whose components have expired.
    ///
    /// The caller (the consumer operator) turns these into resumption
    /// feedback: once the justification for a suspension has expired, the
    /// producer must release any still-alive similar tuples it suppressed on
    /// its behalf, otherwise their future join partners would be missed.
    pub fn take_expired(&mut self, window: Window, now: Timestamp) -> Vec<Tuple> {
        // O(expired): pop the heap only while its minimum timestamp has
        // expired; stale positions (already-removed entries) are skipped.
        let mut expired_at = Vec::new();
        while let Some(&Reverse((ts, pos))) = self.expiry.peek() {
            if !window.is_expired(ts, now) {
                break;
            }
            self.expiry.pop();
            if self.slots[pos].is_some() {
                expired_at.push(pos);
            }
        }
        if expired_at.is_empty() {
            return Vec::new();
        }
        // Heap order is by timestamp; the historical contract is entry
        // (insertion) order.
        expired_at.sort_unstable();
        let expired = expired_at
            .into_iter()
            .map(|pos| self.take_at(pos).mns)
            .collect();
        self.maybe_compact();
        expired
    }

    /// Remove and return every buffered MNS matched by `tuple`.
    ///
    /// An MNS `s` is matched when every join predicate between `s`'s sources
    /// and the tuple's sources holds and the two are within the window. The
    /// empty MNS Ø is matched by any tuple (the opposite state is no longer
    /// empty).
    pub fn take_matching(
        &mut self,
        tuple: &Tuple,
        predicates: &PredicateSet,
        window: Window,
        metrics: &mut RunMetrics,
    ) -> Vec<Tuple> {
        let is_match = |entry: &MnsEntry| {
            entry.mns.is_empty()
                || (window.can_join(entry.mns.ts(), tuple.ts())
                    && predicates.matches(&entry.mns, tuple))
        };
        let mut matched = Vec::new();
        let mut probes = 0u64;
        if self.mode == StateIndexMode::Hashed {
            self.ensure_cache(predicates, tuple.sources());
            // Candidate positions are ascending, so matched MNSs come out
            // in entry order — exactly the scan's output order.
            for pos in self.candidates(tuple) {
                probes += 1;
                // INVARIANT: candidates() retains only live slot positions.
                if is_match(self.slots[pos].as_ref().expect("candidates are live")) {
                    matched.push(self.take_at(pos).mns);
                }
            }
        } else {
            for pos in 0..self.slots.len() {
                let Some(entry) = &self.slots[pos] else {
                    continue;
                };
                probes += 1;
                if is_match(entry) {
                    matched.push(self.take_at(pos).mns);
                }
            }
        }
        if !matched.is_empty() {
            self.maybe_compact();
        }
        metrics.stats.mns_buffer_probes += probes;
        metrics.charge(CostKind::MnsBufferProbe, probes);
        matched
    }

    /// The earliest timestamp at which any buffered MNS *could* expire — the
    /// expiry heap's minimum. Conservative: stale heap positions (already
    /// removed entries) may report an instant at which [`MnsBuffer::take_expired`]
    /// removes nothing, which is harmless (it charges nothing and emits no
    /// feedback). `None` means no purge can ever remove anything (the buffer
    /// is empty or holds only the never-expiring Ø), so callers can elide
    /// the purge entirely.
    pub fn next_expiry(&self) -> Option<Timestamp> {
        self.expiry.peek().map(|&Reverse((ts, _))| ts)
    }

    /// Remove a specific MNS by identity (used when a producer reports it can
    /// no longer serve it). Returns whether it was present.
    pub fn remove(&mut self, key: &TupleKey) -> bool {
        // Identities are unique in the buffer (insert dedups), so the map
        // lookup finds the only possible entry.
        let Some(&pos) = self.by_key.get(key) else {
            return false;
        };
        self.take_at(pos);
        self.maybe_compact();
        true
    }

    /// Iterate over buffered entries, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &MnsEntry> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Serialise the entries for a durability checkpoint. The index mode,
    /// the identity map and the probe cache are runtime configuration /
    /// derived structure and are not persisted.
    pub fn checkpoint(&self) -> Content {
        Content::Map(vec![
            ("name".to_string(), Content::Str(self.name.clone())),
            (
                "entries".to_string(),
                Content::Seq(self.iter().map(Serialize::to_content).collect()),
            ),
        ])
    }

    /// Replace the entries with a checkpointed set, rebuilding the byte
    /// accounting and the identity map. The checkpoint must carry the same
    /// diagnostic name (i.e. come from the same operator slot).
    pub fn restore_checkpoint(&mut self, content: &Content) -> Result<(), serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "MnsBuffer"))?;
        let name: String = serde::field(map, "name", "MnsBuffer")?;
        if name != self.name {
            return Err(serde::Error::msg(format!(
                "MNS buffer mismatch: checkpoint holds `{name}`, plan expects `{}`",
                self.name
            )));
        }
        let entries: Vec<MnsEntry> = serde::field(map, "entries", "MnsBuffer")?;
        self.bytes = entries.iter().map(|e| e.mns.size_bytes()).sum();
        self.live = entries.len();
        self.slots = entries.into_iter().map(Some).collect();
        self.rebuild_derived();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Duration, SourceId, Value};
    use std::sync::Arc;

    fn tup(source: u16, seq: u64, ts_ms: u64, vals: &[i64]) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts_ms),
            vals.iter().map(|&v| Value::int(v)).collect(),
        )))
    }

    fn window() -> Window {
        Window::new(Duration::from_secs(60))
    }

    #[test]
    fn insert_dedups_by_identity() {
        let mut b = MnsBuffer::new("NB_left");
        let a1 = tup(0, 1, 0, &[5, 7]);
        assert!(b.insert(a1.clone(), Timestamp::ZERO));
        assert!(!b.insert(a1.clone(), Timestamp::from_millis(10)));
        assert_eq!(b.len(), 1);
        assert!(b.contains(&a1));
        assert!(b.size_bytes() > 0);
        assert_eq!(b.name(), "NB_left");
    }

    #[test]
    fn take_matching_respects_predicates() {
        // Clique over 2 sources: A.x0 = B.x0.
        let preds = PredicateSet::clique(2);
        let mut metrics = RunMetrics::new();
        let mut b = MnsBuffer::new("NB");
        b.set_index_mode(StateIndexMode::Scan);
        b.insert(tup(0, 1, 0, &[5]), Timestamp::ZERO);
        b.insert(tup(0, 2, 0, &[9]), Timestamp::ZERO);
        // A B tuple with value 5 matches the first MNS only; the scan
        // charges one probe per buffered entry.
        let probe = tup(1, 1, 1_000, &[5]);
        let matched = b.take_matching(&probe, &preds, window(), &mut metrics);
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].parts()[0].seq, 1);
        assert_eq!(b.len(), 1);
        assert_eq!(metrics.stats.mns_buffer_probes, 2);
    }

    #[test]
    fn hashed_probe_charges_only_candidates() {
        let preds = PredicateSet::clique(2);
        let mut metrics = RunMetrics::new();
        let mut b = MnsBuffer::new("NB");
        assert_eq!(b.index_mode(), StateIndexMode::Hashed);
        b.insert(tup(0, 1, 0, &[5]), Timestamp::ZERO);
        b.insert(tup(0, 2, 0, &[9]), Timestamp::ZERO);
        // The hashed probe examines only the key-5 bucket: one candidate.
        let probe = tup(1, 1, 1_000, &[5]);
        let matched = b.take_matching(&probe, &preds, window(), &mut metrics);
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].parts()[0].seq, 1);
        assert_eq!(b.len(), 1);
        assert_eq!(metrics.stats.mns_buffer_probes, 1);
        // A key matching nothing examines no entries at all.
        let matched = b.take_matching(&tup(1, 2, 1_000, &[7]), &preds, window(), &mut metrics);
        assert!(matched.is_empty());
        assert_eq!(metrics.stats.mns_buffer_probes, 1);
    }

    /// Hashed and scan buffers must return identical matches, in identical
    /// order, across interleaved inserts, probes, expiries and removals.
    #[test]
    fn hashed_and_scan_agree_on_matches() {
        let preds = PredicateSet::clique(3);
        let mut metrics = RunMetrics::new();
        let mut hashed = MnsBuffer::new("H");
        let mut scan = MnsBuffer::new("S");
        scan.set_index_mode(StateIndexMode::Scan);
        // MNSs from two sources plus the Ø MNS, with clashing key values.
        let mut seed: Vec<Tuple> = Vec::new();
        for i in 0..8u64 {
            seed.push(tup(
                (i % 2) as u16,
                i,
                i * 100,
                &[(i % 3) as i64, (i % 4) as i64],
            ));
        }
        seed.push(Tuple::empty());
        for m in &seed {
            assert_eq!(
                hashed.insert(m.clone(), m.ts()),
                scan.insert(m.clone(), m.ts())
            );
        }
        // Probe from source 2 (joins both stored sources via the clique).
        for key in 0..4i64 {
            let probe = tup(2, 100 + key as u64, 500, &[key, key]);
            let h = hashed.take_matching(&probe, &preds, window(), &mut metrics);
            let s = scan.take_matching(&probe, &preds, window(), &mut metrics);
            assert_eq!(
                h.iter().map(Tuple::key).collect::<Vec<_>>(),
                s.iter().map(Tuple::key).collect::<Vec<_>>(),
                "key {key}"
            );
            assert_eq!(hashed.len(), scan.len());
            assert_eq!(hashed.size_bytes(), scan.size_bytes());
        }
        assert_eq!(
            hashed.take_expired(window(), Timestamp::from_millis(61_000)),
            scan.take_expired(window(), Timestamp::from_millis(61_000))
        );
        for m in &seed {
            assert_eq!(hashed.remove(&m.key()), scan.remove(&m.key()));
        }
        assert!(hashed.is_empty() && scan.is_empty());
    }

    #[test]
    fn empty_mns_matches_anything_and_never_expires() {
        let preds = PredicateSet::clique(2);
        let mut metrics = RunMetrics::new();
        let mut b = MnsBuffer::new("NB");
        b.insert(Tuple::empty(), Timestamp::ZERO);
        assert_eq!(b.purge(window(), Timestamp::from_millis(10_000_000)), 0);
        let matched = b.take_matching(&tup(1, 1, 500, &[1]), &preds, window(), &mut metrics);
        assert_eq!(matched.len(), 1);
        assert!(matched[0].is_empty());
        assert!(b.is_empty());
    }

    #[test]
    fn expired_mns_is_purged_and_not_matched() {
        let preds = PredicateSet::clique(2);
        let mut metrics = RunMetrics::new();
        let mut b = MnsBuffer::new("NB");
        b.insert(tup(0, 1, 0, &[5]), Timestamp::ZERO);
        // After the window has passed, the MNS cannot be matched…
        let matched = b.take_matching(&tup(1, 1, 100_000, &[5]), &preds, window(), &mut metrics);
        assert!(matched.is_empty());
        // …and purge removes it.
        assert_eq!(b.purge(window(), Timestamp::from_millis(100_000)), 1);
        assert!(b.is_empty());
        assert_eq!(b.size_bytes(), 0);
    }

    #[test]
    fn remove_by_key() {
        let mut b = MnsBuffer::new("NB");
        let m = tup(0, 3, 0, &[1]);
        b.insert(m.clone(), Timestamp::ZERO);
        assert!(b.remove(&m.key()));
        assert!(!b.remove(&m.key()));
        assert_eq!(b.size_bytes(), 0);
    }

    #[test]
    fn checkpoint_round_trips_entries() {
        let preds = PredicateSet::clique(2);
        let mut metrics = RunMetrics::new();
        let mut b = MnsBuffer::new("NB");
        b.insert(tup(0, 1, 0, &[5]), Timestamp::from_millis(3));
        b.insert(tup(0, 2, 10, &[9]), Timestamp::from_millis(12));
        b.insert(Tuple::empty(), Timestamp::ZERO);
        let blob = b.checkpoint();
        let mut restored = MnsBuffer::new("NB");
        restored.restore_checkpoint(&blob).unwrap();
        assert_eq!(restored.len(), b.len());
        assert_eq!(restored.size_bytes(), b.size_bytes());
        let times: Vec<Timestamp> = restored.iter().map(|e| e.detected_at).collect();
        assert_eq!(
            times,
            vec![
                Timestamp::from_millis(3),
                Timestamp::from_millis(12),
                Timestamp::ZERO
            ]
        );
        // The rebuilt identity map and probe machinery behave identically.
        let probe = tup(1, 1, 1_000, &[5]);
        assert_eq!(
            restored
                .take_matching(&probe, &preds, window(), &mut metrics)
                .iter()
                .map(Tuple::key)
                .collect::<Vec<_>>(),
            b.take_matching(&probe, &preds, window(), &mut metrics)
                .iter()
                .map(Tuple::key)
                .collect::<Vec<_>>()
        );
        // A checkpoint from a differently named buffer is rejected.
        let mut other = MnsBuffer::new("other");
        assert!(other.restore_checkpoint(&blob).is_err());
    }

    #[test]
    fn iteration_exposes_detection_times() {
        let mut b = MnsBuffer::new("NB");
        b.insert(tup(0, 1, 0, &[1]), Timestamp::from_millis(42));
        let times: Vec<Timestamp> = b.iter().map(|e| e.detected_at).collect();
        assert_eq!(times, vec![Timestamp::from_millis(42)]);
    }
}
