//! Durability bench: disorder-tolerance latency and checkpoint overhead.
//!
//! Two sweeps over the shared-key 3-source clique workload, written to
//! `BENCH_durability.json`:
//!
//! 1. **Latency vs lateness bound.** Disorders the trace with 1–10% late
//!    arrivals (delays up to a fixed bound), replays it through a
//!    [`DisorderPolicy::Bounded`] session at increasing lateness bounds, and
//!    measures the trade-off the bound controls: emission lag in
//!    application time (how long a result waits behind the watermark)
//!    against the late-drop rate (completeness). At a bound at or above the
//!    injected delay the run must be lossless — byte-equal result count to
//!    the in-order baseline.
//!
//! 2. **Checkpoint overhead vs cadence.** Replays the in-order trace while
//!    checkpointing the full session state to disk every K arrivals, for
//!    a range of cadences, and reports bytes written, time spent
//!    serialising, and the wall-clock overhead over a checkpoint-free run —
//!    then restores from the *last* checkpoint file and verifies the
//!    replayed tail reproduces the uninterrupted result count.
//!
//! Usage:
//!
//! ```text
//! cargo run -p jit-bench --release --bin bench_durability [-- --quick] [--out PATH]
//! ```
//!
//! The run asserts (exiting non-zero otherwise) that drops shrink to zero
//! once the bound covers the delays, that every checkpoint cadence leaves
//! results identical to the baseline, and that recovery from the last
//! checkpoint is exactly-once.

use jit_durable::DisorderPolicy;
use jit_engine::{Engine, EngineBuilder};
use jit_harness::parallel::parallel_workload;
use jit_plan::shapes::PlanShape;
use jit_stream::arrival::ArrivalEvent;
use jit_stream::{DisorderSpec, WorkloadGenerator};
use jit_types::Duration;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One (late-fraction, lateness-bound) measurement.
#[derive(Debug, Serialize)]
struct DisorderPoint {
    late_fraction: f64,
    lateness_bound_ms: u64,
    arrivals: usize,
    late_arrivals: u64,
    late_dropped: u64,
    drop_rate: f64,
    reorder_buffer_peak: u64,
    results: u64,
    baseline_results: u64,
    /// Mean application-time lag between a result becoming available and
    /// its timestamp — the price of the reorder stage.
    mean_emission_lag_ms: f64,
    wall_seconds: f64,
}

/// One checkpoint-cadence measurement.
#[derive(Debug, Serialize)]
struct CheckpointPoint {
    every_arrivals: usize,
    checkpoints_taken: u64,
    checkpoint_bytes: u64,
    checkpoint_millis: u64,
    wall_seconds: f64,
    /// Wall-clock cost relative to the checkpoint-free run.
    overhead_ratio: f64,
    results: u64,
    recovered_results: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    workload: String,
    quick: bool,
    disorder: Vec<DisorderPoint>,
    checkpoint_free_wall_seconds: f64,
    checkpoints: Vec<CheckpointPoint>,
}

fn ckpt_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "jit-bench-durability-{}-{tag}.ckpt",
        std::process::id()
    ));
    path
}

/// In-order baseline: total results and wall time, no polling.
fn run_baseline(builder: &EngineBuilder, events: &[ArrivalEvent]) -> (u64, f64) {
    let mut session = builder.clone().build().unwrap().session().unwrap();
    let start = Instant::now();
    for event in events {
        let _ = session.push_event(event.clone()).unwrap();
    }
    let outcome = session.finish().unwrap();
    (outcome.results_count, start.elapsed().as_secs_f64())
}

fn run_disorder_point(
    builder: &EngineBuilder,
    disordered: &[ArrivalEvent],
    late_fraction: f64,
    bound: Duration,
    baseline_results: u64,
) -> DisorderPoint {
    let bounded = builder.clone().disorder(DisorderPolicy::Bounded(bound));
    let mut session = bounded.build().unwrap().session().unwrap();
    let start = Instant::now();
    // Track when each result surfaces relative to the stream's progress:
    // the virtual arrival frontier is the max event timestamp pushed so far.
    let mut frontier_ms = 0u64;
    let mut lag_sum_ms = 0f64;
    let mut lag_n = 0u64;
    for event in disordered {
        frontier_ms = frontier_ms.max(event.ts.as_millis());
        let _ = session.push_event(event.clone()).unwrap();
        for result in session.poll_results() {
            lag_sum_ms += frontier_ms.saturating_sub(result.ts().as_millis()) as f64;
            lag_n += 1;
        }
    }
    let outcome = session.finish().unwrap();
    let wall_seconds = start.elapsed().as_secs_f64();
    let results = outcome.results_count;
    let snapshot = &outcome.snapshot;
    DisorderPoint {
        late_fraction,
        lateness_bound_ms: bound.as_millis(),
        arrivals: disordered.len(),
        late_arrivals: snapshot.late_arrivals,
        late_dropped: snapshot.late_dropped,
        drop_rate: snapshot.late_dropped as f64 / disordered.len() as f64,
        reorder_buffer_peak: snapshot.reorder_buffer_peak,
        results,
        baseline_results,
        mean_emission_lag_ms: if lag_n > 0 {
            lag_sum_ms / lag_n as f64
        } else {
            0.0
        },
        wall_seconds,
    }
}

fn run_checkpoint_point(
    builder: &EngineBuilder,
    events: &[ArrivalEvent],
    every: usize,
    baseline_wall: f64,
) -> CheckpointPoint {
    let path = ckpt_path(&format!("cadence-{every}"));
    let mut session = builder.clone().build().unwrap().session().unwrap();
    let start = Instant::now();
    let mut checkpoints = 0u64;
    let mut last_cut = 0usize;
    for (i, event) in events.iter().enumerate() {
        let _ = session.push_event(event.clone()).unwrap();
        if (i + 1) % every == 0 {
            session.checkpoint_to(&path).expect("checkpoint writes");
            checkpoints += 1;
            last_cut = i + 1;
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let snapshot = session.metrics_snapshot();
    let outcome = session.finish().unwrap();

    // Recovery check: restore the last checkpoint, replay the tail, and the
    // total result count must match the uninterrupted run.
    let engine = builder.clone().build().unwrap();
    let mut restored = engine
        .restore_file(&path)
        .expect("restore from last checkpoint");
    assert_eq!(restored.pushed() as usize, last_cut, "replay cursor");
    for event in events.iter().skip(last_cut) {
        let _ = restored.push_event(event.clone()).unwrap();
    }
    // `results_count` is cumulative across the checkpoint: pre-crash
    // results (restored with the state) plus the replayed tail.
    let recovered_results = restored.finish().unwrap().results_count;
    std::fs::remove_file(&path).ok();

    CheckpointPoint {
        every_arrivals: every,
        checkpoints_taken: checkpoints,
        checkpoint_bytes: snapshot.checkpoint_bytes,
        checkpoint_millis: snapshot.checkpoint_millis,
        wall_seconds,
        overhead_ratio: wall_seconds / baseline_wall.max(1e-9),
        results: outcome.results_count,
        recovered_results,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_durability.json".to_string());

    // Result volume on the clique join grows superlinearly with the
    // horizon; 300 s at 1/s is already ~100k results per run.
    let duration = Duration::from_secs(if quick { 120 } else { 300 });
    let rate = 1.0;
    let spec = parallel_workload(3, 16)
        .with_rate(rate)
        .with_window_minutes(2.0)
        .with_duration(duration)
        .with_seed(808);
    let shape = PlanShape::bushy(3);
    let builder = Engine::builder().workload(&spec, &shape);
    let trace = WorkloadGenerator::generate(&spec);
    let events: Vec<ArrivalEvent> = trace.iter().cloned().collect();
    let (baseline_results, baseline_wall) = run_baseline(&builder, &events);
    println!(
        "baseline: {} arrivals -> {baseline_results} results in {baseline_wall:.3}s",
        events.len()
    );

    let mut failures = Vec::new();

    // Sweep 1: latency vs lateness bound, at 1% / 5% / 10% late arrivals.
    let max_delay = Duration::from_secs(10);
    let bounds_ms: &[u64] = &[1_000, 2_500, 5_000, 10_000];
    let mut disorder_points = Vec::new();
    for (i, &late_fraction) in [0.01, 0.05, 0.10].iter().enumerate() {
        let disordered = DisorderSpec::new(late_fraction, max_delay, 900 + i as u64).apply(&trace);
        for &bound_ms in bounds_ms {
            let point = run_disorder_point(
                &builder,
                &disordered,
                late_fraction,
                Duration::from_millis(bound_ms),
                baseline_results,
            );
            println!(
                "{:>4.0}% late, bound {:>6} ms: drop rate {:.4}, mean lag {:>8.0} ms, \
                 buffer peak {:>4}, {} results",
                late_fraction * 100.0,
                bound_ms,
                point.drop_rate,
                point.mean_emission_lag_ms,
                point.reorder_buffer_peak,
                point.results,
            );
            if bound_ms >= max_delay.as_millis() {
                if point.late_dropped != 0 {
                    failures.push(format!(
                        "{late_fraction} late at covering bound {bound_ms} ms dropped {} tuples",
                        point.late_dropped
                    ));
                }
                if point.results != baseline_results {
                    failures.push(format!(
                        "{late_fraction} late at covering bound {bound_ms} ms: {} results vs \
                         baseline {baseline_results}",
                        point.results
                    ));
                }
            }
            disorder_points.push(point);
        }
        // Tighter bounds must not drop fewer tuples than looser ones.
        let tail = &disorder_points[disorder_points.len() - bounds_ms.len()..];
        if tail
            .windows(2)
            .any(|w| w[0].late_dropped < w[1].late_dropped)
        {
            failures.push(format!(
                "{late_fraction} late: drops did not decrease monotonically with the bound"
            ));
        }
    }

    // Sweep 2: checkpoint overhead vs cadence.
    // Cadences must divide into the trace (921 arrivals at full size) at
    // least once, or there is no checkpoint to recover from.
    let cadences: &[usize] = if quick { &[50, 200] } else { &[100, 300, 900] };
    let mut checkpoint_points = Vec::new();
    for &every in cadences {
        let point = run_checkpoint_point(&builder, &events, every, baseline_wall);
        println!(
            "checkpoint every {:>5}: {:>3} checkpoints, {:>9} B, {:>4} ms serialising, \
             {:.2}x wall overhead",
            every,
            point.checkpoints_taken,
            point.checkpoint_bytes,
            point.checkpoint_millis,
            point.overhead_ratio,
        );
        if point.results != baseline_results {
            failures.push(format!(
                "cadence {every}: {} results vs baseline {baseline_results}",
                point.results
            ));
        }
        if point.recovered_results != baseline_results {
            failures.push(format!(
                "cadence {every}: recovery replayed to {} results vs baseline {baseline_results}",
                point.recovered_results
            ));
        }
        if point.checkpoints_taken > 0 && point.checkpoint_bytes == 0 {
            failures.push(format!("cadence {every}: checkpoints wrote no bytes"));
        }
        checkpoint_points.push(point);
    }

    let report = BenchReport {
        workload: format!(
            "3-source shared-key clique, bushy, rate {rate}/s, 2 min windows, \
             {}s horizon, delays up to {}s",
            duration.as_millis() / 1_000,
            max_delay.as_millis() / 1_000,
        ),
        quick,
        disorder: disorder_points,
        checkpoint_free_wall_seconds: baseline_wall,
        checkpoints: checkpoint_points,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("report written");
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
