//! Multi-query serving bench: per-arrival cost versus registered queries.
//!
//! Registers N CQL queries (drawn from a small family of overlapping
//! two-way joins with constant filters, so they dedupe into a bounded set
//! of shared pipelines) on one [`jit_serve::QueryRegistry`], pushes one
//! mixed A/B stream, and measures the *serving* cost per arrival as N
//! grows. Writes `BENCH_multi_query.json` with registrations/sec,
//! arrivals/sec, µs/arrival and the shared-vs-isolated state bytes the
//! registry's refcounted caches account for.
//!
//! Usage:
//!
//! ```text
//! cargo run -p jit-bench --release --bin bench_multi_query [-- --quick] [--out PATH]
//! ```
//!
//! The run *asserts* (exiting non-zero otherwise) that
//!
//! * shared state bytes never exceed the isolated-serving baseline, and are
//!   strictly below it whenever queries outnumber pipelines;
//! * per-arrival cost grows sublinearly in the query count: going from the
//!   smallest to the largest N must cost well under half the proportional
//!   (linear) slowdown.
//!
//! `--quick` shrinks the stream for the CI smoke run; the assertions still
//! hold there.

use jit_serve::{QueryRegistry, ServeOptions, SharingReport};
use jit_types::{BaseTuple, Catalog, SourceId, Timestamp, Value};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// One measured query-count point.
#[derive(Debug, Serialize)]
struct BenchPoint {
    queries: usize,
    pipelines: usize,
    filter_classes: usize,
    registration_seconds: f64,
    registrations_per_sec: f64,
    arrivals: u64,
    wall_seconds: f64,
    arrivals_per_sec: f64,
    micros_per_arrival: f64,
    routed: u64,
    classifications: u64,
    classifications_saved: u64,
    shared_state_bytes: usize,
    isolated_state_bytes: usize,
    /// `isolated / shared` — how many times over the isolated baseline
    /// would store the same windows.
    state_sharing_factor: f64,
    sentinel_results: usize,
}

/// Scaling summary between the smallest and largest point.
#[derive(Debug, Serialize)]
struct Sublinearity {
    base_queries: usize,
    peak_queries: usize,
    query_ratio: f64,
    base_micros_per_arrival: f64,
    peak_micros_per_arrival: f64,
    /// `peak_cost / base_cost`; linear scaling would put this at
    /// `query_ratio`.
    cost_ratio: f64,
}

/// The full report written to `BENCH_multi_query.json`.
#[derive(Debug, Serialize)]
struct BenchReport {
    workload: String,
    quick: bool,
    points: Vec<BenchPoint>,
    sublinearity: Sublinearity,
}

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_source("A", vec!["k".into(), "v".into()]);
    cat.add_source("B", vec!["k".into(), "v".into()]);
    cat
}

/// The i-th registered query: an A⋈B join on `k`, one of 8 filter
/// thresholds on `A.v`, one of 2 windows — at most 16 distinct pipelines
/// however many queries register.
fn query_text(i: usize) -> String {
    let threshold = 5 * (i % 8);
    let minutes = 1 + (i / 8) % 2;
    format!(
        "SELECT * FROM A [RANGE {minutes} minutes], B [RANGE {minutes} minutes] \
         WHERE A.k = B.k AND A.v > {threshold}"
    )
}

/// Deterministic mixed A/B stream, 200 ms apart.
fn stream(n: usize) -> Vec<Arc<BaseTuple>> {
    let mut state: u64 = 0x2545_F491_4F6C_DD1D;
    let mut seqs = [0u64; 2];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let source = i % 2;
        let k = ((state >> 33) % 100) as i64;
        let v = ((state >> 17) % 100) as i64;
        let seq = seqs[source];
        seqs[source] += 1;
        out.push(Arc::new(BaseTuple::new(
            SourceId(source as u16),
            seq,
            Timestamp((i as u64 + 1) * 200),
            vec![Value::int(k), Value::int(v)],
        )));
    }
    out
}

fn run_point(num_queries: usize, arrivals: &[Arc<BaseTuple>]) -> (BenchPoint, SharingReport) {
    let mut reg = QueryRegistry::with_options(catalog(), ServeOptions::default());
    let reg_start = Instant::now();
    let mut sentinel = None;
    for i in 0..num_queries {
        let qid = reg.register(&query_text(i)).expect("bench query registers");
        if i == 0 {
            sentinel = Some(qid);
        }
    }
    let registration_seconds = reg_start.elapsed().as_secs_f64().max(1e-9);

    let push_start = Instant::now();
    for arrival in arrivals {
        reg.push(arrival.clone()).expect("bench arrival pushes");
    }
    let wall_seconds = push_start.elapsed().as_secs_f64().max(1e-9);

    let sentinel_results = reg
        .poll_results(sentinel.expect("at least one query"))
        .expect("sentinel polls")
        .len();
    let report = reg.sharing_report();
    let point = BenchPoint {
        queries: report.queries,
        pipelines: report.pipelines,
        filter_classes: report.filter_classes,
        registration_seconds,
        registrations_per_sec: num_queries as f64 / registration_seconds,
        arrivals: report.arrivals,
        wall_seconds,
        arrivals_per_sec: arrivals.len() as f64 / wall_seconds,
        micros_per_arrival: wall_seconds * 1e6 / arrivals.len() as f64,
        routed: report.routed,
        classifications: report.classifications,
        classifications_saved: report.classifications_saved,
        shared_state_bytes: report.shared_state_bytes,
        isolated_state_bytes: report.isolated_state_bytes,
        state_sharing_factor: report.isolated_state_bytes as f64
            / report.shared_state_bytes.max(1) as f64,
        sentinel_results,
    };
    (point, report)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_multi_query.json".to_string());

    let num_arrivals = if quick { 2_000 } else { 10_000 };
    let query_counts = [10usize, 100, 1000];
    let arrivals = stream(num_arrivals);

    let mut points = Vec::new();
    let mut failures = Vec::new();
    for &n in &query_counts {
        let (point, report) = run_point(n, &arrivals);
        println!(
            "{n:>5} queries -> {:>2} pipelines: {:>9.0} arrivals/s ({:>6.2} µs/arrival), \
             {:>8.0} registrations/s, state shared {} B vs isolated {} B ({:.1}x)",
            point.pipelines,
            point.arrivals_per_sec,
            point.micros_per_arrival,
            point.registrations_per_sec,
            point.shared_state_bytes,
            point.isolated_state_bytes,
            point.state_sharing_factor,
        );
        if point.sentinel_results == 0 {
            failures.push(format!("{n} queries: sentinel query saw no results"));
        }
        if report.shared_state_bytes > report.isolated_state_bytes {
            failures.push(format!(
                "{n} queries: shared state {} B exceeds isolated baseline {} B",
                report.shared_state_bytes, report.isolated_state_bytes
            ));
        }
        if report.queries > report.pipelines
            && report.shared_state_bytes >= report.isolated_state_bytes
        {
            failures.push(format!(
                "{n} queries over {} pipelines: sharing saved no state bytes",
                report.pipelines
            ));
        }
        points.push(point);
    }

    let base = &points[0];
    let peak = &points[points.len() - 1];
    let query_ratio = peak.queries as f64 / base.queries as f64;
    let cost_ratio = peak.micros_per_arrival / base.micros_per_arrival.max(1e-9);
    let sublinearity = Sublinearity {
        base_queries: base.queries,
        peak_queries: peak.queries,
        query_ratio,
        base_micros_per_arrival: base.micros_per_arrival,
        peak_micros_per_arrival: peak.micros_per_arrival,
        cost_ratio,
    };
    println!(
        "scaling {}x queries cost {cost_ratio:.2}x per arrival (linear would be {query_ratio:.0}x)",
        query_ratio as u64
    );
    if cost_ratio >= query_ratio / 2.0 {
        failures.push(format!(
            "per-arrival cost ratio {cost_ratio:.2} not sublinear in query ratio {query_ratio:.0}"
        ));
    }

    let report = BenchReport {
        workload: format!(
            "A⋈B on k (k,v ∈ 0..100), {num_arrivals} arrivals 200ms apart, \
             query family: 8 filter thresholds × 2 windows"
        ),
        quick,
        points,
        sublinearity,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("report written");
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
