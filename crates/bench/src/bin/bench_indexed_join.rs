//! Probe-scaling bench: hash-indexed vs scanned operator states.
//!
//! Runs the paper's 3-source clique figure workload through the engine with
//! [`StateIndexMode::Hashed`] and [`StateIndexMode::Scan`] in REF and JIT
//! modes, sweeping the stream duration so the state sizes (and with them the
//! nested-loop probe cost) grow, and writes `BENCH_indexed_join.json` with
//! tuples/sec and `probe_pairs` per point — the start of the perf
//! trajectory for the indexed state layer.
//!
//! Usage:
//!
//! ```text
//! cargo run -p jit-bench --release --bin bench_indexed_join [-- --quick] [--out PATH]
//! ```
//!
//! * `--quick`  one short point per mode (the CI smoke configuration); the
//!   run *asserts* that indexed probing examines strictly fewer pairs than
//!   the scan baseline with identical result counts, exiting non-zero
//!   otherwise.
//! * `--out PATH`  where to write the JSON report
//!   (default `BENCH_indexed_join.json`).

use jit_core::policy::{ExecutionMode, JitPolicy};
use jit_engine::Engine;
use jit_exec::executor::ExecutorConfig;
use jit_exec::state::StateIndexMode;
use jit_plan::shapes::PlanShape;
use jit_stream::{WorkloadGenerator, WorkloadSpec};
use jit_types::{BatchPolicy, Duration};
use serde::Serialize;

/// One measured (mode, index, batch, duration) point.
#[derive(Debug, Serialize)]
struct BenchPoint {
    mode: String,
    index: String,
    /// Columnar batch size the engine ran under (1 = tuple-at-a-time).
    batch_rows: usize,
    duration_secs: u64,
    arrivals: u64,
    results: u64,
    probe_pairs: u64,
    cost_units: u64,
    wall_seconds: f64,
    tuples_per_sec: f64,
}

/// The full report written to `BENCH_indexed_join.json`.
#[derive(Debug, Serialize)]
struct BenchReport {
    workload: String,
    quick: bool,
    points: Vec<BenchPoint>,
    /// `probe_pairs(scan) / probe_pairs(indexed)` per (mode, duration).
    probe_reduction: Vec<ProbeReduction>,
}

#[derive(Debug, Serialize)]
struct ProbeReduction {
    mode: String,
    duration_secs: u64,
    scan_probe_pairs: u64,
    indexed_probe_pairs: u64,
    reduction_factor: f64,
}

fn index_label(index: StateIndexMode) -> &'static str {
    match index {
        StateIndexMode::Hashed => "indexed",
        StateIndexMode::Scan => "scan",
    }
}

fn run_point(
    duration_secs: u64,
    mode: ExecutionMode,
    index: StateIndexMode,
    batch_rows: usize,
) -> (BenchPoint, u64) {
    // The 3-source clique figure workload; dmax shrunk from the figure
    // default (200) so short sweeps still produce joins to verify against.
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_dmax(40)
        .with_duration(Duration::from_secs(duration_secs))
        .with_seed(20080415);
    let trace = WorkloadGenerator::generate(&spec);
    let outcome = Engine::builder()
        .workload(&spec, &PlanShape::bushy(3))
        .mode(mode)
        .state_index(index)
        .batch_policy(BatchPolicy::rows(batch_rows))
        .executor_config(ExecutorConfig {
            collect_results: false,
            check_temporal_order: false,
        })
        .build()
        .expect("bench engine builds")
        .run_trace(&trace)
        .expect("bench trace runs");
    let arrivals = outcome.snapshot.stats.tuples_arrived;
    let wall = outcome.snapshot.wall_seconds.max(1e-9);
    (
        BenchPoint {
            mode: mode.label().to_string(),
            index: index_label(index).to_string(),
            batch_rows,
            duration_secs,
            arrivals,
            results: outcome.results_count,
            probe_pairs: outcome.snapshot.stats.probe_pairs,
            cost_units: outcome.snapshot.cost_units,
            wall_seconds: wall,
            tuples_per_sec: arrivals as f64 / wall,
        },
        outcome.results_count,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_indexed_join.json".to_string());

    let durations: Vec<u64> = if quick {
        vec![120]
    } else {
        vec![120, 300, 600, 1200]
    };
    let modes = [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())];

    let mut points = Vec::new();
    let mut reductions = Vec::new();
    let mut failures = Vec::new();
    for &duration in &durations {
        for mode in modes {
            let (scan_point, scan_results) = run_point(duration, mode, StateIndexMode::Scan, 1);
            let (indexed_point, indexed_results) =
                run_point(duration, mode, StateIndexMode::Hashed, 1);
            // The batch data plane on top of the indexed state: same
            // workload, columnar blocks of up to 1024 arrivals.
            let (batched_point, batched_results) =
                run_point(duration, mode, StateIndexMode::Hashed, 1024);
            let factor = scan_point.probe_pairs as f64 / indexed_point.probe_pairs.max(1) as f64;
            println!(
                "{:>4} {}s: probe_pairs scan {:>10} -> indexed {:>8}  ({factor:.1}x), \
                 {:>9.0} vs {:>9.0} vs {:>9.0} (batched) tuples/s",
                scan_point.mode,
                duration,
                scan_point.probe_pairs,
                indexed_point.probe_pairs,
                scan_point.tuples_per_sec,
                indexed_point.tuples_per_sec,
                batched_point.tuples_per_sec,
            );
            if scan_results != indexed_results {
                failures.push(format!(
                    "{} {duration}s: result counts diverge (scan {scan_results}, \
                     indexed {indexed_results})",
                    scan_point.mode
                ));
            }
            if batched_results != indexed_results {
                failures.push(format!(
                    "{} {duration}s: batched result count {batched_results} != tuple-mode \
                     {indexed_results}",
                    scan_point.mode
                ));
            }
            if batched_point.probe_pairs != indexed_point.probe_pairs {
                failures.push(format!(
                    "{} {duration}s: batched probe_pairs {} != tuple-mode {}",
                    scan_point.mode, batched_point.probe_pairs, indexed_point.probe_pairs
                ));
            }
            if indexed_point.probe_pairs >= scan_point.probe_pairs {
                failures.push(format!(
                    "{} {duration}s: indexed probe_pairs {} not below scan {}",
                    scan_point.mode, indexed_point.probe_pairs, scan_point.probe_pairs
                ));
            }
            reductions.push(ProbeReduction {
                mode: scan_point.mode.clone(),
                duration_secs: duration,
                scan_probe_pairs: scan_point.probe_pairs,
                indexed_probe_pairs: indexed_point.probe_pairs,
                reduction_factor: factor,
            });
            points.push(scan_point);
            points.push(indexed_point);
            points.push(batched_point);
        }
    }

    let report = BenchReport {
        workload: "3-source clique, bushy plan, dmax 40, rate 1/s, seed 20080415".to_string(),
        quick,
        points,
        probe_reduction: reductions,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("report written");
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
