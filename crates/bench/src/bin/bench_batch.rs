//! Batch data plane bench: tuple-at-a-time vs columnar block ingestion.
//!
//! Runs one key-partitionable 3-source equi-join workload through the
//! engine at batch sizes 1 (the tuple-equivalent default), 64 and 1024, in
//! REF and JIT modes, on the single-threaded and the 4-shard backend, and
//! writes `BENCH_batch.json` with tuples/sec per point plus each batched
//! point's speedup over the tuple baseline of the same (mode, backend).
//!
//! The run *asserts* (in every configuration) that all batch sizes produce
//! identical result counts, that both backends agree on them, and that the
//! best batched throughput per (mode, backend) is at least 90% of the
//! tuple baseline's — batching must never cost real throughput (the 10%
//! margin absorbs scheduler noise on shared machines; each point is
//! already the best of [`REPEATS`] runs). Any violation exits non-zero.
//!
//! Usage:
//!
//! ```text
//! cargo run -p jit-bench --release --bin bench_batch \
//!     [-- --quick] [--out PATH] [--check-baseline PATH]
//! ```
//!
//! * `--quick`  shorter stream (the CI smoke configuration).
//! * `--out PATH`  where to write the JSON report
//!   (default `BENCH_batch.json`).
//! * `--check-baseline PATH`  compare against a committed report: for every
//!   batched point, the speedup-over-tuple ratio must be at least 75% of
//!   the baseline's for the same (mode, backend, batch size). The guard
//!   compares *ratios*, not raw tuples/sec, so it ports across machines of
//!   different absolute speed while still catching a batch-path regression
//!   (a change that slows only the block path drops its ratio immediately).

use jit_core::policy::{ExecutionMode, JitPolicy};
use jit_engine::{Engine, EngineOutcome};
use jit_exec::executor::ExecutorConfig;
use jit_plan::shapes::PlanShape;
use jit_runtime::RuntimeConfig;
use jit_stream::{Trace, WorkloadGenerator, WorkloadSpec};
use jit_types::{BatchPolicy, Duration};
use serde::{Deserialize, Serialize};

/// One measured (mode, backend, batch size) point.
#[derive(Debug, Serialize, Deserialize)]
struct BatchPoint {
    mode: String,
    backend: String,
    batch_rows: usize,
    arrivals: u64,
    results: u64,
    wall_seconds: f64,
    tuples_per_sec: f64,
    /// Throughput relative to the `batch_rows == 1` point of the same
    /// (mode, backend) — the machine-portable regression-guard metric.
    speedup_vs_tuple: f64,
}

/// One per-kernel micro-timing: the kernel run standalone over the
/// workload's own rows, best of [`REPEATS`] passes. Absolute nanoseconds
/// are machine-specific, so these are reported for profiling — the
/// regression guard stays on the machine-portable speedup ratios.
#[derive(Debug, Serialize, Deserialize)]
struct KernelTiming {
    kernel: String,
    rows: u64,
    ns_per_row: f64,
}

/// The full report written to `BENCH_batch.json`.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    workload: String,
    quick: bool,
    points: Vec<BatchPoint>,
    kernels: Vec<KernelTiming>,
}

const SHARDS: usize = 4;

/// Runs per point; the fastest wall is reported. Walls here are tens of
/// milliseconds, where one scheduler preemption skews a single sample by
/// 2x — the minimum over a few runs measures the actual cost.
const REPEATS: usize = 5;

/// Batched throughput must stay above this fraction of the tuple
/// baseline's. The failure mode this guards against — a block path gone
/// quadratic, per-row work reintroduced per batch — lands far below it;
/// the remaining margin absorbs scheduler noise on shared CI machines.
const MIN_SPEEDUP: f64 = 0.85;

fn spec(quick: bool) -> WorkloadSpec {
    // Key-partitionable (shared key column) so the same trace runs on both
    // backends. The key domain is wide (dmax 5000) and the window short so
    // join fan-out stays small and the run measures the per-arrival data
    // plane — channel and scheduler hops, per-tuple allocations — rather
    // than join arithmetic, which batching deliberately does not change.
    WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_shared_key()
        .with_window_minutes(0.5)
        .with_dmax(5000)
        .with_rate(50.0)
        .with_duration(Duration::from_secs(if quick { 120 } else { 600 }))
        .with_seed(20080415)
}

fn run_point(
    spec: &WorkloadSpec,
    trace: &Trace,
    mode: ExecutionMode,
    sharded: bool,
    batch_rows: usize,
) -> EngineOutcome {
    // Best of REPEATS identical runs (the engine is deterministic, so only
    // the wall differs between repetitions).
    let mut best: Option<EngineOutcome> = None;
    for _ in 0..REPEATS {
        let mut builder = Engine::builder()
            .workload(spec, &PlanShape::left_deep(3))
            .mode(mode)
            .batch_policy(BatchPolicy::rows(batch_rows))
            .executor_config(ExecutorConfig {
                collect_results: false,
                check_temporal_order: false,
            });
        if sharded {
            builder = builder.sharded(RuntimeConfig::with_shards(SHARDS));
        }
        let outcome = builder
            .build()
            .expect("bench engine builds")
            .run_trace(trace)
            .expect("bench trace runs");
        if best
            .as_ref()
            .is_none_or(|b| outcome.snapshot.wall_seconds < b.snapshot.wall_seconds)
        {
            best = Some(outcome);
        }
    }
    best.expect("at least one repetition ran")
}

/// Time `f` (which processes `rows` rows per call): best pass of
/// [`REPEATS`], after one warm-up call.
fn timed(kernel: &str, rows: u64, reps: usize, mut f: impl FnMut()) -> KernelTiming {
    f();
    let mut best = f64::MAX;
    for _ in 0..REPEATS {
        let start = std::time::Instant::now();
        for _ in 0..reps {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / (reps as f64 * rows as f64);
        best = best.min(ns);
    }
    println!("kernel {kernel:>18}: {best:>8.2} ns/row");
    KernelTiming {
        kernel: kernel.to_string(),
        rows,
        ns_per_row: best,
    }
}

/// Micro-time the four columnar kernels the batch path is built from —
/// selection masking, probe-key extraction, columnar result assembly, and
/// the MNS lattice walk — each standalone over rows drawn from the bench
/// trace itself, so the timed data distribution matches what the end-to-end
/// points above push through the engine.
fn bench_kernels(trace: &Trace) -> Vec<KernelTiming> {
    use jit_core::CnsLattice;
    use jit_exec::operator::ResultBlock;
    use jit_metrics::RunMetrics;
    use jit_types::kernel::{self, BitMask};
    use jit_types::{BlockBuilder, ColumnRef, CompareOp, SourceId, SourceSet, Tuple, Value};

    const ROWS: usize = 1024;
    let tuples_of = |source: SourceId| {
        trace
            .iter()
            .filter(|e| e.source == source)
            .take(ROWS)
            .map(|e| e.tuple.clone())
            .collect::<Vec<_>>()
    };
    let mut builder = BlockBuilder::new().with_columns(true);
    for tuple in tuples_of(SourceId(0)) {
        builder.push(SourceId(0), tuple);
    }
    let block = builder.finish();
    let batch = &block.batches()[0];
    let rows = batch.len() as u64;

    let mut timings = Vec::new();

    let array = batch.column(0).expect("workload rows carry a key column");
    let mut mask = BitMask::new();
    timings.push(timed("selection_mask", rows, 2048, || {
        kernel::filter_mask(array, CompareOp::Gt, &Value::int(2500), &mut mask);
    }));

    let cols = [ColumnRef::new(SourceId(0), 0)];
    let mut keys = Vec::new();
    let mut valid = Vec::new();
    timings.push(timed("probe_key_extract", rows, 1024, || {
        kernel::extract_probe_keys(batch, &cols, &mut keys, &mut valid);
    }));

    let probes: Vec<Tuple> = tuples_of(SourceId(0))
        .into_iter()
        .map(Tuple::from_base)
        .collect();
    let partners: Vec<Tuple> = tuples_of(SourceId(1))
        .into_iter()
        .map(Tuple::from_base)
        .collect();
    let pairs = probes.len().min(partners.len()) as u64;
    timings.push(timed("result_assembly", pairs, 256, || {
        let mut assembled = ResultBlock::new();
        for (a, b) in probes.iter().zip(&partners) {
            assembled.push_join(a, b, false);
        }
        std::hint::black_box(&assembled);
    }));

    let candidates = SourceSet::from_iter([SourceId(0), SourceId(1)]);
    let mut metrics = RunMetrics::new();
    timings.push(timed("mns_walk", rows, 64, || {
        for _ in 0..ROWS {
            let mut lattice = CnsLattice::new(candidates);
            lattice.observe(SourceSet::single(SourceId(0)), &mut metrics);
            lattice.observe(SourceSet::single(SourceId(1)), &mut metrics);
            std::hint::black_box(lattice.minimal_alive());
        }
    }));

    timings
}

/// Check the current report against a committed baseline; returns failures.
fn check_baseline(current: &BenchReport, path: &str) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return vec![format!("baseline {path} unreadable: {e}")],
    };
    let baseline: BenchReport = match serde_json::from_str(&text) {
        Ok(report) => report,
        Err(e) => return vec![format!("baseline {path} unparsable: {e}")],
    };
    let mut failures = Vec::new();
    for point in current.points.iter().filter(|p| p.batch_rows > 1) {
        let Some(base) = baseline.points.iter().find(|b| {
            b.mode == point.mode && b.backend == point.backend && b.batch_rows == point.batch_rows
        }) else {
            continue; // a new configuration has no baseline yet
        };
        if point.speedup_vs_tuple < 0.75 * base.speedup_vs_tuple {
            failures.push(format!(
                "{} {} batch {}: speedup {:.2}x regressed >25% vs baseline {:.2}x",
                point.mode,
                point.backend,
                point.batch_rows,
                point.speedup_vs_tuple,
                base.speedup_vs_tuple
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_batch.json".to_string());
    let baseline_path = arg_after("--check-baseline");

    let spec = spec(quick);
    let trace = WorkloadGenerator::generate(&spec);
    let modes = [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())];
    let batch_sizes = [1usize, 64, 1024];

    let mut points = Vec::new();
    let mut failures = Vec::new();
    let mut counts_by_mode: Vec<(String, u64)> = Vec::new();
    for mode in modes {
        for sharded in [false, true] {
            let backend = if sharded {
                format!("sharded{SHARDS}")
            } else {
                "single".to_string()
            };
            let mut tuple_rate = 0.0;
            let mut tuple_results = 0;
            let mut best_batched = 0.0f64;
            for &batch_rows in &batch_sizes {
                let outcome = run_point(&spec, &trace, mode, sharded, batch_rows);
                let arrivals = outcome.snapshot.stats.tuples_arrived;
                let wall = outcome.snapshot.wall_seconds.max(1e-9);
                let rate = arrivals as f64 / wall;
                if batch_rows == 1 {
                    tuple_rate = rate;
                    tuple_results = outcome.results_count;
                } else {
                    best_batched = best_batched.max(rate);
                    if outcome.results_count != tuple_results {
                        failures.push(format!(
                            "{} {backend} batch {batch_rows}: result count {} != tuple mode {}",
                            mode.label(),
                            outcome.results_count,
                            tuple_results
                        ));
                    }
                }
                if outcome.order_violations != 0 {
                    failures.push(format!(
                        "{} {backend} batch {batch_rows}: {} temporal-order violations",
                        mode.label(),
                        outcome.order_violations
                    ));
                }
                println!(
                    "{:>4} {backend:>8} batch {batch_rows:>5}: {:>10.0} tuples/s  ({:.2}x), \
                     {} results",
                    mode.label(),
                    rate,
                    rate / tuple_rate.max(1e-9),
                    outcome.results_count,
                );
                points.push(BatchPoint {
                    mode: mode.label().to_string(),
                    backend: backend.clone(),
                    batch_rows,
                    arrivals,
                    results: outcome.results_count,
                    wall_seconds: wall,
                    tuples_per_sec: rate,
                    speedup_vs_tuple: rate / tuple_rate.max(1e-9),
                });
            }
            if best_batched < MIN_SPEEDUP * tuple_rate {
                failures.push(format!(
                    "{} {backend}: best batched rate {best_batched:.0} below {:.0}% of tuple \
                     rate {tuple_rate:.0}",
                    mode.label(),
                    MIN_SPEEDUP * 100.0
                ));
            }
            counts_by_mode.push((mode.label().to_string(), tuple_results));
        }
    }
    // The two backends must agree on result counts per mode.
    for pair in counts_by_mode.chunks(2) {
        if let [(mode, single), (_, sharded)] = pair {
            if single != sharded {
                failures.push(format!(
                    "{mode}: single-threaded results {single} != sharded results {sharded}"
                ));
            }
        }
    }

    let kernels = bench_kernels(&trace);

    let report = BenchReport {
        workload: format!(
            "3-source shared-key left-deep join, 0.5 min window, dmax 5000, rate 50/s, {}s, \
             seed 20080415",
            if quick { 120 } else { 600 }
        ),
        quick,
        points,
        kernels,
    };
    if let Some(path) = baseline_path {
        failures.extend(check_baseline(&report, &path));
    }
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("report written");
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
