//! Regenerate every figure of the paper's evaluation (Figures 10–17).
//!
//! Usage:
//!
//! ```text
//! cargo run -p jit-bench --release --bin run_figures [-- --scale 0.25 --seed 1 --out results/ --figure fig10]
//! ```
//!
//! * `--scale S`   application-time scale: 1.0 = 60 minutes per point, the
//!   paper's 5-hour runs correspond to `--scale 5.0` (default 0.1).
//! * `--seed N`    workload RNG seed (default 20080415).
//! * `--out DIR`   also write per-figure CSV and JSON under `DIR`.
//! * `--figure ID` run a single figure (`fig10` … `fig17`) instead of all.
//! * `--doe`       additionally run the DOE baseline.

use jit_harness::figures::{check_expectations, run_figure, FigureSpec};
use jit_harness::table_out::{render_csv, render_table};
use std::path::PathBuf;

struct Options {
    scale: f64,
    seed: u64,
    out_dir: Option<PathBuf>,
    only: Option<String>,
    with_doe: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        scale: 0.1,
        seed: 20080415,
        out_dir: None,
        only: None,
        with_doe: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out" => {
                options.out_dir = Some(PathBuf::from(args.next().expect("--out needs a path")));
            }
            "--figure" => {
                options.only = Some(args.next().expect("--figure needs an id"));
            }
            "--doe" => options.with_doe = true,
            "--help" | "-h" => {
                println!("run_figures [--scale S] [--seed N] [--out DIR] [--figure figNN] [--doe]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    options
}

fn main() {
    let options = parse_args();
    let figures: Vec<FigureSpec> = match &options.only {
        Some(id) => vec![FigureSpec::by_id(id).unwrap_or_else(|| {
            eprintln!("unknown figure {id}; expected fig10..fig17");
            std::process::exit(2);
        })],
        None => FigureSpec::all(),
    };
    if let Some(dir) = &options.out_dir {
        std::fs::create_dir_all(dir).expect("cannot create output directory");
    }
    println!(
        "Reproducing {} figure(s) at duration scale {} (1.0 = 60 min of application time; the paper uses 5.0)\n",
        figures.len(),
        options.scale
    );
    let mut all_ok = true;
    for mut spec in figures {
        if options.with_doe {
            spec.base = spec.base.clone().with_doe();
        }
        let result = run_figure(&spec, options.scale, options.seed);
        println!("{}", render_table(&result));
        let violations = check_expectations(&result, options.scale);
        if violations.is_empty() {
            if options.scale >= jit_harness::figures::MEMORY_CHECK_MIN_SCALE {
                println!(
                    "  ✓ expectations hold (JIT ≤ REF in cost and memory, result counts agree)\n"
                );
            } else {
                println!(
                    "  ✓ expectations hold (JIT ≤ REF in cost, result counts agree; memory not \
                     compared below scale {} — no-expiry regime)\n",
                    jit_harness::figures::MEMORY_CHECK_MIN_SCALE
                );
            }
        } else {
            all_ok = false;
            for v in &violations {
                println!("  ✗ {v}");
            }
            println!();
        }
        if let Some(dir) = &options.out_dir {
            std::fs::write(dir.join(format!("{}.csv", result.id)), render_csv(&result))
                .expect("cannot write CSV");
            std::fs::write(
                dir.join(format!("{}.json", result.id)),
                serde_json::to_string_pretty(&result).expect("figure result serialises"),
            )
            .expect("cannot write JSON");
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
