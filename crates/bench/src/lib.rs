//! # jit-bench
//!
//! Benchmark harness support: shared helpers used by the Criterion benches
//! (one per figure of the paper) and by the `run_figures` binary that
//! regenerates all tables/series in one go.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use jit_harness::figures::{run_figure, FigureResult, FigureSpec};

/// Duration scale used by the Criterion benches. The paper runs 5 hours of
/// application time per point (scale 5.0); benches use a small fraction so a
/// full `cargo bench` completes in minutes while preserving the relative
/// JIT/REF behaviour.
pub const BENCH_DURATION_SCALE: f64 = 0.05;

/// Seed shared by all benches so numbers are comparable across runs.
pub const BENCH_SEED: u64 = 20080415;

/// Run one of the paper's figures at the bench scale.
pub fn run_figure_scaled(spec: &FigureSpec) -> FigureResult {
    run_figure(spec, BENCH_DURATION_SCALE, BENCH_SEED)
}

/// Print a measured figure (table form) to stdout — used by benches so the
/// series the paper reports are visible in the bench log.
pub fn print_figure(result: &FigureResult) {
    println!("{}", jit_harness::table_out::render_table(result));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_run_completes_for_the_cheapest_figure() {
        let mut spec = FigureSpec::fig16();
        spec.values = vec![3.0];
        let result = run_figure_scaled(&spec);
        assert_eq!(result.rows.len(), 1);
        print_figure(&result);
    }
}
