//! Figure 16: CPU time and memory vs number of sources N, left-deep plan
//!
//! The bench measures wall-clock execution of the figure's *default* swept
//! point under REF and JIT on identical traces; in addition it regenerates
//! the figure's full series (scaled down) once and prints the table, so the
//! bench log contains the same rows the paper plots.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jit_bench::{print_figure, run_figure_scaled, BENCH_DURATION_SCALE, BENCH_SEED};
use jit_core::policy::{ExecutionMode, JitPolicy};
use jit_exec::executor::ExecutorConfig;
use jit_harness::figures::FigureSpec;
use jit_plan::runtime::QueryRuntime;
use jit_stream::WorkloadGenerator;

fn bench(c: &mut Criterion) {
    let spec = FigureSpec::fig16();
    // Print the full (scaled) series once so the figure can be read off the log.
    let result = run_figure_scaled(&spec);
    print_figure(&result);

    // Benchmark the default point (the middle of the sweep) under both modes.
    let default_value = spec.values[spec.values.len() / 2];
    let config = spec
        .config_for(default_value)
        .with_duration_scale(BENCH_DURATION_SCALE)
        .with_seed(BENCH_SEED);
    let trace = WorkloadGenerator::generate(&config.workload);
    let exec_config = ExecutorConfig {
        collect_results: false,
        check_temporal_order: false,
    };
    let mut group = c.benchmark_group("fig16_leftdeep_sources");
    group.sample_size(10);
    for (label, mode) in [
        ("REF", ExecutionMode::Ref),
        ("JIT", ExecutionMode::Jit(JitPolicy::full())),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || trace.clone(),
                |t| {
                    QueryRuntime::run_trace(
                        &t,
                        &config.workload,
                        &config.shape,
                        mode,
                        exec_config.clone(),
                    )
                    .expect("plan builds")
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
