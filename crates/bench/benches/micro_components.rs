//! Micro-benchmarks of the JIT building blocks: the CNS lattice
//! (`Identify_MNS`), the Bloom filter, the MNS buffer probe and the window
//! join probe — the per-tuple costs that Section IV trades off.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jit_core::lattice::CnsLattice;
use jit_core::mns_buffer::MnsBuffer;
use jit_core::BloomFilter;
use jit_metrics::RunMetrics;
use jit_types::{
    BaseTuple, Duration, PredicateSet, SourceId, SourceSet, Timestamp, Tuple, Value, Window,
};
use std::sync::Arc;

fn tuple(source: u16, seq: u64, vals: &[i64]) -> Tuple {
    Tuple::from_base(Arc::new(BaseTuple::new(
        SourceId(source),
        seq,
        Timestamp::from_millis(seq),
        vals.iter().map(|&v| Value::int(v)).collect(),
    )))
}

fn bench_lattice(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice_identify_mns");
    for candidates in [2usize, 3, 4] {
        group.bench_function(format!("{candidates}_candidates_x_256_state_tuples"), |b| {
            let sources = SourceSet::first_n(candidates);
            b.iter_batched(
                || (CnsLattice::new(sources), RunMetrics::new()),
                |(mut lattice, mut metrics)| {
                    for i in 0..256u64 {
                        // Pseudo-random subset of matched components.
                        let mask = (i.wrapping_mul(2654435761) >> 3) % (1 << candidates);
                        let matched = SourceSet(mask & (sources.0));
                        lattice.observe(matched, &mut metrics);
                    }
                    lattice.minimal_alive()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut filter = BloomFilter::new(4096, 3);
    for v in 0..1_000 {
        filter.insert(&Value::int(v));
    }
    c.bench_function("bloom_probe_1k_values", |b| {
        b.iter(|| {
            let mut absent = 0;
            for v in 0..1_000 {
                if filter.definitely_absent(&Value::int(v * 7 + 500)) {
                    absent += 1;
                }
            }
            absent
        })
    });
}

fn bench_mns_buffer(c: &mut Criterion) {
    let preds = PredicateSet::clique(2);
    let window = Window::new(Duration::from_secs(3_600));
    c.bench_function("mns_buffer_probe_256_entries", |b| {
        b.iter_batched(
            || {
                let mut buffer = MnsBuffer::new("bench");
                for i in 0..256 {
                    buffer.insert(tuple(0, i, &[i as i64]), Timestamp::from_millis(i));
                }
                (buffer, RunMetrics::new())
            },
            |(mut buffer, mut metrics)| {
                buffer.take_matching(&tuple(1, 1, &[128]), &preds, window, &mut metrics)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_join_probe(c: &mut Criterion) {
    use jit_exec::operator::{DataMessage, OpContext, Operator, LEFT, RIGHT};
    use jit_exec::RefJoinOperator;
    c.bench_function("ref_join_probe_512_partners", |b| {
        b.iter_batched(
            || {
                let mut op = RefJoinOperator::new(
                    "bench",
                    SourceSet::single(SourceId(0)),
                    SourceSet::single(SourceId(1)),
                    PredicateSet::clique(2),
                    Window::new(Duration::from_secs(3_600)),
                );
                let mut metrics = RunMetrics::new();
                for i in 0..512u64 {
                    let msg = DataMessage::new(tuple(1, i, &[(i % 64) as i64]));
                    let mut ctx = OpContext::new(Timestamp::from_millis(i), &mut metrics);
                    op.process(RIGHT, &msg, &mut ctx);
                }
                (op, metrics)
            },
            |(mut op, mut metrics)| {
                let msg = DataMessage::new(tuple(0, 0, &[7]));
                let mut ctx = OpContext::new(Timestamp::from_millis(1_000), &mut metrics);
                op.process(LEFT, &msg, &mut ctx).results.len()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_lattice,
    bench_bloom,
    bench_mns_buffer,
    bench_join_probe
);
criterion_main!(benches);
