//! Ablation bench: how much of JIT's benefit comes from each design choice?
//!
//! Compares, on the bushy default workload (scaled down):
//!
//! * REF — no feedback at all;
//! * DOE — only Ø (empty-state) suspension, the baseline JIT subsumes;
//! * JIT (Bloom) — Bloom-filter MNS detection (cheaper, incomplete);
//! * JIT (no similar capture) — full lattice but no signature-based capture
//!   of tuples like `a2`;
//! * JIT (no propagation) — feedback affects only the immediate producer;
//! * JIT (full) — the paper's configuration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jit_bench::{BENCH_DURATION_SCALE, BENCH_SEED};
use jit_core::policy::{ExecutionMode, JitPolicy};
use jit_exec::executor::ExecutorConfig;
use jit_harness::config::ExperimentConfig;
use jit_plan::runtime::QueryRuntime;
use jit_stream::WorkloadGenerator;

fn bench(c: &mut Criterion) {
    let config = ExperimentConfig::bushy_default()
        .with_duration_scale(BENCH_DURATION_SCALE)
        .with_seed(BENCH_SEED);
    let trace = WorkloadGenerator::generate(&config.workload);
    let exec_config = ExecutorConfig {
        collect_results: false,
        check_temporal_order: false,
    };
    let variants: Vec<(&str, ExecutionMode)> = vec![
        ("REF", ExecutionMode::Ref),
        ("DOE", ExecutionMode::Doe),
        ("JIT-bloom", ExecutionMode::Jit(JitPolicy::bloom())),
        (
            "JIT-no-similar",
            ExecutionMode::Jit(JitPolicy::full().without_similar_capture()),
        ),
        (
            "JIT-no-propagation",
            ExecutionMode::Jit(JitPolicy::full().without_propagation()),
        ),
        ("JIT-full", ExecutionMode::Jit(JitPolicy::full())),
    ];

    // Print the per-variant counters once so the ablation can be read off the
    // bench log (intermediate results produced / suppressed, feedback volume).
    println!("ablation on {} ({}):", config.name, config.shape.label());
    for (label, mode) in &variants {
        let outcome = QueryRuntime::run_trace(
            &trace,
            &config.workload,
            &config.shape,
            *mode,
            exec_config.clone(),
        )
        .expect("plan builds");
        println!(
            "  {:>18}: cost {:>12} u, peak mem {:>9.1} KB, intermediates {:>8}, suppressed {:>8}, feedback {:>6}, results {}",
            label,
            outcome.snapshot.cost_units,
            outcome.snapshot.peak_memory_kb(),
            outcome.snapshot.stats.intermediate_produced,
            outcome.snapshot.stats.intermediate_suppressed,
            outcome.snapshot.stats.feedback_total(),
            outcome.results_count,
        );
    }

    let mut group = c.benchmark_group("ablation_policies");
    group.sample_size(10);
    for (label, mode) in &variants {
        group.bench_function(*label, |b| {
            b.iter_batched(
                || trace.clone(),
                |t| {
                    QueryRuntime::run_trace(
                        &t,
                        &config.workload,
                        &config.shape,
                        *mode,
                        exec_config.clone(),
                    )
                    .expect("plan builds")
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
