//! Parallel scaling: wall-clock of the sharded runtime vs shard count.
//!
//! Beyond the paper: the same key-partitionable clique-join workload is
//! executed by the sharded parallel runtime (`jit-runtime`) at shard counts
//! 1, 2, 4 and 8, under both REF and JIT, on identical traces. Shard count 1
//! is the single-core baseline; the ratio against it is the speedup curve.
//! A summary of per-shard load balance is printed once so the scaling
//! numbers can be read in context.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jit_bench::BENCH_SEED;
use jit_core::policy::{ExecutionMode, JitPolicy};
use jit_exec::executor::ExecutorConfig;
use jit_harness::parallel::{parallel_workload, run_parallel_trace};
use jit_plan::shapes::PlanShape;
use jit_runtime::RuntimeConfig;
use jit_stream::WorkloadGenerator;
use jit_types::Duration;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench(c: &mut Criterion) {
    // Selective workload: with ~480 tuples per source and 200 distinct keys,
    // each key holds only a couple of tuples per source, so result volume
    // stays small while the probe work still dominates.
    let spec = parallel_workload(4, 200)
        .with_rate(2.0)
        .with_window_minutes(4.0)
        .with_duration(Duration::from_mins(4))
        .with_seed(BENCH_SEED);
    let shape = PlanShape::bushy(4);
    let trace = WorkloadGenerator::generate(&spec);
    let exec_config = ExecutorConfig {
        collect_results: false,
        check_temporal_order: false,
    };

    // Scaling numbers only mean something relative to the cores actually
    // present: shards beyond the machine's parallelism time-slice one core
    // and cannot speed anything up. Detect and annotate, so a flat curve on
    // a small machine reads as oversubscription rather than a regression.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // One untimed pass per shard count: print load balance and check that
    // every configuration agrees on the result count.
    let reference = run_parallel_trace(
        &trace,
        &spec,
        &shape,
        ExecutionMode::Ref,
        exec_config.clone(),
        RuntimeConfig::with_shards(1),
    )
    .expect("plan builds");
    println!(
        "parallel_scaling: {} arrivals, {} results, {cores} core(s) available",
        trace.len(),
        reference.results_count
    );
    for shards in SHARD_COUNTS {
        let outcome = run_parallel_trace(
            &trace,
            &spec,
            &shape,
            ExecutionMode::Ref,
            exec_config.clone(),
            RuntimeConfig::with_shards(shards),
        )
        .expect("plan builds");
        assert_eq!(
            outcome.results_count, reference.results_count,
            "sharding must not change the result count"
        );
        println!(
            "  shards={shards}: max shard load {:.0}% (ideal {:.0}%){}",
            outcome.max_shard_load() * 100.0,
            100.0 / shards as f64,
            if shards > cores {
                " [oversubscribed: shards > cores]"
            } else {
                ""
            }
        );
    }

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for (mode_label, mode) in [
        ("REF", ExecutionMode::Ref),
        ("JIT", ExecutionMode::Jit(JitPolicy::full())),
    ] {
        for shards in SHARD_COUNTS {
            group.bench_function(format!("{mode_label}/shards={shards}"), |b| {
                b.iter_batched(
                    || trace.clone(),
                    |t| {
                        run_parallel_trace(
                            &t,
                            &spec,
                            &shape,
                            mode,
                            exec_config.clone(),
                            RuntimeConfig::with_shards(shards),
                        )
                        .expect("plan builds")
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
