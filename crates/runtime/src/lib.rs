//! # jit-runtime
//!
//! The sharded parallel runtime: hash-partitioned multi-core execution of
//! JIT cascades.
//!
//! The paper evaluates its mechanism on a single-threaded cascade executor
//! (`jit-exec`). This crate scales that executor across cores without
//! touching its internals:
//!
//! * [`config::RuntimeConfig`] — the knobs: `shards` (worker threads),
//!   `batch_size` (arrivals per ingestion batch) and `channel_capacity`
//!   (bound of each shard's ingestion channel, in batches).
//! * `jit_stream::partition::ShardPartitioner` — assigns each arrival to a
//!   shard by hashing its join-key column; key-equal tuples always share a
//!   shard, so key-partitionable workloads shard losslessly.
//! * [`sharded::ShardedRuntime`] — one independent `Executor` per shard on
//!   its own OS thread, each with its own plan instance; the caller's thread
//!   pushes batched arrivals through *bounded* MPSC channels (backpressure,
//!   not unbounded queues).
//! * [`merge`] — a timestamp-ordered k-way merge of the per-shard result
//!   streams, restoring the paper's global temporal-order guarantee at the
//!   sink; per-shard metrics aggregate into a single `MetricsSnapshot`.
//!
//! The crate is mode-agnostic: REF, DOE and JIT plans all shard the same
//! way, which is what lets `jit-harness` expose parallel variants of every
//! experiment. This is also the seam later work builds on: async backends
//! replace the thread-per-shard worker, NUMA placement pins shards, and
//! distributed sharding swaps the channel for a network transport.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod merge;
pub mod session;
pub mod sharded;

pub use config::{ConfigError, RuntimeConfig};
pub use jit_stream::ShardPartitioner;
pub use merge::merge_by_timestamp;
pub use session::ShardedSession;
pub use sharded::{ParallelOutcome, RuntimeError, ShardOutcome, ShardedRuntime};
