//! The sharded parallel runtime.
//!
//! [`ShardedRuntime::run`] hash-partitions a trace's join-key space over `N`
//! shards, runs one independent [`Executor`](jit_exec::executor::Executor)
//! per shard on its own OS thread
//! (each with its own instance of the plan, built by a caller-supplied
//! factory), feeds every shard through a *bounded* MPSC channel in batches
//! (a full channel blocks the feeder — backpressure instead of unbounded
//! queueing), and finally merges the per-shard result streams into one
//! globally timestamp-ordered stream while aggregating per-shard metrics
//! into a single [`MetricsSnapshot`].
//!
//! ## Correctness
//!
//! Sharding is transparent exactly when the workload is *key-partitionable*:
//! every pair of tuples that can satisfy the join predicates must be
//! assigned to the same shard. The [`ShardPartitioner`] guarantees this for
//! workloads whose predicates all reduce to equality on the partitioning
//! key (see `jit_stream::WorkloadSpec::shared_key`); under that premise the
//! union of per-shard results equals the single-executor result set.
//! Whenever each shard preserves temporal order at its sink (REF always
//! does), the k-way merge restores the global temporal-order guarantee of
//! Section II; JIT's documented late-re-emission deviation carries through
//! the merge exactly as it does on a single executor.

use crate::config::RuntimeConfig;
use jit_exec::executor::ExecutorConfig;
use jit_exec::plan::{ExecutablePlan, PlanError};
use jit_metrics::MetricsSnapshot;
use jit_stream::{ShardPartitioner, Trace};
use jit_types::Tuple;
use std::fmt;

/// Why a parallel run failed.
#[derive(Debug)]
pub enum RuntimeError {
    /// Building the plan for a shard failed.
    Plan(PlanError),
    /// A shard worker panicked (the panic message is preserved when it was a
    /// string).
    ShardPanicked {
        /// Index of the failed shard.
        shard: usize,
        /// Panic payload, if it was a string.
        message: String,
    },
    /// A checkpoint did not match this runtime's configuration, or its
    /// per-shard state failed to deserialise.
    Restore(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Plan(e) => write!(f, "plan construction failed: {e}"),
            RuntimeError::ShardPanicked { shard, message } => {
                write!(f, "shard {shard} panicked: {message}")
            }
            RuntimeError::Restore(detail) => {
                write!(f, "restoring a sharded checkpoint failed: {detail}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<PlanError> for RuntimeError {
    fn from(e: PlanError) -> Self {
        RuntimeError::Plan(e)
    }
}

/// What one shard produced.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// Arrivals this shard ingested.
    pub arrivals: u64,
    /// Results collected at this shard's sink (empty when collection is off).
    pub results: Vec<Tuple>,
    /// Number of results emitted at this shard's sink.
    pub results_count: u64,
    /// Temporal-order violations at this shard's sink.
    pub order_violations: u64,
    /// This shard's metrics.
    pub snapshot: MetricsSnapshot,
}

/// The merged outcome of one parallel run.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Merged results (empty when collection is disabled in the executor
    /// configuration). Globally timestamp-ordered whenever every shard's
    /// own stream is — always true under REF; single-threaded JIT may
    /// re-emit a suppressed result late (a documented deviation), and the
    /// merge hands that deviation through rather than re-sorting.
    pub results: Vec<Tuple>,
    /// Total results emitted across all shards.
    pub results_count: u64,
    /// Total per-shard sink order violations (0 for a correct run).
    pub order_violations: u64,
    /// Aggregated metrics: counters and cost summed, wall-clock maxed,
    /// memory summed (see `MetricsSnapshot::absorb_parallel`).
    pub snapshot: MetricsSnapshot,
    /// Per-shard outcomes, indexed by shard.
    pub per_shard: Vec<ShardOutcome>,
}

impl ParallelOutcome {
    /// Largest shard's share of all arrivals, in `[0, 1]` — a quick skew
    /// diagnostic (1/N is perfect balance).
    pub fn max_shard_load(&self) -> f64 {
        let total: u64 = self.per_shard.iter().map(|s| s.arrivals).sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.per_shard.iter().map(|s| s.arrivals).max().unwrap_or(0);
        max as f64 / total as f64
    }
}

/// Hash-partitioned multi-core executor of JIT cascades.
#[derive(Debug, Clone)]
pub struct ShardedRuntime {
    config: RuntimeConfig,
    partitioner: ShardPartitioner,
}

impl ShardedRuntime {
    /// A runtime with the given configuration, partitioning on column 0.
    pub fn new(config: RuntimeConfig) -> Self {
        let config = config.normalized();
        let partitioner = ShardPartitioner::new(config.shards);
        ShardedRuntime {
            config,
            partitioner,
        }
    }

    /// Replace the partitioner (e.g. to key on a different column). The
    /// partitioner's shard count must match the configuration.
    ///
    /// # Panics
    /// Panics if the shard counts disagree.
    pub fn with_partitioner(mut self, partitioner: ShardPartitioner) -> Self {
        assert_eq!(
            partitioner.num_shards(),
            self.config.shards,
            "partitioner and runtime must agree on the shard count"
        );
        self.partitioner = partitioner;
        self
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> &ShardPartitioner {
        &self.partitioner
    }

    /// Execute `trace` across the shards: the one-shot convenience over
    /// [`ShardedRuntime::start`] — spawn a push-based session, replay the
    /// whole trace through it, and close it.
    ///
    /// `plan_factory` is called once per shard (with the shard index, on the
    /// calling thread) and must build a fresh, independent instance of the
    /// plan — operators are stateful, so shards cannot share one.
    ///
    /// The calling thread acts as the feeder: it walks the trace in replay
    /// order, assigns each arrival to its shard, and sends batches of
    /// `batch_size` arrivals over each shard's bounded channel, blocking
    /// when a shard's channel is full (backpressure).
    pub fn run<F>(
        &self,
        trace: &Trace,
        exec_config: ExecutorConfig,
        plan_factory: F,
    ) -> Result<ParallelOutcome, RuntimeError>
    where
        F: FnMut(usize) -> Result<ExecutablePlan, PlanError>,
    {
        let mut session = self.start(exec_config, plan_factory)?;
        session.push_trace(trace);
        session.finish()
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_exec::operator::{DataMessage, OpContext, Operator, OperatorOutput, Port};
    use jit_exec::plan::{Input, PlanBuilder};
    use jit_stream::arrival::ArrivalEvent;
    use jit_types::{BaseTuple, SourceId, SourceSet, Timestamp, Value};
    use std::sync::Arc;

    /// Forwards every input tuple to its consumer (or the sink).
    struct Forward;

    impl Operator for Forward {
        fn name(&self) -> &str {
            "forward"
        }
        fn output_schema(&self) -> SourceSet {
            SourceSet::first_n(1)
        }
        fn num_ports(&self) -> usize {
            1
        }
        fn process(
            &mut self,
            _port: Port,
            msg: &DataMessage,
            _ctx: &mut OpContext<'_>,
        ) -> OperatorOutput {
            OperatorOutput::with_results(vec![msg.clone()])
        }
        fn memory_bytes(&self) -> usize {
            32
        }
    }

    fn forward_plan() -> Result<ExecutablePlan, PlanError> {
        let mut builder = PlanBuilder::new();
        builder.add_operator(Box::new(Forward), vec![Input::Source(SourceId(0))]);
        builder.build()
    }

    fn keyed_trace(n: u64) -> Trace {
        Trace::new(
            (0..n)
                .map(|i| {
                    let ts = Timestamp::from_millis(i * 10);
                    ArrivalEvent {
                        ts,
                        source: SourceId(0),
                        tuple: Arc::new(BaseTuple::new(
                            SourceId(0),
                            i,
                            ts,
                            vec![Value::int(i as i64)],
                        )),
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn all_arrivals_reach_exactly_one_shard() {
        let runtime = ShardedRuntime::new(
            RuntimeConfig::with_shards(4)
                .with_batch_size(8)
                .with_channel_capacity(2),
        );
        let outcome = runtime
            .run(&keyed_trace(500), ExecutorConfig::default(), |_| {
                forward_plan()
            })
            .unwrap();
        assert_eq!(outcome.results_count, 500);
        assert_eq!(outcome.results.len(), 500);
        assert_eq!(outcome.snapshot.stats.tuples_arrived, 500);
        let per_shard_total: u64 = outcome.per_shard.iter().map(|s| s.arrivals).sum();
        assert_eq!(per_shard_total, 500);
        assert_eq!(outcome.order_violations, 0);
        // The merged stream is globally timestamp-ordered.
        assert!(outcome.results.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        // With 500 distinct keys over 4 shards, no shard should dominate.
        assert!(outcome.max_shard_load() < 0.5);
    }

    #[test]
    fn tiny_channel_exerts_backpressure_without_loss() {
        // channel_capacity 1 and batch_size 1: the feeder blocks constantly,
        // yet every arrival must still come through exactly once.
        let runtime = ShardedRuntime::new(
            RuntimeConfig::with_shards(2)
                .with_batch_size(1)
                .with_channel_capacity(1),
        );
        let outcome = runtime
            .run(&keyed_trace(300), ExecutorConfig::default(), |_| {
                forward_plan()
            })
            .unwrap();
        assert_eq!(outcome.results_count, 300);
    }

    #[test]
    fn single_shard_degenerates_to_sequential() {
        let runtime = ShardedRuntime::new(RuntimeConfig::with_shards(1));
        let outcome = runtime
            .run(&keyed_trace(50), ExecutorConfig::default(), |_| {
                forward_plan()
            })
            .unwrap();
        assert_eq!(outcome.per_shard.len(), 1);
        assert_eq!(outcome.per_shard[0].arrivals, 50);
        assert_eq!(outcome.results_count, 50);
    }

    #[test]
    fn plan_error_is_propagated() {
        let runtime = ShardedRuntime::new(RuntimeConfig::with_shards(2));
        let result = runtime.run(&keyed_trace(100), ExecutorConfig::default(), |shard| {
            if shard == 1 {
                PlanBuilder::new().build() // empty plan → error
            } else {
                forward_plan()
            }
        });
        assert!(matches!(result, Err(RuntimeError::Plan(_))));
    }

    #[test]
    fn results_collection_can_be_disabled() {
        let runtime = ShardedRuntime::new(RuntimeConfig::with_shards(2));
        let outcome = runtime
            .run(
                &keyed_trace(80),
                ExecutorConfig {
                    collect_results: false,
                    check_temporal_order: true,
                },
                |_| forward_plan(),
            )
            .unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.results_count, 80);
    }

    #[test]
    fn partitioner_mismatch_panics() {
        let result = std::panic::catch_unwind(|| {
            ShardedRuntime::new(RuntimeConfig::with_shards(2))
                .with_partitioner(ShardPartitioner::new(3))
        });
        assert!(result.is_err());
    }
}
