//! Timestamp-ordered k-way merge of per-shard result streams.
//!
//! Every shard's sink emits results in non-decreasing timestamp order (the
//! paper's temporal-order requirement holds per executor, Section II). The
//! merged global stream preserves that guarantee by always releasing the
//! smallest timestamp among the shard heads; ties break by shard index and
//! then by within-shard position, so the merge is fully deterministic.
//!
//! The implementation merges *run frontiers* rather than single tuples:
//! once a shard owns the minimum, every consecutive element of that shard
//! strictly below the other shards' frontier (ties resolved by shard index)
//! is copied in one run. Shard outputs interleave at batch granularity, so
//! the cross-shard comparison cost is O(runs · shards), not
//! O(tuples · log shards) — the per-tuple heap was the merge bottleneck
//! once indexed states made per-shard compute cheap.

use jit_types::Tuple;

/// Merge per-shard, individually timestamp-ordered result vectors into one
/// globally timestamp-ordered vector.
///
/// If an input stream is locally out of order (single-threaded JIT can
/// re-emit a suppressed result late — a documented deviation), the merge
/// degrades gracefully: it still interleaves by the head timestamps but
/// cannot repair the inversions it is handed.
pub fn merge_by_timestamp(streams: &[Vec<Tuple>]) -> Vec<Tuple> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    // Next unreleased position per shard.
    let mut pos = vec![0usize; streams.len()];
    loop {
        // The shard owning the global minimum (timestamp, shard).
        let next = streams
            .iter()
            .enumerate()
            .filter_map(|(shard, s)| s.get(pos[shard]).map(|t| (t.ts(), shard)))
            .min();
        let Some((_, shard)) = next else { break };
        // The earliest head among the *other* shards bounds the run.
        let frontier = streams
            .iter()
            .enumerate()
            .filter(|&(other, _)| other != shard)
            .filter_map(|(other, s)| s.get(pos[other]).map(|t| (t.ts(), other)))
            .min();
        // Release the run: element i goes before every other shard's head
        // iff its timestamp is strictly smaller, or tied with a
        // higher-indexed shard — exactly the per-tuple (timestamp, shard,
        // position) order of the old heap merge.
        let stream = &streams[shard];
        let run_end = match frontier {
            None => stream.len(),
            Some((fts, fshard)) => {
                let mut end = pos[shard];
                while stream
                    .get(end)
                    .is_some_and(|t| t.ts() < fts || (t.ts() == fts && shard < fshard))
                {
                    end += 1;
                }
                // The run owner held the global minimum, so at least one
                // element is always released: progress is guaranteed.
                end.max(pos[shard] + 1)
            }
        };
        merged.extend_from_slice(&stream[pos[shard]..run_end]);
        pos[shard] = run_end;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, SourceId, Timestamp, Value};
    use std::sync::Arc;

    fn tup(seq: u64, ts_ms: u64) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            seq,
            Timestamp::from_millis(ts_ms),
            vec![Value::int(seq as i64)],
        )))
    }

    #[test]
    fn interleaves_by_timestamp() {
        let merged = merge_by_timestamp(&[
            vec![tup(0, 10), tup(1, 40), tup(2, 50)],
            vec![tup(3, 20), tup(4, 30)],
            vec![],
            vec![tup(5, 25)],
        ]);
        let times: Vec<u64> = merged.iter().map(|t| t.ts().as_millis()).collect();
        assert_eq!(times, vec![10, 20, 25, 30, 40, 50]);
    }

    #[test]
    fn ties_break_by_shard_then_position() {
        let merged = merge_by_timestamp(&[vec![tup(10, 5), tup(11, 5)], vec![tup(20, 5)]]);
        let seqs: Vec<u64> = merged.iter().map(|t| t.parts()[0].seq).collect();
        assert_eq!(seqs, vec![10, 11, 20]);
    }

    #[test]
    fn empty_and_single_stream() {
        assert!(merge_by_timestamp(&[]).is_empty());
        assert!(merge_by_timestamp(&[vec![], vec![]]).is_empty());
        let single = merge_by_timestamp(&[vec![tup(0, 1), tup(1, 2)]]);
        assert_eq!(single.len(), 2);
    }

    #[test]
    fn large_merge_is_ordered() {
        let streams: Vec<Vec<Tuple>> = (0..7)
            .map(|shard| {
                (0..100)
                    .map(|i| tup(shard * 100 + i, i * 7 + shard * 3))
                    .collect()
            })
            .collect();
        let merged = merge_by_timestamp(&streams);
        assert_eq!(merged.len(), 700);
        assert!(merged.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }
}
