//! Timestamp-ordered k-way merge of per-shard result streams.
//!
//! Every shard's sink emits results in non-decreasing timestamp order (the
//! paper's temporal-order requirement holds per executor, Section II). The
//! merged global stream preserves that guarantee by always releasing the
//! smallest timestamp among the shard heads; ties break by shard index and
//! then by within-shard position, so the merge is fully deterministic.

use jit_types::{Timestamp, Tuple};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merge per-shard, individually timestamp-ordered result vectors into one
/// globally timestamp-ordered vector.
///
/// If an input stream is locally out of order (single-threaded JIT can
/// re-emit a suppressed result late — a documented deviation), the merge
/// degrades gracefully: it still interleaves by the head timestamps but
/// cannot repair the inversions it is handed.
pub fn merge_by_timestamp(streams: &[Vec<Tuple>]) -> Vec<Tuple> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    // Heap of (next timestamp, shard index, position within the shard).
    let mut heap: BinaryHeap<Reverse<(Timestamp, usize, usize)>> = streams
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(shard, s)| Reverse((s[0].ts(), shard, 0)))
        .collect();
    while let Some(Reverse((_, shard, pos))) = heap.pop() {
        merged.push(streams[shard][pos].clone());
        if let Some(next) = streams[shard].get(pos + 1) {
            heap.push(Reverse((next.ts(), shard, pos + 1)));
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, SourceId, Timestamp, Value};
    use std::sync::Arc;

    fn tup(seq: u64, ts_ms: u64) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            seq,
            Timestamp::from_millis(ts_ms),
            vec![Value::int(seq as i64)],
        )))
    }

    #[test]
    fn interleaves_by_timestamp() {
        let merged = merge_by_timestamp(&[
            vec![tup(0, 10), tup(1, 40), tup(2, 50)],
            vec![tup(3, 20), tup(4, 30)],
            vec![],
            vec![tup(5, 25)],
        ]);
        let times: Vec<u64> = merged.iter().map(|t| t.ts().as_millis()).collect();
        assert_eq!(times, vec![10, 20, 25, 30, 40, 50]);
    }

    #[test]
    fn ties_break_by_shard_then_position() {
        let merged = merge_by_timestamp(&[vec![tup(10, 5), tup(11, 5)], vec![tup(20, 5)]]);
        let seqs: Vec<u64> = merged.iter().map(|t| t.parts()[0].seq).collect();
        assert_eq!(seqs, vec![10, 11, 20]);
    }

    #[test]
    fn empty_and_single_stream() {
        assert!(merge_by_timestamp(&[]).is_empty());
        assert!(merge_by_timestamp(&[vec![], vec![]]).is_empty());
        let single = merge_by_timestamp(&[vec![tup(0, 1), tup(1, 2)]]);
        assert_eq!(single.len(), 2);
    }

    #[test]
    fn large_merge_is_ordered() {
        let streams: Vec<Vec<Tuple>> = (0..7)
            .map(|shard| {
                (0..100)
                    .map(|i| tup(shard * 100 + i, i * 7 + shard * 3))
                    .collect()
            })
            .collect();
        let merged = merge_by_timestamp(&streams);
        assert_eq!(merged.len(), 700);
        assert!(merged.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }
}
