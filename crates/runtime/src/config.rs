//! Runtime configuration knobs.

/// Configuration of the sharded parallel runtime.
///
/// * `shards` — number of independent executors (one OS thread each). The
///   join-key space is hash-partitioned over them.
/// * `batch_size` — arrivals per ingestion batch. The feeder groups
///   consecutive same-shard arrivals into batches before sending, amortising
///   channel synchronisation over many tuples.
/// * `channel_capacity` — bound (in batches) of each shard's ingestion
///   channel. A full channel blocks the feeder (backpressure) instead of
///   queueing unboundedly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of shards / worker threads (≥ 1).
    pub shards: usize,
    /// Arrivals per ingestion batch (≥ 1).
    pub batch_size: usize,
    /// Per-shard channel bound, in batches (≥ 1).
    pub channel_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_size: 64,
            channel_capacity: 32,
        }
    }
}

impl RuntimeConfig {
    /// A configuration with the given shard count and default batching.
    pub fn with_shards(shards: usize) -> Self {
        RuntimeConfig {
            shards,
            ..RuntimeConfig::default()
        }
    }

    /// Set the ingestion batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Set the per-shard channel bound (in batches).
    pub fn with_channel_capacity(mut self, channel_capacity: usize) -> Self {
        self.channel_capacity = channel_capacity;
        self
    }

    /// Clamp every knob to its minimum legal value.
    pub fn normalized(mut self) -> Self {
        self.shards = self.shards.max(1);
        self.batch_size = self.batch_size.max(1);
        self.channel_capacity = self.channel_capacity.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_parallel_and_legal() {
        let config = RuntimeConfig::default();
        assert!(config.shards >= 1);
        assert!(config.batch_size >= 1);
        assert!(config.channel_capacity >= 1);
    }

    #[test]
    fn builders_and_normalization() {
        let config = RuntimeConfig::with_shards(4)
            .with_batch_size(0)
            .with_channel_capacity(0)
            .normalized();
        assert_eq!(config.shards, 4);
        assert_eq!(config.batch_size, 1);
        assert_eq!(config.channel_capacity, 1);
        assert_eq!(
            RuntimeConfig {
                shards: 0,
                batch_size: 7,
                channel_capacity: 9
            }
            .normalized()
            .shards,
            1
        );
    }
}
