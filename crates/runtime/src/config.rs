//! Runtime configuration knobs.

use std::fmt;

/// A runtime configuration knob set to an illegal value.
///
/// Produced by [`RuntimeConfig::validate`]; the engine layer surfaces this
/// as a typed build-time error instead of silently clamping (which
/// [`RuntimeConfig::normalized`] still does for callers that prefer it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the offending knob (`"shards"`, `"batch_size"`,
    /// `"channel_capacity"`).
    pub field: &'static str,
    /// The rejected value.
    pub value: usize,
    /// The smallest legal value.
    pub min: usize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "runtime config: `{}` must be >= {} (got {})",
            self.field, self.min, self.value
        )
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the sharded parallel runtime.
///
/// * `shards` — number of independent executors (one OS thread each). The
///   join-key space is hash-partitioned over them.
/// * `batch_size` — arrivals per ingestion batch. The feeder groups
///   consecutive same-shard arrivals into batches before sending, amortising
///   channel synchronisation over many tuples.
/// * `channel_capacity` — bound (in batches) of each shard's ingestion
///   channel. A full channel blocks the feeder (backpressure) instead of
///   queueing unboundedly.
/// * `vectorize` — run each ingestion batch through the columnar block
///   path (`Executor::ingest_block`) instead of tuple-at-a-time. Results
///   and workload counters are identical either way; the engine layer
///   turns this on when a batching [`jit_types::BatchPolicy`] is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of shards / worker threads (≥ 1).
    pub shards: usize,
    /// Arrivals per ingestion batch (≥ 1).
    pub batch_size: usize,
    /// Per-shard channel bound, in batches (≥ 1).
    pub channel_capacity: usize,
    /// Ingest each batch through the columnar block path.
    pub vectorize: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_size: 64,
            channel_capacity: 32,
            vectorize: false,
        }
    }
}

impl RuntimeConfig {
    /// A configuration with the given shard count and default batching.
    pub fn with_shards(shards: usize) -> Self {
        RuntimeConfig {
            shards,
            ..RuntimeConfig::default()
        }
    }

    /// Set the ingestion batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Set the per-shard channel bound (in batches).
    pub fn with_channel_capacity(mut self, channel_capacity: usize) -> Self {
        self.channel_capacity = channel_capacity;
        self
    }

    /// Enable or disable the columnar block ingestion path.
    pub fn with_vectorize(mut self, vectorize: bool) -> Self {
        self.vectorize = vectorize;
        self
    }

    /// Clamp every knob to its minimum legal value.
    pub fn normalized(mut self) -> Self {
        self.shards = self.shards.max(1);
        self.batch_size = self.batch_size.max(1);
        self.channel_capacity = self.channel_capacity.max(1);
        self
    }

    /// Check every knob, returning a typed error naming the first illegal
    /// one (every knob must be ≥ 1) instead of clamping it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let check = |field: &'static str, value: usize| {
            if value < 1 {
                Err(ConfigError {
                    field,
                    value,
                    min: 1,
                })
            } else {
                Ok(())
            }
        };
        check("shards", self.shards)?;
        check("batch_size", self.batch_size)?;
        check("channel_capacity", self.channel_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_parallel_and_legal() {
        let config = RuntimeConfig::default();
        assert!(config.shards >= 1);
        assert!(config.batch_size >= 1);
        assert!(config.channel_capacity >= 1);
    }

    #[test]
    fn builders_and_normalization() {
        let config = RuntimeConfig::with_shards(4)
            .with_batch_size(0)
            .with_channel_capacity(0)
            .normalized();
        assert_eq!(config.shards, 4);
        assert_eq!(config.batch_size, 1);
        assert_eq!(config.channel_capacity, 1);
        assert_eq!(
            RuntimeConfig {
                shards: 0,
                batch_size: 7,
                channel_capacity: 9,
                vectorize: false,
            }
            .normalized()
            .shards,
            1
        );
        assert!(RuntimeConfig::with_shards(2).with_vectorize(true).vectorize);
    }
}
