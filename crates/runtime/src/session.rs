//! Push-based sharded execution: long-lived worker threads fed one arrival
//! at a time.
//!
//! [`ShardedSession`] is the online counterpart of the one-shot
//! [`ShardedRuntime::run`]: the workers are spawned up front (each with its
//! own plan instance, built on the caller's thread and *moved* to the
//! worker), and the caller then pushes arrivals incrementally. Ingestion
//! keeps the PR-1 batching/backpressure semantics — arrivals are grouped
//! into `batch_size` batches per shard and sent over a *bounded* channel, so
//! a slow shard blocks the pusher instead of queueing unboundedly.
//!
//! Two things flow back while the session runs:
//!
//! * **Results.** After every batch a worker drains its executor's collected
//!   results and ships them to the session. [`ShardedSession::poll_results`]
//!   releases them in globally merged timestamp order under a *watermark*:
//!   a result is released only once every shard is known to have processed
//!   past its timestamp, so the concatenation of all polls (plus the final
//!   outcome) replays exactly the k-way merge a one-shot run would produce.
//!   How many results each individual poll returns depends on worker timing;
//!   the order and the overall set do not.
//! * **Metrics.** Each batch also carries a point-in-time
//!   [`MetricsSnapshot`]; [`ShardedSession::metrics_snapshot`] aggregates
//!   the latest one per shard, giving a live view of cost and memory.
//!
//! [`ShardedSession::finish`] flushes pending batches, closes the channels
//! (each worker then runs the end-of-stream flush of `Executor::finish`),
//! joins the workers and returns the same [`ParallelOutcome`] as the
//! one-shot path — minus any results already handed out through
//! `poll_results`, which are never duplicated.

use crate::merge::merge_by_timestamp;
use crate::sharded::{panic_message, ParallelOutcome, RuntimeError, ShardOutcome, ShardedRuntime};
use jit_exec::executor::{Executor, ExecutorConfig};
use jit_exec::plan::{ExecutablePlan, PlanError};
use jit_metrics::MetricsSnapshot;
use jit_stream::arrival::ArrivalEvent;
use jit_stream::{ShardPartitioner, Trace};
use jit_types::{Timestamp, Tuple};
use serde::{Content, Serialize};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// One instruction to a shard worker. Every message is acknowledged with
/// exactly one [`ShardChunk`], so `batches_sent == chunks_seen` remains the
/// caught-up test for all message kinds.
enum WorkerMsg {
    /// Ingest these arrivals.
    Batch(Vec<ArrivalEvent>),
    /// Advance the executor's watermark clock (expiry runs here when the
    /// session was started with the watermark clock enabled).
    Watermark(Timestamp),
    /// Reply with a serialised snapshot of the executor's full state.
    Checkpoint,
}

/// What a worker reports back after handling one message.
struct ShardChunk {
    shard: usize,
    /// Results collected at this shard's sink since the previous chunk.
    results: Vec<Tuple>,
    /// The shard has processed every arrival up to (and including) this
    /// application time.
    processed_through: Timestamp,
    /// Point-in-time metrics of the shard's executor.
    snapshot: MetricsSnapshot,
    /// Serialised executor state; present only in reply to
    /// [`WorkerMsg::Checkpoint`].
    state: Option<Content>,
}

impl ShardedRuntime {
    /// Spawn the shard workers and return a push-based [`ShardedSession`].
    ///
    /// `plan_factory` is called once per shard *on the calling thread* (plan
    /// errors surface here, before any thread exists); each fresh plan
    /// instance is then moved onto its worker thread — operators are
    /// stateful, so shards never share one.
    pub fn start<F>(
        &self,
        exec_config: ExecutorConfig,
        plan_factory: F,
    ) -> Result<ShardedSession, RuntimeError>
    where
        F: FnMut(usize) -> Result<ExecutablePlan, PlanError>,
    {
        self.start_opts(exec_config, false, plan_factory)
    }

    /// [`ShardedRuntime::start`] with the executors' *watermark clock*
    /// enabled or disabled. Under the watermark clock, ingestion does not
    /// advance operator time — the caller drives expiry explicitly through
    /// [`ShardedSession::advance_watermark`] (the disorder-tolerant engine
    /// path does this after each reorder-buffer release).
    pub fn start_opts<F>(
        &self,
        exec_config: ExecutorConfig,
        watermark_clock: bool,
        mut plan_factory: F,
    ) -> Result<ShardedSession, RuntimeError>
    where
        F: FnMut(usize) -> Result<ExecutablePlan, PlanError>,
    {
        let shards = self.config().shards;
        let mut executors = Vec::with_capacity(shards);
        for shard in 0..shards {
            let mut executor = Executor::new(plan_factory(shard)?, exec_config.clone());
            executor.set_watermark_clock(watermark_clock);
            executors.push(executor);
        }
        Ok(self.launch(executors))
    }

    /// Rebuild a session from a [`ShardedSession::checkpoint`] blob.
    ///
    /// `plan_factory` must produce the same per-shard plans the
    /// checkpointed session ran (restore replays serialised operator state
    /// into freshly built plans; a mismatch in shard count or operator
    /// layout is a typed [`RuntimeError::Restore`], never silent
    /// corruption). Executors are built and restored *on the calling
    /// thread*, so every restore error surfaces here before any worker
    /// thread exists.
    pub fn start_restored<F>(
        &self,
        exec_config: ExecutorConfig,
        watermark_clock: bool,
        checkpoint: &Content,
        mut plan_factory: F,
    ) -> Result<ShardedSession, RuntimeError>
    where
        F: FnMut(usize) -> Result<ExecutablePlan, PlanError>,
    {
        const TY: &str = "ShardedSession checkpoint";
        let restore_err = |e: serde::Error| RuntimeError::Restore(e.to_string());
        let map = checkpoint
            .as_map()
            .ok_or_else(|| RuntimeError::Restore("checkpoint body is not an object".to_string()))?;
        let shards: u64 = serde::field(map, "shards", TY).map_err(restore_err)?;
        if shards as usize != self.config().shards {
            return Err(RuntimeError::Restore(format!(
                "checkpoint holds {shards} shards, runtime is configured for {}",
                self.config().shards
            )));
        }
        let shards = shards as usize;
        let states = serde::field::<Content>(map, "states", TY).map_err(restore_err)?;
        let states = states.as_seq_n(shards, TY).map_err(restore_err)?;
        let buffered: Vec<Vec<Tuple>> = serde::field(map, "buffered", TY).map_err(restore_err)?;
        let progress: Vec<Timestamp> = serde::field(map, "progress", TY).map_err(restore_err)?;
        let last_push_ts: Timestamp = serde::field(map, "last_push_ts", TY).map_err(restore_err)?;
        if buffered.len() != shards || progress.len() != shards {
            return Err(RuntimeError::Restore(format!(
                "checkpoint carries {} buffered streams / {} progress marks for {shards} shards",
                buffered.len(),
                progress.len()
            )));
        }
        let mut executors = Vec::with_capacity(shards);
        for (shard, state) in states.iter().enumerate() {
            let mut executor = Executor::new(plan_factory(shard)?, exec_config.clone());
            executor.set_watermark_clock(watermark_clock);
            executor
                .restore_checkpoint(state)
                .map_err(|e| RuntimeError::Restore(format!("shard {shard}: {e}")))?;
            executors.push(executor);
        }
        let mut session = self.launch(executors);
        session.buffered = buffered.into_iter().map(VecDeque::from).collect();
        session.progress = progress;
        session.last_push_ts = last_push_ts;
        Ok(session)
    }

    /// Move the prepared executors onto their worker threads.
    fn launch(&self, executors: Vec<Executor>) -> ShardedSession {
        let shards = executors.len();
        let vectorize = self.config().vectorize;
        let (chunk_tx, chunk_rx) = mpsc::channel::<ShardChunk>();
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, mut executor) in executors.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(self.config().channel_capacity);
            let chunk_tx = chunk_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("jit-shard-{shard}"))
                .spawn(move || {
                    let mut arrivals = 0u64;
                    // Columnar assembly happens here, on the shard thread:
                    // the pusher ships raw arrival chunks and each worker
                    // pays its own column-building pass in parallel.
                    let mut block_builder = jit_types::BlockBuilder::new();
                    while let Ok(msg) = rx.recv() {
                        // One chunk per message: progress for the watermark,
                        // drained results, and a point-in-time snapshot.
                        // The snapshot is a handful of scalar reads —
                        // measured noise next to ingesting a batch — and
                        // the channel holds at most one small chunk header
                        // per batch beyond the results the executor would
                        // otherwise have buffered itself. A send error
                        // means the session stopped listening; results
                        // still reach it through the join below.
                        let state = match msg {
                            WorkerMsg::Batch(batch) => {
                                arrivals += batch.len() as u64;
                                if vectorize {
                                    for event in batch {
                                        block_builder.push(event.source, event.tuple);
                                    }
                                    executor.ingest_block(&block_builder.finish());
                                } else {
                                    for event in batch {
                                        executor.ingest(event.source, event.tuple);
                                    }
                                }
                                None
                            }
                            WorkerMsg::Watermark(w) => {
                                executor.advance_watermark(w);
                                None
                            }
                            WorkerMsg::Checkpoint => Some(executor.checkpoint()),
                        };
                        let _ = chunk_tx.send(ShardChunk {
                            shard,
                            results: executor.take_results(),
                            processed_through: executor.current_time(),
                            snapshot: executor.metrics().snapshot(),
                            state,
                        });
                    }
                    let results_count = executor.results_count();
                    let order_violations = executor.order_violations();
                    let (results, snapshot) = executor.finish();
                    ShardOutcome {
                        shard,
                        arrivals,
                        results,
                        results_count,
                        order_violations,
                        snapshot,
                    }
                })
                // INVARIANT: thread spawn fails only on resource exhaustion at
                // session startup — there is no meaningful recovery path.
                .expect("spawning a shard worker thread");
            senders.push(Some(tx));
            workers.push(Some(handle));
        }
        drop(chunk_tx); // the receiver disconnects once every worker exits
        ShardedSession {
            partitioner: self.partitioner().clone(),
            batch_size: self.config().batch_size,
            senders,
            pending: vec![Vec::new(); shards],
            chunks: chunk_rx,
            workers,
            buffered: vec![VecDeque::new(); shards],
            progress: vec![Timestamp::ZERO; shards],
            batches_sent: vec![0; shards],
            chunks_seen: vec![0; shards],
            latest: vec![MetricsSnapshot::zero(); shards],
            last_push_ts: Timestamp::ZERO,
        }
    }
}

/// A live sharded execution accepting arrivals one at a time.
///
/// Created by [`ShardedRuntime::start`]; see the module docs for the
/// streaming-result and watermark semantics.
pub struct ShardedSession {
    partitioner: ShardPartitioner,
    batch_size: usize,
    senders: Vec<Option<mpsc::SyncSender<WorkerMsg>>>,
    pending: Vec<Vec<ArrivalEvent>>,
    chunks: mpsc::Receiver<ShardChunk>,
    workers: Vec<Option<JoinHandle<ShardOutcome>>>,
    /// Results received from each shard but not yet released by a poll.
    buffered: Vec<VecDeque<Tuple>>,
    /// Application time each shard has confirmed processing through.
    progress: Vec<Timestamp>,
    batches_sent: Vec<u64>,
    chunks_seen: Vec<u64>,
    /// Most recent point-in-time snapshot per shard.
    latest: Vec<MetricsSnapshot>,
    last_push_ts: Timestamp,
}

impl std::fmt::Debug for ShardedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSession")
            .field("shards", &self.workers.len())
            .field("batch_size", &self.batch_size)
            .field("last_push_ts", &self.last_push_ts)
            .finish()
    }
}

impl ShardedSession {
    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// Route one arrival to its shard.
    ///
    /// Arrivals must be pushed in non-decreasing timestamp order (the same
    /// contract as `Executor::ingest`). The send blocks when the shard's
    /// bounded channel is full — backpressure, exactly as in the one-shot
    /// feeder loop.
    pub fn push(&mut self, event: ArrivalEvent) {
        self.last_push_ts = self.last_push_ts.max(event.ts);
        let shard = self.partitioner.shard_of(&event.tuple);
        self.pending[shard].push(event);
        if self.pending[shard].len() >= self.batch_size {
            self.dispatch(shard);
        }
    }

    /// Push a sequence of arrivals (in timestamp order).
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = ArrivalEvent>) {
        for event in events {
            self.push(event);
        }
    }

    /// Replay a whole trace through the session.
    pub fn push_trace(&mut self, trace: &Trace) {
        self.push_batch(trace.iter().cloned());
    }

    /// Send shard `shard`'s pending batch. A send failure means the worker
    /// died early (it panicked); the panic surfaces at [`Self::finish`].
    fn dispatch(&mut self, shard: usize) {
        let batch = std::mem::take(&mut self.pending[shard]);
        if batch.is_empty() {
            return;
        }
        self.send(shard, WorkerMsg::Batch(batch));
    }

    /// Send one message to shard `shard`, maintaining the
    /// one-chunk-per-message accounting.
    fn send(&mut self, shard: usize, msg: WorkerMsg) {
        if let Some(tx) = &self.senders[shard] {
            if tx.send(msg).is_err() {
                self.senders[shard] = None;
            } else {
                self.batches_sent[shard] += 1;
            }
        }
    }

    /// Record one chunk's results, progress and metrics; returns the
    /// serialised state when the chunk answers a checkpoint marker.
    fn absorb(&mut self, chunk: ShardChunk) -> Option<(usize, Content)> {
        self.buffered[chunk.shard].extend(chunk.results);
        self.progress[chunk.shard] = self.progress[chunk.shard].max(chunk.processed_through);
        self.latest[chunk.shard] = chunk.snapshot;
        self.chunks_seen[chunk.shard] += 1;
        chunk.state.map(|state| (chunk.shard, state))
    }

    /// Absorb every chunk the workers have reported so far.
    fn drain_chunks(&mut self) {
        while let Ok(chunk) = self.chunks.try_recv() {
            self.absorb(chunk);
        }
    }

    /// The timestamp below which every shard's output is complete. A shard
    /// that is fully caught up (no pending batch, every sent batch acked)
    /// is credited with the session-wide push time: any arrival it receives
    /// later must carry a larger timestamp, so it can no longer produce an
    /// earlier result (JIT's documented late re-emissions excepted — those
    /// pass through a poll exactly as they pass through the k-way merge).
    fn watermark(&self) -> Timestamp {
        let mut watermark = None::<Timestamp>;
        for shard in 0..self.workers.len() {
            let caught_up = self.pending[shard].is_empty()
                && self.batches_sent[shard] == self.chunks_seen[shard];
            let progress = if caught_up {
                self.progress[shard].max(self.last_push_ts)
            } else {
                self.progress[shard]
            };
            watermark = Some(watermark.map_or(progress, |w| w.min(progress)));
        }
        watermark.unwrap_or(Timestamp::ZERO)
    }

    /// Release every result that is safe to emit in global timestamp order.
    ///
    /// Returns the newly released results (empty when `collect_results` is
    /// off or nothing has been confirmed past the watermark yet). Across the
    /// lifetime of the session, the concatenation of all polls followed by
    /// the final outcome's results is the same merged stream a one-shot
    /// [`ShardedRuntime::run`] produces.
    ///
    /// Release is *strictly below* the watermark: pushes at exactly the
    /// watermark timestamp are still legal (the contract is non-decreasing,
    /// not increasing), and releasing a tied result early would invert the
    /// merge's deterministic (timestamp, shard) tie-break against a
    /// same-timestamp result a lower shard produces later. Tied results
    /// are released together once the watermark moves past them (or by
    /// [`Self::finish`]).
    pub fn poll_results(&mut self) -> Vec<Tuple> {
        self.drain_chunks();
        let watermark = self.watermark();
        let mut released = Vec::new();
        loop {
            // Smallest (front timestamp, shard) among the shard buffers —
            // the same tie-break as `merge_by_timestamp`.
            let next = self
                .buffered
                .iter()
                .enumerate()
                .filter_map(|(shard, buf)| buf.front().map(|t| (t.ts(), shard)))
                .min();
            let Some((ts, shard)) = next else { break };
            if ts >= watermark {
                break;
            }
            // Batch-frontier run release: the other shards' fronts cannot
            // change while we pop from `shard`, so every element strictly
            // below that frontier (or tied against a higher shard) leaves
            // in one run — the merge scans per *run*, not per tuple, which
            // reproduces the per-tuple `(timestamp, shard)` order exactly.
            let frontier = self
                .buffered
                .iter()
                .enumerate()
                .filter(|&(other, _)| other != shard)
                .filter_map(|(other, buf)| buf.front().map(|t| (t.ts(), other)))
                .min();
            loop {
                // INVARIANT: `next` proved this shard's front exists, and only
                // this loop pops from it.
                released.push(self.buffered[shard].pop_front().expect("front exists"));
                let keep_going = self.buffered[shard].front().is_some_and(|t| {
                    t.ts() < watermark
                        && frontier.is_none_or(|(fts, fshard)| {
                            t.ts() < fts || (t.ts() == fts && shard < fshard)
                        })
                });
                if !keep_going {
                    break;
                }
            }
        }
        released
    }

    /// Broadcast a watermark to every shard.
    ///
    /// Pending batches are dispatched first, so each executor processes
    /// every arrival already pushed *before* it purges state at `w` — the
    /// same push-then-advance ordering `Executor::advance_watermark`
    /// documents. Under the watermark clock this is what drives expiry;
    /// without it the call still advances the session's progress floor.
    pub fn advance_watermark(&mut self, w: Timestamp) {
        self.last_push_ts = self.last_push_ts.max(w);
        for shard in 0..self.workers.len() {
            self.dispatch(shard);
            self.send(shard, WorkerMsg::Watermark(w));
        }
    }

    /// Take a consistent snapshot of the whole sharded execution.
    ///
    /// Dispatches anything pending, sends a checkpoint marker down every
    /// shard channel, and blocks until each shard has acknowledged every
    /// message up to and including the marker. Per-shard FIFO ordering makes
    /// the set of replies a consistent cut: every shard's state reflects
    /// exactly the arrivals and watermarks sent before this call, and the
    /// session's own buffers cover everything those executors emitted.
    ///
    /// The returned blob (shard states plus the session's unpolled results,
    /// progress marks and push frontier) feeds
    /// [`ShardedRuntime::start_restored`].
    pub fn checkpoint(&mut self) -> Result<Content, RuntimeError> {
        let shards = self.workers.len();
        let mut states: Vec<Option<Content>> = Vec::new();
        states.resize_with(shards, || None);
        for shard in 0..shards {
            self.dispatch(shard);
            self.send(shard, WorkerMsg::Checkpoint);
            if self.senders[shard].is_none() {
                return Err(RuntimeError::Restore(format!(
                    "shard {shard} is no longer running; cannot checkpoint"
                )));
            }
        }
        while states.iter().any(|s| s.is_none()) {
            let chunk = self.chunks.recv().map_err(|_| {
                RuntimeError::Restore("a shard worker exited during checkpoint".to_string())
            })?;
            if let Some((shard, state)) = self.absorb(chunk) {
                states[shard] = Some(state);
            }
        }
        // INVARIANT: the checkpoint barrier above collected exactly one
        // state chunk per shard.
        let states: Vec<Content> = states.into_iter().map(|s| s.expect("barrier")).collect();
        let buffered: Vec<Vec<Tuple>> = self
            .buffered
            .iter()
            .map(|b| b.iter().cloned().collect())
            .collect();
        Ok(Content::Map(vec![
            ("shards".to_string(), Content::U64(shards as u64)),
            ("states".to_string(), Content::Seq(states)),
            ("buffered".to_string(), buffered.to_content()),
            ("progress".to_string(), self.progress.to_content()),
            ("last_push_ts".to_string(), self.last_push_ts.to_content()),
        ]))
    }

    /// A live aggregate of the workers' most recently reported metrics
    /// (counters and cost summed, wall-clock maxed, memory summed — the
    /// same rules as the final [`ParallelOutcome::snapshot`]). Shards that
    /// have not completed a batch yet contribute zeros.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        self.drain_chunks();
        MetricsSnapshot::aggregate_parallel(self.latest.iter())
    }

    /// Close the session: flush pending batches, end every shard's stream
    /// (which triggers the executor's end-of-stream flush), join the
    /// workers, and merge what remains.
    ///
    /// The returned outcome's `results` (and each `per_shard` stream)
    /// exclude anything already handed out by [`Self::poll_results`]; no
    /// result is ever delivered twice. Counters (`results_count`,
    /// `order_violations`, metrics) always cover the whole run.
    pub fn finish(mut self) -> Result<ParallelOutcome, RuntimeError> {
        for shard in 0..self.workers.len() {
            self.dispatch(shard);
        }
        self.senders.clear(); // close every channel: workers drain and exit
        let joined: Vec<Result<ShardOutcome, RuntimeError>> = self
            .workers
            .iter_mut()
            .enumerate()
            .map(|(shard, handle)| {
                handle
                    .take()
                    // INVARIANT: finish() runs once and is the only taker of worker
                    // handles.
                    .expect("worker joined once")
                    .join()
                    .map_err(|payload| RuntimeError::ShardPanicked {
                        shard,
                        message: panic_message(payload.as_ref()),
                    })
            })
            .collect();
        // Workers have exited, so the chunk channel holds everything ever
        // sent; absorb it before assembling the per-shard streams.
        self.drain_chunks();
        let mut per_shard = Vec::with_capacity(joined.len());
        for outcome in joined {
            per_shard.push(outcome?);
        }
        for outcome in per_shard.iter_mut() {
            // Un-polled streamed results come first (ingest order), then the
            // executor's end-of-stream flush output.
            let mut stream: Vec<Tuple> = std::mem::take(&mut self.buffered[outcome.shard]).into();
            stream.append(&mut outcome.results);
            outcome.results = stream;
        }
        let snapshot = MetricsSnapshot::aggregate_parallel(per_shard.iter().map(|s| &s.snapshot));
        let results_count = per_shard.iter().map(|s| s.results_count).sum();
        let order_violations = per_shard.iter().map(|s| s.order_violations).sum();
        let streams: Vec<Vec<Tuple>> = per_shard
            .iter_mut()
            .map(|s| std::mem::take(&mut s.results))
            .collect();
        let results = merge_by_timestamp(&streams);
        for (shard, stream) in per_shard.iter_mut().zip(streams) {
            shard.results = stream;
        }
        Ok(ParallelOutcome {
            results,
            results_count,
            order_violations,
            snapshot,
            per_shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use jit_exec::operator::{DataMessage, OpContext, Operator, OperatorOutput, Port};
    use jit_exec::plan::{Input, PlanBuilder};
    use jit_types::{BaseTuple, SourceId, SourceSet, Value};
    use std::sync::Arc;

    struct Forward;

    impl Operator for Forward {
        fn name(&self) -> &str {
            "forward"
        }
        fn output_schema(&self) -> SourceSet {
            SourceSet::first_n(1)
        }
        fn num_ports(&self) -> usize {
            1
        }
        fn process(
            &mut self,
            _port: Port,
            msg: &DataMessage,
            _ctx: &mut OpContext<'_>,
        ) -> OperatorOutput {
            OperatorOutput::with_results(vec![msg.clone()])
        }
        fn memory_bytes(&self) -> usize {
            32
        }
    }

    fn forward_plan() -> Result<ExecutablePlan, PlanError> {
        let mut builder = PlanBuilder::new();
        builder.add_operator(Box::new(Forward), vec![Input::Source(SourceId(0))]);
        builder.build()
    }

    fn event(i: u64) -> ArrivalEvent {
        let ts = Timestamp::from_millis(i * 10);
        ArrivalEvent {
            ts,
            source: SourceId(0),
            tuple: Arc::new(BaseTuple::new(
                SourceId(0),
                i,
                ts,
                vec![Value::int(i as i64)],
            )),
        }
    }

    fn session(shards: usize, batch: usize) -> ShardedSession {
        ShardedRuntime::new(RuntimeConfig::with_shards(shards).with_batch_size(batch))
            .start(ExecutorConfig::default(), |_| forward_plan())
            .unwrap()
    }

    #[test]
    fn pushed_session_matches_one_shot_run() {
        let trace = Trace::new((0..300).map(event).collect());
        let runtime = ShardedRuntime::new(RuntimeConfig::with_shards(3).with_batch_size(16));
        let one_shot = runtime
            .run(&trace, ExecutorConfig::default(), |_| forward_plan())
            .unwrap();
        let mut live = runtime
            .start(ExecutorConfig::default(), |_| forward_plan())
            .unwrap();
        live.push_trace(&trace);
        let outcome = live.finish().unwrap();
        assert_eq!(outcome.results_count, one_shot.results_count);
        let keys = |r: &[Tuple]| r.iter().map(|t| t.key()).collect::<Vec<_>>();
        assert_eq!(keys(&outcome.results), keys(&one_shot.results));
    }

    #[test]
    fn polls_release_a_prefix_of_the_merged_stream_exactly_once() {
        let trace = Trace::new((0..400).map(event).collect());
        let mut live = session(4, 8);
        let mut polled = Vec::new();
        for (i, e) in trace.iter().enumerate() {
            live.push(e.clone());
            if i % 97 == 0 {
                polled.extend(live.poll_results());
            }
        }
        let outcome = live.finish().unwrap();
        polled.extend(outcome.results);
        assert_eq!(polled.len(), 400);
        assert!(polled.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        assert_eq!(outcome.results_count, 400);
    }

    #[test]
    fn polled_results_respect_the_watermark_mid_run() {
        let mut live = session(2, 1);
        for i in 0..50 {
            live.push(event(i));
        }
        // Give the workers a moment, then poll: anything released must be
        // globally ordered and complete up to its own horizon.
        let mut seen = Vec::new();
        for _ in 0..100 {
            seen.extend(live.poll_results());
            if seen.len() >= 50 {
                break;
            }
            std::thread::yield_now();
        }
        let outcome = live.finish().unwrap();
        seen.extend(outcome.results);
        assert_eq!(seen.len(), 50);
        assert!(seen.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }

    #[test]
    fn live_metrics_converge_to_the_final_snapshot() {
        let mut live = session(2, 4);
        for i in 0..120 {
            live.push(event(i));
        }
        let mid = live.metrics_snapshot();
        assert!(mid.stats.tuples_arrived <= 120);
        let outcome = live.finish().unwrap();
        assert_eq!(outcome.snapshot.stats.tuples_arrived, 120);
        assert!(mid.cost_units <= outcome.snapshot.cost_units);
    }

    #[test]
    fn checkpoint_restores_mid_stream_and_replays_the_tail() {
        let runtime = ShardedRuntime::new(RuntimeConfig::with_shards(2).with_batch_size(4));
        let mut live = runtime
            .start(ExecutorConfig::default(), |_| forward_plan())
            .unwrap();
        for i in 0..40 {
            live.push(event(i));
        }
        let ckpt = live.checkpoint().unwrap();
        drop(live); // simulated crash: channels close, workers exit
        let mut restored = runtime
            .start_restored(ExecutorConfig::default(), false, &ckpt, |_| forward_plan())
            .unwrap();
        for i in 40..80 {
            restored.push(event(i));
        }
        let outcome = restored.finish().unwrap();
        assert_eq!(outcome.results.len(), 80);
        assert!(outcome.results.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        assert_eq!(outcome.results_count, 80); // counter carried across restore
    }

    #[test]
    fn restore_rejects_a_shard_count_mismatch() {
        let two = ShardedRuntime::new(RuntimeConfig::with_shards(2));
        let mut live = two
            .start(ExecutorConfig::default(), |_| forward_plan())
            .unwrap();
        let ckpt = live.checkpoint().unwrap();
        let three = ShardedRuntime::new(RuntimeConfig::with_shards(3));
        let err = three
            .start_restored(ExecutorConfig::default(), false, &ckpt, |_| forward_plan())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Restore(_)), "{err}");
    }

    #[test]
    fn plan_error_surfaces_before_any_thread_spawns() {
        let runtime = ShardedRuntime::new(RuntimeConfig::with_shards(2));
        let result = runtime.start(ExecutorConfig::default(), |shard| {
            if shard == 1 {
                PlanBuilder::new().build()
            } else {
                forward_plan()
            }
        });
        assert!(matches!(result, Err(RuntimeError::Plan(_))));
    }
}
