//! Push-based sharded execution: long-lived worker threads fed one arrival
//! at a time.
//!
//! [`ShardedSession`] is the online counterpart of the one-shot
//! [`ShardedRuntime::run`]: the workers are spawned up front (each with its
//! own plan instance, built on the caller's thread and *moved* to the
//! worker), and the caller then pushes arrivals incrementally. Ingestion
//! keeps the PR-1 batching/backpressure semantics — arrivals are grouped
//! into `batch_size` batches per shard and sent over a *bounded* channel, so
//! a slow shard blocks the pusher instead of queueing unboundedly.
//!
//! Two things flow back while the session runs:
//!
//! * **Results.** After every batch a worker drains its executor's collected
//!   results and ships them to the session. [`ShardedSession::poll_results`]
//!   releases them in globally merged timestamp order under a *watermark*:
//!   a result is released only once every shard is known to have processed
//!   past its timestamp, so the concatenation of all polls (plus the final
//!   outcome) replays exactly the k-way merge a one-shot run would produce.
//!   How many results each individual poll returns depends on worker timing;
//!   the order and the overall set do not.
//! * **Metrics.** Each batch also carries a point-in-time
//!   [`MetricsSnapshot`]; [`ShardedSession::metrics_snapshot`] aggregates
//!   the latest one per shard, giving a live view of cost and memory.
//!
//! [`ShardedSession::finish`] flushes pending batches, closes the channels
//! (each worker then runs the end-of-stream flush of `Executor::finish`),
//! joins the workers and returns the same [`ParallelOutcome`] as the
//! one-shot path — minus any results already handed out through
//! `poll_results`, which are never duplicated.

use crate::merge::merge_by_timestamp;
use crate::sharded::{panic_message, ParallelOutcome, RuntimeError, ShardOutcome, ShardedRuntime};
use jit_exec::executor::{Executor, ExecutorConfig};
use jit_exec::plan::{ExecutablePlan, PlanError};
use jit_metrics::MetricsSnapshot;
use jit_stream::arrival::ArrivalEvent;
use jit_stream::{ShardPartitioner, Trace};
use jit_types::{Timestamp, Tuple};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// What a worker reports back after ingesting one batch.
struct ShardChunk {
    shard: usize,
    /// Results collected at this shard's sink since the previous chunk.
    results: Vec<Tuple>,
    /// The shard has processed every arrival up to (and including) this
    /// application time.
    processed_through: Timestamp,
    /// Point-in-time metrics of the shard's executor.
    snapshot: MetricsSnapshot,
}

impl ShardedRuntime {
    /// Spawn the shard workers and return a push-based [`ShardedSession`].
    ///
    /// `plan_factory` is called once per shard *on the calling thread* (plan
    /// errors surface here, before any thread exists); each fresh plan
    /// instance is then moved onto its worker thread — operators are
    /// stateful, so shards never share one.
    pub fn start<F>(
        &self,
        exec_config: ExecutorConfig,
        mut plan_factory: F,
    ) -> Result<ShardedSession, RuntimeError>
    where
        F: FnMut(usize) -> Result<ExecutablePlan, PlanError>,
    {
        let shards = self.config().shards;
        let mut plans = Vec::with_capacity(shards);
        for shard in 0..shards {
            plans.push(plan_factory(shard)?);
        }
        let (chunk_tx, chunk_rx) = mpsc::channel::<ShardChunk>();
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, plan) in plans.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<Vec<ArrivalEvent>>(self.config().channel_capacity);
            let chunk_tx = chunk_tx.clone();
            let exec_config = exec_config.clone();
            let handle = std::thread::Builder::new()
                .name(format!("jit-shard-{shard}"))
                .spawn(move || {
                    let mut executor = Executor::new(plan, exec_config);
                    let mut arrivals = 0u64;
                    while let Ok(batch) = rx.recv() {
                        arrivals += batch.len() as u64;
                        for event in batch {
                            executor.ingest(event.source, event.tuple);
                        }
                        // One chunk per batch: progress for the watermark,
                        // drained results, and a point-in-time snapshot.
                        // The snapshot is a handful of scalar reads —
                        // measured noise next to ingesting a batch — and
                        // the channel holds at most one small chunk header
                        // per batch beyond the results the executor would
                        // otherwise have buffered itself. A send error
                        // means the session stopped listening; results
                        // still reach it through the join below.
                        let _ = chunk_tx.send(ShardChunk {
                            shard,
                            results: executor.take_results(),
                            processed_through: executor.current_time(),
                            snapshot: executor.metrics().snapshot(),
                        });
                    }
                    let results_count = executor.results_count();
                    let order_violations = executor.order_violations();
                    let (results, snapshot) = executor.finish();
                    ShardOutcome {
                        shard,
                        arrivals,
                        results,
                        results_count,
                        order_violations,
                        snapshot,
                    }
                })
                .expect("spawning a shard worker thread");
            senders.push(Some(tx));
            workers.push(Some(handle));
        }
        drop(chunk_tx); // the receiver disconnects once every worker exits
        Ok(ShardedSession {
            partitioner: self.partitioner().clone(),
            batch_size: self.config().batch_size,
            senders,
            pending: vec![Vec::new(); shards],
            chunks: chunk_rx,
            workers,
            buffered: vec![VecDeque::new(); shards],
            progress: vec![Timestamp::ZERO; shards],
            batches_sent: vec![0; shards],
            chunks_seen: vec![0; shards],
            latest: vec![MetricsSnapshot::zero(); shards],
            last_push_ts: Timestamp::ZERO,
        })
    }
}

/// A live sharded execution accepting arrivals one at a time.
///
/// Created by [`ShardedRuntime::start`]; see the module docs for the
/// streaming-result and watermark semantics.
pub struct ShardedSession {
    partitioner: ShardPartitioner,
    batch_size: usize,
    senders: Vec<Option<mpsc::SyncSender<Vec<ArrivalEvent>>>>,
    pending: Vec<Vec<ArrivalEvent>>,
    chunks: mpsc::Receiver<ShardChunk>,
    workers: Vec<Option<JoinHandle<ShardOutcome>>>,
    /// Results received from each shard but not yet released by a poll.
    buffered: Vec<VecDeque<Tuple>>,
    /// Application time each shard has confirmed processing through.
    progress: Vec<Timestamp>,
    batches_sent: Vec<u64>,
    chunks_seen: Vec<u64>,
    /// Most recent point-in-time snapshot per shard.
    latest: Vec<MetricsSnapshot>,
    last_push_ts: Timestamp,
}

impl std::fmt::Debug for ShardedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSession")
            .field("shards", &self.workers.len())
            .field("batch_size", &self.batch_size)
            .field("last_push_ts", &self.last_push_ts)
            .finish()
    }
}

impl ShardedSession {
    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// Route one arrival to its shard.
    ///
    /// Arrivals must be pushed in non-decreasing timestamp order (the same
    /// contract as `Executor::ingest`). The send blocks when the shard's
    /// bounded channel is full — backpressure, exactly as in the one-shot
    /// feeder loop.
    pub fn push(&mut self, event: ArrivalEvent) {
        self.last_push_ts = self.last_push_ts.max(event.ts);
        let shard = self.partitioner.shard_of(&event.tuple);
        self.pending[shard].push(event);
        if self.pending[shard].len() >= self.batch_size {
            self.dispatch(shard);
        }
    }

    /// Push a sequence of arrivals (in timestamp order).
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = ArrivalEvent>) {
        for event in events {
            self.push(event);
        }
    }

    /// Replay a whole trace through the session.
    pub fn push_trace(&mut self, trace: &Trace) {
        self.push_batch(trace.iter().cloned());
    }

    /// Send shard `shard`'s pending batch. A send failure means the worker
    /// died early (it panicked); the panic surfaces at [`Self::finish`].
    fn dispatch(&mut self, shard: usize) {
        let batch = std::mem::take(&mut self.pending[shard]);
        if batch.is_empty() {
            return;
        }
        if let Some(tx) = &self.senders[shard] {
            if tx.send(batch).is_err() {
                self.senders[shard] = None;
            } else {
                self.batches_sent[shard] += 1;
            }
        }
    }

    /// Absorb every chunk the workers have reported so far.
    fn drain_chunks(&mut self) {
        while let Ok(chunk) = self.chunks.try_recv() {
            self.buffered[chunk.shard].extend(chunk.results);
            self.progress[chunk.shard] = self.progress[chunk.shard].max(chunk.processed_through);
            self.latest[chunk.shard] = chunk.snapshot;
            self.chunks_seen[chunk.shard] += 1;
        }
    }

    /// The timestamp below which every shard's output is complete. A shard
    /// that is fully caught up (no pending batch, every sent batch acked)
    /// is credited with the session-wide push time: any arrival it receives
    /// later must carry a larger timestamp, so it can no longer produce an
    /// earlier result (JIT's documented late re-emissions excepted — those
    /// pass through a poll exactly as they pass through the k-way merge).
    fn watermark(&self) -> Timestamp {
        let mut watermark = None::<Timestamp>;
        for shard in 0..self.workers.len() {
            let caught_up = self.pending[shard].is_empty()
                && self.batches_sent[shard] == self.chunks_seen[shard];
            let progress = if caught_up {
                self.progress[shard].max(self.last_push_ts)
            } else {
                self.progress[shard]
            };
            watermark = Some(watermark.map_or(progress, |w| w.min(progress)));
        }
        watermark.unwrap_or(Timestamp::ZERO)
    }

    /// Release every result that is safe to emit in global timestamp order.
    ///
    /// Returns the newly released results (empty when `collect_results` is
    /// off or nothing has been confirmed past the watermark yet). Across the
    /// lifetime of the session, the concatenation of all polls followed by
    /// the final outcome's results is the same merged stream a one-shot
    /// [`ShardedRuntime::run`] produces.
    ///
    /// Release is *strictly below* the watermark: pushes at exactly the
    /// watermark timestamp are still legal (the contract is non-decreasing,
    /// not increasing), and releasing a tied result early would invert the
    /// merge's deterministic (timestamp, shard) tie-break against a
    /// same-timestamp result a lower shard produces later. Tied results
    /// are released together once the watermark moves past them (or by
    /// [`Self::finish`]).
    pub fn poll_results(&mut self) -> Vec<Tuple> {
        self.drain_chunks();
        let watermark = self.watermark();
        let mut released = Vec::new();
        loop {
            // Smallest (front timestamp, shard) among the shard buffers —
            // the same tie-break as `merge_by_timestamp`.
            let next = self
                .buffered
                .iter()
                .enumerate()
                .filter_map(|(shard, buf)| buf.front().map(|t| (t.ts(), shard)))
                .min();
            match next {
                Some((ts, shard)) if ts < watermark => {
                    released.push(self.buffered[shard].pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
        released
    }

    /// A live aggregate of the workers' most recently reported metrics
    /// (counters and cost summed, wall-clock maxed, memory summed — the
    /// same rules as the final [`ParallelOutcome::snapshot`]). Shards that
    /// have not completed a batch yet contribute zeros.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        self.drain_chunks();
        MetricsSnapshot::aggregate_parallel(self.latest.iter())
    }

    /// Close the session: flush pending batches, end every shard's stream
    /// (which triggers the executor's end-of-stream flush), join the
    /// workers, and merge what remains.
    ///
    /// The returned outcome's `results` (and each `per_shard` stream)
    /// exclude anything already handed out by [`Self::poll_results`]; no
    /// result is ever delivered twice. Counters (`results_count`,
    /// `order_violations`, metrics) always cover the whole run.
    pub fn finish(mut self) -> Result<ParallelOutcome, RuntimeError> {
        for shard in 0..self.workers.len() {
            self.dispatch(shard);
        }
        self.senders.clear(); // close every channel: workers drain and exit
        let joined: Vec<Result<ShardOutcome, RuntimeError>> = self
            .workers
            .iter_mut()
            .enumerate()
            .map(|(shard, handle)| {
                handle
                    .take()
                    .expect("worker joined once")
                    .join()
                    .map_err(|payload| RuntimeError::ShardPanicked {
                        shard,
                        message: panic_message(payload.as_ref()),
                    })
            })
            .collect();
        // Workers have exited, so the chunk channel holds everything ever
        // sent; absorb it before assembling the per-shard streams.
        self.drain_chunks();
        let mut per_shard = Vec::with_capacity(joined.len());
        for outcome in joined {
            per_shard.push(outcome?);
        }
        for outcome in per_shard.iter_mut() {
            // Un-polled streamed results come first (ingest order), then the
            // executor's end-of-stream flush output.
            let mut stream: Vec<Tuple> = std::mem::take(&mut self.buffered[outcome.shard]).into();
            stream.append(&mut outcome.results);
            outcome.results = stream;
        }
        let snapshot = MetricsSnapshot::aggregate_parallel(per_shard.iter().map(|s| &s.snapshot));
        let results_count = per_shard.iter().map(|s| s.results_count).sum();
        let order_violations = per_shard.iter().map(|s| s.order_violations).sum();
        let streams: Vec<Vec<Tuple>> = per_shard
            .iter_mut()
            .map(|s| std::mem::take(&mut s.results))
            .collect();
        let results = merge_by_timestamp(&streams);
        for (shard, stream) in per_shard.iter_mut().zip(streams) {
            shard.results = stream;
        }
        Ok(ParallelOutcome {
            results,
            results_count,
            order_violations,
            snapshot,
            per_shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use jit_exec::operator::{DataMessage, OpContext, Operator, OperatorOutput, Port};
    use jit_exec::plan::{Input, PlanBuilder};
    use jit_types::{BaseTuple, SourceId, SourceSet, Value};
    use std::sync::Arc;

    struct Forward;

    impl Operator for Forward {
        fn name(&self) -> &str {
            "forward"
        }
        fn output_schema(&self) -> SourceSet {
            SourceSet::first_n(1)
        }
        fn num_ports(&self) -> usize {
            1
        }
        fn process(
            &mut self,
            _port: Port,
            msg: &DataMessage,
            _ctx: &mut OpContext<'_>,
        ) -> OperatorOutput {
            OperatorOutput::with_results(vec![msg.clone()])
        }
        fn memory_bytes(&self) -> usize {
            32
        }
    }

    fn forward_plan() -> Result<ExecutablePlan, PlanError> {
        let mut builder = PlanBuilder::new();
        builder.add_operator(Box::new(Forward), vec![Input::Source(SourceId(0))]);
        builder.build()
    }

    fn event(i: u64) -> ArrivalEvent {
        let ts = Timestamp::from_millis(i * 10);
        ArrivalEvent {
            ts,
            source: SourceId(0),
            tuple: Arc::new(BaseTuple::new(
                SourceId(0),
                i,
                ts,
                vec![Value::int(i as i64)],
            )),
        }
    }

    fn session(shards: usize, batch: usize) -> ShardedSession {
        ShardedRuntime::new(RuntimeConfig::with_shards(shards).with_batch_size(batch))
            .start(ExecutorConfig::default(), |_| forward_plan())
            .unwrap()
    }

    #[test]
    fn pushed_session_matches_one_shot_run() {
        let trace = Trace::new((0..300).map(event).collect());
        let runtime = ShardedRuntime::new(RuntimeConfig::with_shards(3).with_batch_size(16));
        let one_shot = runtime
            .run(&trace, ExecutorConfig::default(), |_| forward_plan())
            .unwrap();
        let mut live = runtime
            .start(ExecutorConfig::default(), |_| forward_plan())
            .unwrap();
        live.push_trace(&trace);
        let outcome = live.finish().unwrap();
        assert_eq!(outcome.results_count, one_shot.results_count);
        let keys = |r: &[Tuple]| r.iter().map(|t| t.key()).collect::<Vec<_>>();
        assert_eq!(keys(&outcome.results), keys(&one_shot.results));
    }

    #[test]
    fn polls_release_a_prefix_of_the_merged_stream_exactly_once() {
        let trace = Trace::new((0..400).map(event).collect());
        let mut live = session(4, 8);
        let mut polled = Vec::new();
        for (i, e) in trace.iter().enumerate() {
            live.push(e.clone());
            if i % 97 == 0 {
                polled.extend(live.poll_results());
            }
        }
        let outcome = live.finish().unwrap();
        polled.extend(outcome.results);
        assert_eq!(polled.len(), 400);
        assert!(polled.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        assert_eq!(outcome.results_count, 400);
    }

    #[test]
    fn polled_results_respect_the_watermark_mid_run() {
        let mut live = session(2, 1);
        for i in 0..50 {
            live.push(event(i));
        }
        // Give the workers a moment, then poll: anything released must be
        // globally ordered and complete up to its own horizon.
        let mut seen = Vec::new();
        for _ in 0..100 {
            seen.extend(live.poll_results());
            if seen.len() >= 50 {
                break;
            }
            std::thread::yield_now();
        }
        let outcome = live.finish().unwrap();
        seen.extend(outcome.results);
        assert_eq!(seen.len(), 50);
        assert!(seen.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }

    #[test]
    fn live_metrics_converge_to_the_final_snapshot() {
        let mut live = session(2, 4);
        for i in 0..120 {
            live.push(event(i));
        }
        let mid = live.metrics_snapshot();
        assert!(mid.stats.tuples_arrived <= 120);
        let outcome = live.finish().unwrap();
        assert_eq!(outcome.snapshot.stats.tuples_arrived, 120);
        assert!(mid.cost_units <= outcome.snapshot.cost_units);
    }

    #[test]
    fn plan_error_surfaces_before_any_thread_spawns() {
        let runtime = ShardedRuntime::new(RuntimeConfig::with_shards(2));
        let result = runtime.start(ExecutorConfig::default(), |shard| {
            if shard == 1 {
                PlanBuilder::new().build()
            } else {
                forward_plan()
            }
        });
        assert!(matches!(result, Err(RuntimeError::Plan(_))));
    }
}
