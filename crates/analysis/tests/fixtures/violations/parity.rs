// Seeded violations for rule `counter-parity`: counter sites the fixture
// pairing maps in the test harness variously omit, one-side, or go stale on.
pub fn process(ctx: &mut Ctx) {
    ctx.metrics.charge(CostKind::ProbePair, 1);
    ctx.metrics.stats.probe_pairs += 1;
}
