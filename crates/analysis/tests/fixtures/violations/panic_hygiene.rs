// Seeded violations for rule `panic-hygiene`: an unproven `.unwrap()` and a
// bare `panic!` in library code.
pub fn head(values: &[u64]) -> u64 {
    *values.first().unwrap()
}

pub fn explode() {
    panic!("no proof anywhere near this");
}
