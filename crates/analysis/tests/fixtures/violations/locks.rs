// Seeded violations for rule `lock-order`: an unbounded channel and a
// nested lock acquisition in what the harness presents as runtime code.
use std::sync::{mpsc, Mutex};

pub fn unbounded() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel()
}

pub fn nested(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    if let Ok(ga) = a.lock() {
        if let Ok(gb) = b.lock() {
            return *ga + *gb;
        }
    }
    0
}
