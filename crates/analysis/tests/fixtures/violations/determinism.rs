// Seeded violation for rule `determinism`: a wall-clock read outside the
// allowed trees.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
