// Seeded violation for rule `unsafe-audit`: an unannotated `unsafe` block
// with no discharged obligations anywhere near it.

pub fn reinterpret(bytes: [u8; 8]) -> u64 {
    unsafe { std::mem::transmute(bytes) }
}
