// Seeded violation for rule `default-hasher`: a std-hasher map in what the
// test harness presents as a data-plane module.
use std::collections::HashMap;

pub struct Index {
    buckets: HashMap<u64, Vec<u64>>,
}

impl Index {
    pub fn new() -> Index {
        Index {
            buckets: HashMap::new(),
        }
    }
}
