// The clean fixture: data-plane code written the way every rule wants it.
// The suite asserts this file produces zero diagnostics in every scope.
use jit_types::FastMap;
use std::sync::mpsc;

pub struct Index {
    buckets: FastMap<u64, Vec<u64>>,
}

impl Index {
    pub fn new() -> Index {
        Index {
            buckets: FastMap::default(),
        }
    }
}

pub fn bounded() -> (mpsc::SyncSender<u64>, mpsc::Receiver<u64>) {
    mpsc::sync_channel(64)
}

pub fn head(values: &[u64]) -> u64 {
    // INVARIANT: callers never pass an empty slice.
    *values.first().expect("non-empty")
}

pub fn reinterpret(bytes: [u8; 8]) -> u64 {
    // SAFETY: every 8-byte pattern is a valid u64.
    unsafe { std::mem::transmute(bytes) }
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely.
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(Some(1u64).unwrap(), 1);
    }
}
