//! Fixture suite for the static-analysis pass.
//!
//! Each seeded violation under `tests/fixtures/violations/` must be
//! detected by its rule, the clean fixture must produce zero diagnostics
//! in every audited scope, the baseline must round-trip
//! (`--fix-baseline` → green → stale on fix), and the real workspace must
//! be green — so `cargo test` enforces the same gate CI does.

use jit_analysis::diag::Diagnostic;
use jit_analysis::pairing::{self, PairingMap};
use jit_analysis::source::SourceFile;
use jit_analysis::{run, run_rules, Options};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Run the full rule catalog over one fixture presented at `rel_path`.
fn check_at(rel_path: &str, src: &str, map: PairingMap) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, src);
    run_rules(&[file], map)
}

fn rules_hit(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn hasher_violation_detected_in_data_plane_only() {
    let src = fixture("violations/hasher.rs");
    let diags = check_at("crates/exec/src/fx.rs", &src, PairingMap::new());
    assert!(
        diags.iter().any(|d| d.rule == "default-hasher"),
        "expected a default-hasher finding, got {diags:?}"
    );
    // The same file outside the data plane is not the hasher rule's business.
    let diags = check_at("crates/harness/src/fx.rs", &src, PairingMap::new());
    assert!(diags.iter().all(|d| d.rule != "default-hasher"));
}

#[test]
fn determinism_violation_detected_outside_allowed_trees() {
    let src = fixture("violations/determinism.rs");
    let diags = check_at("crates/exec/src/fx.rs", &src, PairingMap::new());
    assert!(
        diags.iter().any(|d| d.rule == "determinism"),
        "expected a determinism finding, got {diags:?}"
    );
    // Metrics may read wall clocks.
    let diags = check_at("crates/metrics/src/fx.rs", &src, PairingMap::new());
    assert!(diags.iter().all(|d| d.rule != "determinism"));
}

#[test]
fn panic_hygiene_violations_detected_in_library_code_only() {
    let src = fixture("violations/panic_hygiene.rs");
    let diags = check_at("crates/exec/src/fx.rs", &src, PairingMap::new());
    let hits: Vec<_> = diags.iter().filter(|d| d.rule == "panic-hygiene").collect();
    assert_eq!(hits.len(), 2, "unwrap + panic! expected, got {diags:?}");
    // Binaries may exit noisily.
    let diags = check_at("crates/exec/src/bin/fx/main.rs", &src, PairingMap::new());
    assert!(diags.iter().all(|d| d.rule != "panic-hygiene"));
}

#[test]
fn unsafe_violation_detected_everywhere() {
    let src = fixture("violations/unsafety.rs");
    for rel in ["crates/exec/src/fx.rs", "crates/harness/src/fx.rs"] {
        let diags = check_at(rel, &src, PairingMap::new());
        assert!(
            diags.iter().any(|d| d.rule == "unsafe-audit"),
            "expected an unsafe-audit finding at {rel}, got {diags:?}"
        );
    }
}

#[test]
fn lock_violations_detected_in_runtime_scope() {
    let src = fixture("violations/locks.rs");
    let diags = check_at("crates/runtime/src/fx.rs", &src, PairingMap::new());
    let hits: Vec<_> = diags.iter().filter(|d| d.rule == "lock-order").collect();
    assert_eq!(
        hits.len(),
        2,
        "unbounded channel + nested lock expected, got {diags:?}"
    );
    // The stream crate is outside the lock-discipline scope.
    let diags = check_at("crates/stream/src/fx.rs", &src, PairingMap::new());
    assert!(diags.iter().all(|d| d.rule != "lock-order"));
}

#[test]
fn parity_unmapped_one_sided_and_stale_all_detected() {
    let src = fixture("violations/parity.rs");
    let rel = "crates/exec/src/fx.rs";

    // Empty map: both sites are unmapped.
    let diags = check_at(rel, &src, PairingMap::new());
    let unmapped: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "counter-parity" && d.message.contains("unmapped"))
        .collect();
    assert_eq!(unmapped.len(), 2, "got {diags:?}");

    // Fully declared shared sites: green.
    let map = pairing::parse(
        "[[counter]]\nname = \"cost:ProbePair\"\nsites = [\n\
         \"crates/exec/src/fx.rs::process = shared\",\n]\n\
         [[counter]]\nname = \"stat:probe_pairs\"\nsites = [\n\
         \"crates/exec/src/fx.rs::process = shared\",\n]\n",
    )
    .expect("fixture map parses");
    let diags = check_at(rel, &src, map);
    assert!(rules_hit(&diags).is_empty(), "got {diags:?}");

    // Tuple-only lanes without a single_path justification: one-sided.
    let map = pairing::parse(
        "[[counter]]\nname = \"cost:ProbePair\"\nsites = [\n\
         \"crates/exec/src/fx.rs::process = tuple\",\n]\n\
         [[counter]]\nname = \"stat:probe_pairs\"\nsites = [\n\
         \"crates/exec/src/fx.rs::process = tuple\",\n]\n",
    )
    .expect("fixture map parses");
    let diags = check_at(rel, &src, map);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("one-sided"))
            .count(),
        2,
        "got {diags:?}"
    );

    // A mapped site the code no longer charges: stale.
    let map = pairing::parse(
        "[[counter]]\nname = \"cost:ProbePair\"\nsites = [\n\
         \"crates/exec/src/fx.rs::process = shared\",\n\
         \"crates/exec/src/gone.rs::vanished = shared\",\n]\n\
         [[counter]]\nname = \"stat:probe_pairs\"\nsites = [\n\
         \"crates/exec/src/fx.rs::process = shared\",\n]\n",
    )
    .expect("fixture map parses");
    let diags = check_at(rel, &src, map);
    assert_eq!(
        diags.iter().filter(|d| d.message.contains("stale")).count(),
        1,
        "got {diags:?}"
    );
}

#[test]
fn clean_fixture_passes_every_scope() {
    let src = fixture("clean/clean.rs");
    for rel in [
        "crates/exec/src/clean.rs",
        "crates/runtime/src/clean.rs",
        "crates/core/src/clean.rs",
    ] {
        let diags = check_at(rel, &src, PairingMap::new());
        assert!(diags.is_empty(), "clean fixture at {rel} got {diags:?}");
    }
}

#[test]
fn baseline_round_trips() {
    // A throwaway workspace with one baseline-severity violation.
    let root = std::env::temp_dir().join(format!("jit-analysis-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let src_dir = root.join("crates/exec/src");
    std::fs::create_dir_all(&src_dir).expect("temp dirs");
    std::fs::create_dir_all(root.join("crates/analysis")).expect("temp dirs");
    std::fs::write(root.join("crates/analysis/pairing.toml"), "").expect("write");
    std::fs::write(src_dir.join("lib.rs"), fixture("violations/hasher.rs")).expect("write");

    // Unpinned, the violation fails the check.
    let report = run(&root, &Options::default());
    assert!(!report.ok(), "expected failures, got {report:?}");

    // `--fix-baseline` pins it…
    let report = run(&root, &Options { fix_baseline: true });
    assert!(report.wrote_baseline.is_some());

    // …and the next plain check is green, with the findings absorbed.
    let report = run(&root, &Options::default());
    assert!(report.ok(), "expected green, got {report:?}");
    assert!(report.baseline_covered >= 1);

    // Fixing the code makes the pinned entries stale — the check fails
    // until the baseline is regenerated.
    std::fs::write(src_dir.join("lib.rs"), "pub fn fixed() {}\n").expect("write");
    let report = run(&root, &Options::default());
    assert!(!report.ok());
    assert!(!report.stale_baseline.is_empty());

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn workspace_is_green() {
    // The same gate CI runs: the committed workspace, waivers and baseline
    // included, must pass. Deny-severity rules carry no waivers at all by
    // construction — the run fails if one appears.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = run(&root, &Options::default());
    assert!(
        report.ok(),
        "workspace check failed: {:?} {:?} {:?}",
        report.failures,
        report.stale_baseline,
        report.errors
    );
    assert!(report.files_scanned >= 90);
}
