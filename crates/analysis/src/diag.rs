//! Diagnostics and severities.

use std::fmt;

/// How a rule's findings are enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violations always fail the check. No waivers, no baseline entries —
    /// the only way out is to fix the code (or, for rules with a sanctioned
    /// in-code annotation such as `// INVARIANT:` / `// SAFETY:`, to
    /// justify the site through that annotation, which the rule itself
    /// recognises before a diagnostic is ever emitted).
    Deny,
    /// Violations fail the check unless covered by an inline waiver
    /// (`// jit-analysis: allow(rule): why`) or a committed baseline entry.
    Baseline,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Baseline => write!(f, "baseline"),
        }
    }
}

/// One finding, addressed by (rule, file, fingerprint) so baseline entries
/// survive unrelated line drift.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule id (e.g. `default-hasher`).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Trimmed source-line text — the baseline matching key.
    pub fingerprint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file, self.line, self.rule, self.severity, self.message
        )
    }
}
