//! A hand-rolled Rust lexer sufficient for lint-level scanning.
//!
//! This is not a full Rust tokenizer: it produces identifiers, punctuation,
//! and literals with line numbers, and collects comments separately as
//! trivia (rules inspect trivia for `// SAFETY:`, `// INVARIANT:` and
//! waiver annotations). It handles everything that would otherwise corrupt
//! a token stream — nested block comments, raw strings (`r#"…"#`), byte and
//! char literals, and the lifetime-vs-char ambiguity (`'a` vs `'a'`) — so
//! downstream scanners never see a keyword that was really inside a string.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the scanner distinguishes by text).
    Ident,
    /// A lifetime such as `'a` (including the quote-less label text).
    Lifetime,
    /// String / raw-string / byte-string / char / numeric literal.
    Literal,
    /// A single punctuation character (`{`, `(`, `+`, `=`, …).
    Punct(char),
}

/// One non-trivia token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text (for `Punct` this is the single character).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment (line or block), kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated constructs are tolerated (the remainder of
/// the file is consumed) — a lint pass must never panic on weird input.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(),
                '\'' => self.char_or_lifetime(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(' ');
                    self.out.tokens.push(Token {
                        kind: TokenKind::Punct(c),
                        text: c.to_string(),
                        line,
                    });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// Does the `r` / `b` at the cursor start a raw/byte literal (vs an
    /// ordinary identifier such as `rows`)?
    fn raw_or_byte_prefix(&self) -> bool {
        match (self.peek(0), self.peek(1), self.peek(2)) {
            (Some('r'), Some('"' | '#'), _) => self.raw_hashes_then_quote(1),
            (Some('b'), Some('"'), _) => true,
            (Some('b'), Some('\''), _) => true,
            (Some('b'), Some('r'), Some('"' | '#')) => self.raw_hashes_then_quote(2),
            _ => false,
        }
    }

    /// From offset `from`, is the char run `#* "`? (`r` / `br` raw strings —
    /// distinguishes `r#"…"` from the raw identifier `r#keyword`.)
    fn raw_hashes_then_quote(&self, from: usize) -> bool {
        let mut i = from;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn prefixed_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Consume the r / b / br prefix.
        while matches!(self.peek(0), Some('r' | 'b')) && text.len() < 2 {
            text.push(self.bump().unwrap_or(' '));
        }
        if self.peek(0) == Some('\'') {
            // b'x'
            self.consume_char_literal(&mut text);
        } else {
            // Count leading hashes for raw strings.
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                text.push(self.bump().unwrap_or(' '));
            }
            let raw = text.starts_with('r') || text.starts_with("br") || hashes > 0;
            self.consume_string_body(&mut text, hashes, raw);
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line,
        });
    }

    fn string_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.consume_string_body(&mut text, 0, false);
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line,
        });
    }

    /// Consume `"…"` (plus `hashes` trailing `#`s for raw strings); `raw`
    /// disables backslash escapes.
    fn consume_string_body(&mut self, text: &mut String, hashes: usize, raw: bool) {
        if self.peek(0) == Some('"') {
            text.push(self.bump().unwrap_or(' '));
        }
        while let Some(c) = self.peek(0) {
            if !raw && c == '\\' {
                text.push(self.bump().unwrap_or(' '));
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                continue;
            }
            if c == '"' {
                // Check closing hashes.
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    text.push(self.bump().unwrap_or(' '));
                    for _ in 0..hashes {
                        text.push(self.bump().unwrap_or(' '));
                    }
                    return;
                }
            }
            text.push(c);
            self.bump();
        }
    }

    /// `'a` (lifetime) vs `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Lifetime: quote, ident-start, then NOT a closing quote right after
        // the label run.
        let is_lifetime = match self.peek(1) {
            Some(c) if c.is_alphabetic() || c == '_' => {
                let mut i = 2;
                while matches!(self.peek(i), Some(c) if c.is_alphanumeric() || c == '_') {
                    i += 1;
                }
                self.peek(i) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            let mut text = String::new();
            text.push(self.bump().unwrap_or(' ')); // '
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                text.push(self.bump().unwrap_or(' '));
            }
            self.out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text,
                line,
            });
        } else {
            let mut text = String::new();
            self.consume_char_literal(&mut text);
            self.out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line,
            });
        }
    }

    fn consume_char_literal(&mut self, text: &mut String) {
        text.push(self.bump().unwrap_or(' ')); // opening '
        match self.peek(0) {
            Some('\\') => {
                text.push(self.bump().unwrap_or(' '));
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                // \u{…} escapes.
                while matches!(self.peek(0), Some(c) if c != '\'') {
                    text.push(self.bump().unwrap_or(' '));
                }
            }
            Some(_) => {
                text.push(self.bump().unwrap_or(' '));
            }
            None => return,
        }
        if self.peek(0) == Some('\'') {
            text.push(self.bump().unwrap_or(' '));
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            text.push(self.bump().unwrap_or(' '));
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Ident,
            text,
            line,
        });
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Good enough for scanning: digits, underscores, hex/oct/bin tags,
        // exponents, type suffixes and a fractional part all fold into one
        // literal token. `1..n` range dots are left as punctuation.
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.'
                    && self.peek(1) != Some('.')
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit()));
            if !take {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_hide_keywords() {
        let l = lex(r##"let s = "unsafe { HashMap }"; let t = r#"panic!"# ;"##);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn comments_are_trivia() {
        let l = lex("// HashMap here\nlet x = 1; /* unsafe */\n");
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[1].text.contains("unsafe"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn char_escapes() {
        let l = lex(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';");
        let lits: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lits.len(), 3);
    }

    #[test]
    fn line_numbers() {
        let l = lex("a\nb\n  c");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn numbers_fold() {
        let l = lex("1_000.5e3 0xFFu64 1..4");
        let lits: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["1_000.5e3", "0xFFu64", "1", "4"]);
    }
}
