//! The counter pairing map (`crates/analysis/pairing.toml`).
//!
//! The counter-parity rule audits every cost-charge (`charge(CostKind::X)`)
//! and statistics-counter mutation (`stats.field += …`) site in the
//! operator data plane against this committed map. Each known counter lists
//! its sanctioned sites as `"file::fn = lane"`, where the lane records
//! which execution path reaches the site:
//!
//! * `shared` — a helper on **both** the tuple and the batch path (the
//!   common case after PR 8 folded the two paths into one `process_row`).
//! * `tuple` — reached only by per-tuple processing.
//! * `batch` — reached only by batch ingestion (`prepare_batch`,
//!   `ingest_block`, memo replay, …).
//!
//! The rule then enforces, per counter: (a) the observed site set equals
//! the mapped site set — an unmapped charge is exactly the "one-sided
//! addition" the PR 8/9 parity tests exist to catch, and removing a site
//! without updating the map is flagged as stale; (b) lanes cover both
//! paths (at least one `shared` site, or both a `tuple` and a `batch`
//! site), unless the counter carries a `single_path` justification (e.g.
//! scheduling overhead deliberately elided on the batch path).

use std::collections::BTreeMap;

/// Which execution path reaches a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    Tuple,
    Batch,
    Shared,
}

impl Lane {
    fn parse(s: &str) -> Option<Lane> {
        match s {
            "tuple" => Some(Lane::Tuple),
            "batch" => Some(Lane::Batch),
            "shared" => Some(Lane::Shared),
            _ => None,
        }
    }
}

/// One counter's sanctioned sites.
#[derive(Debug, Clone, Default)]
pub struct CounterEntry {
    /// `site` (`"file::fn"`) → lane.
    pub sites: BTreeMap<String, Lane>,
    /// Justification for counters deliberately charged on one path only.
    pub single_path: Option<String>,
}

/// The whole map: counter name (`cost:ProbePair`, `stat:probe_pairs`) →
/// entry.
pub type PairingMap = BTreeMap<String, CounterEntry>;

/// Parse `pairing.toml` text (strict hand-parsed TOML subset: `[[counter]]`
/// tables with `name`, optional `single_path`, and a `sites` string array).
pub fn parse(text: &str) -> Result<PairingMap, String> {
    let mut map = PairingMap::new();
    let mut cur_name: Option<String> = None;
    let mut cur = CounterEntry::default();
    let mut in_sites = false;

    let mut flush = |name: &mut Option<String>, entry: &mut CounterEntry| -> Result<(), String> {
        if let Some(n) = name.take() {
            if map.insert(n.clone(), std::mem::take(entry)).is_some() {
                return Err(format!("pairing.toml: duplicate counter `{n}`"));
            }
        }
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: &str| format!("pairing.toml line {}: {}", idx + 1, msg);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if in_sites {
            if line == "]" {
                in_sites = false;
                continue;
            }
            let item = line.trim_end_matches(',').trim();
            let item = item
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err("expected quoted site string"))?;
            let (site, lane) = item
                .split_once('=')
                .ok_or_else(|| err("expected `file::fn = lane`"))?;
            let lane =
                Lane::parse(lane.trim()).ok_or_else(|| err("lane must be tuple|batch|shared"))?;
            if cur.sites.insert(site.trim().to_string(), lane).is_some() {
                return Err(err("duplicate site"));
            }
            continue;
        }
        if line == "[[counter]]" {
            flush(&mut cur_name, &mut cur)?;
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`"))?;
        match key.trim() {
            "name" => {
                if cur_name.is_some() {
                    return Err(err("second `name` in one [[counter]] table"));
                }
                cur_name = Some(unquote(value).ok_or_else(|| err("expected quoted string"))?);
            }
            "single_path" => {
                cur.single_path =
                    Some(unquote(value).ok_or_else(|| err("expected quoted string"))?);
            }
            "sites" => {
                if value.trim() != "[" {
                    return Err(err("sites must open a multi-line array: `sites = [`"));
                }
                in_sites = true;
            }
            other => return Err(err(&format!("unknown key `{other}`"))),
        }
    }
    if in_sites {
        return Err("pairing.toml: unterminated sites array".into());
    }
    flush(&mut cur_name, &mut cur)?;
    Ok(map)
}

fn unquote(v: &str) -> Option<String> {
    v.trim()
        .strip_prefix('"')?
        .strip_suffix('"')
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[[counter]]
name = "cost:ProbePair"
sites = [
  "crates/exec/src/join.rs::process_row = shared",
  "crates/core/src/jit_join.rs::replay_memo = batch",
]

[[counter]]
name = "cost:TaskDispatch"
single_path = "scheduling overhead, elided on the batch path by design"
sites = [
  "crates/exec/src/executor.rs::run_cascade = tuple",
]
"#;

    #[test]
    fn parses_sample() {
        let map = parse(SAMPLE).expect("parses");
        assert_eq!(map.len(), 2);
        let pp = &map["cost:ProbePair"];
        assert_eq!(
            pp.sites["crates/exec/src/join.rs::process_row"],
            Lane::Shared
        );
        assert_eq!(
            pp.sites["crates/core/src/jit_join.rs::replay_memo"],
            Lane::Batch
        );
        assert!(pp.single_path.is_none());
        assert!(map["cost:TaskDispatch"].single_path.is_some());
    }

    #[test]
    fn rejects_bad_lane() {
        let bad = "[[counter]]\nname = \"c\"\nsites = [\n\"f::g = sideways\",\n]\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn rejects_duplicate_counter() {
        let bad =
            "[[counter]]\nname = \"c\"\nsites = [\n]\n[[counter]]\nname = \"c\"\nsites = [\n]\n";
        assert!(parse(bad).is_err());
    }
}
