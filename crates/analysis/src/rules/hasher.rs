//! `default-hasher`: ban `std::collections::HashMap` / `HashSet` in
//! data-plane modules.
//!
//! SipHash costs tens of nanoseconds per small key; data-plane maps are
//! probed once per arriving tuple, so PR 8 migrated them to the
//! multiplicative `FastMap` / `FastSet` (`jit_types::hash`). This rule
//! keeps the migration from silently regressing: any default-hasher ident
//! in `exec` / `core` / `types` / `runtime` / `serve` non-test code must be
//! converted, waived inline, or pinned in the baseline (the `FastMap`
//! definition site itself is the canonical pin).

use super::{diag, Rule};
use crate::config::{under, DATA_PLANE_PREFIXES};
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

pub struct DefaultHasher;

impl Rule for DefaultHasher {
    fn id(&self) -> &'static str {
        "default-hasher"
    }

    fn describe(&self) -> &'static str {
        "std HashMap/HashSet banned in data-plane modules; use FastMap/FastSet"
    }

    fn severity(&self) -> Severity {
        Severity::Baseline
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !under(&file.rel_path, DATA_PLANE_PREFIXES) {
            return;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if file.scopes[i].in_test {
                continue;
            }
            let which = if t.is_ident("HashMap") {
                "HashMap"
            } else if t.is_ident("HashSet") {
                "HashSet"
            } else {
                continue;
            };
            let fast = if which == "HashMap" {
                "FastMap"
            } else {
                "FastSet"
            };
            out.push(diag(
                self.id(),
                self.severity(),
                file,
                t.line,
                format!(
                    "`{which}` uses the default SipHash hasher in a data-plane module; \
                     use `jit_types::{fast}` (trusted keys) or justify the site"
                ),
            ));
        }
    }
}
