//! `lock-order`: guard the sharded backend against the PR 1 deadlock class.
//!
//! Two lexical heuristics over `runtime` / `exec` / `serve`:
//!
//! * **Nested `Mutex` acquisition** — a `.lock(…)` while an earlier
//!   `.lock(…)`'s guard may still be live in the same function (the
//!   earlier call's enclosing block has not closed). Cross-thread
//!   lock-order inversions need exactly two such sites; sequential
//!   same-block guards count because liveness is not tracked (drop the
//!   first guard in a scope, or waive with the acquisition order spelled
//!   out).
//! * **Unbounded channels** — `mpsc::channel()` has no backpressure; a
//!   slow consumer turns it into an unbounded queue and the PR 1 deadlock
//!   fix relied on *bounded* shard channels. Use `sync_channel(cap)`, or
//!   pin the site with a justification for why unboundedness is load-safe
//!   (e.g. a result path whose bounding would re-create the deadlock).

use super::{diag, Rule};
use crate::config::{under, LOCK_SCOPE_PREFIXES};
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "flag nested Mutex acquisitions and unbounded mpsc::channel in the sharded backend"
    }

    fn severity(&self) -> Severity {
        Severity::Baseline
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !under(&file.rel_path, LOCK_SCOPE_PREFIXES) {
            return;
        }
        let toks = &file.tokens;
        // Open lock acquisitions in the current fn: brace depth at the call.
        let mut open_locks: Vec<usize> = Vec::new();
        let mut cur_fn: Option<String> = None;
        let mut depth = 0usize;

        for (i, t) in toks.iter().enumerate() {
            if file.scopes[i].in_test {
                continue;
            }
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                open_locks.retain(|&d| d <= depth);
            }
            if file.scopes[i].fn_name != cur_fn {
                cur_fn = file.scopes[i].fn_name.clone();
                open_locks.clear();
            }

            // `mpsc::channel(` — `sync_channel` is a different ident and
            // passes.
            if t.is_ident("mpsc")
                && toks.get(i + 1).map(|p| p.is_punct(':')).unwrap_or(false)
                && toks.get(i + 2).map(|p| p.is_punct(':')).unwrap_or(false)
                && toks
                    .get(i + 3)
                    .map(|n| n.is_ident("channel"))
                    .unwrap_or(false)
            {
                out.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    t.line,
                    "unbounded `mpsc::channel()` in the sharded backend: use \
                     `sync_channel(cap)` for backpressure, or justify why this path \
                     must be unbounded"
                        .to_string(),
                ));
            }

            // `.lock(` while another lock in this fn may still be held.
            if i > 0
                && toks[i - 1].is_punct('.')
                && t.is_ident("lock")
                && toks.get(i + 1).map(|p| p.is_punct('(')).unwrap_or(false)
            {
                if !open_locks.is_empty() {
                    out.push(diag(
                        self.id(),
                        self.severity(),
                        file,
                        t.line,
                        format!(
                            "nested Mutex acquisition in `{}`: an earlier `.lock()` guard \
                             may still be live — establish a single lock order or scope \
                             the first guard out",
                            cur_fn.as_deref().unwrap_or("?")
                        ),
                    ));
                }
                open_locks.push(depth);
            }
        }
    }
}
