//! The rule engine.
//!
//! # Adding a rule
//!
//! 1. Create `src/rules/<name>.rs` with a type implementing [`Rule`].
//!    Rules are stateful visitors: [`Rule::check_file`] is called once per
//!    scanned [`SourceFile`] (alphabetical path order), then
//!    [`Rule::finish`] once — emit per-file findings from the former and
//!    cross-file findings (anything needing the whole workspace, like the
//!    counter-parity set comparison) from the latter.
//! 2. Pick a stable kebab-case id (it appears in waiver comments, the
//!    baseline and CI output) and a [`Severity`]:
//!    * `Deny` for invariants with an in-code escape hatch the rule itself
//!      recognises (`// INVARIANT:`, `// SAFETY:`) or none at all — these
//!      can never be waived or baselined.
//!    * `Baseline` for heuristics and migration rules where pre-existing
//!      sites are pinned in `baseline.toml` and new ones fail.
//! 3. Register it in [`all_rules`].
//! 4. Add a seeded-violation fixture under `tests/fixtures/violations/`
//!    and a passing construct in `tests/fixtures/clean/` — the fixture
//!    suite fails if a rule stops detecting its own catalog entry.
//!
//! Scope decisions (which trees a rule audits) live in [`crate::config`],
//! not in the rule, so reach changes review as config diffs.

use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

mod determinism;
mod hasher;
mod locks;
mod panic_hygiene;
mod parity;
mod unsafety;

pub use parity::dump_pairing_skeleton;

/// One lint pass.
pub trait Rule {
    /// Stable kebab-case identifier.
    fn id(&self) -> &'static str;
    /// One-line description for `--list` output and docs.
    fn describe(&self) -> &'static str;
    fn severity(&self) -> Severity;
    /// Visit one file.
    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>);
    /// Emit findings that need the whole workspace.
    fn finish(&mut self, _out: &mut Vec<Diagnostic>) {}
}

/// Construct the full rule catalog. `pairing` is the parsed counter map
/// (see [`crate::pairing`]); pass the workspace's committed map.
pub fn all_rules(pairing: crate::pairing::PairingMap) -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(hasher::DefaultHasher),
        Box::new(determinism::Determinism),
        Box::new(parity::CounterParity::new(pairing)),
        Box::new(panic_hygiene::PanicHygiene),
        Box::new(unsafety::UnsafeAudit),
        Box::new(locks::LockOrder),
    ]
}

/// Shared constructor keeping fingerprints consistent across rules.
pub(crate) fn diag(
    rule: &'static str,
    severity: Severity,
    file: &SourceFile,
    line: u32,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity,
        file: file.rel_path.clone(),
        line,
        message,
        fingerprint: file.fingerprint(line),
    }
}
