//! `counter-parity`: audit cost/statistics counter sites against the
//! committed pairing map.
//!
//! PRs 8–9 bought exact tuple↔batch counter parity (the foundation the
//! adaptive JIT↔REF switching cost model stands on) at real effort, and
//! the equivalence suites only catch a one-sided counter *after* a
//! workload runs. This rule catches it at CI time, lexically:
//!
//! * every `charge(CostKind::X, …)` call and every `stats.field += …`
//!   mutation in the operator data plane (`exec`, `core`) is extracted as
//!   a site `(counter, file::fn)`;
//! * the observed site set must exactly equal the committed map in
//!   `crates/analysis/pairing.toml` — adding a charge without declaring
//!   its lane (tuple / batch / shared) fails, as does a stale map entry;
//! * per counter, the declared lanes must cover both paths (a `shared`
//!   site, or both `tuple` and `batch`), unless the counter carries a
//!   `single_path` justification;
//! * `charge(…)` with a non-literal `CostKind` defeats the audit and is
//!   rejected outright.

use super::{diag, Rule};
use crate::config::{under, COUNTER_SCOPE_PREFIXES};
use crate::diag::{Diagnostic, Severity};
use crate::pairing::{Lane, PairingMap};
use crate::source::SourceFile;
use std::collections::BTreeMap;

pub struct CounterParity {
    map: PairingMap,
    /// counter → site (`file::fn`) → (first file, first line).
    observed: BTreeMap<String, BTreeMap<String, (String, u32)>>,
    /// Fingerprints for observed sites (for baseline addressing).
    fingerprints: BTreeMap<(String, String), String>,
}

impl CounterParity {
    pub fn new(map: PairingMap) -> Self {
        CounterParity {
            map,
            observed: BTreeMap::new(),
            fingerprints: BTreeMap::new(),
        }
    }
}

/// Extract every counter site in `file` as `(counter, fn, line)`.
fn extract_sites(file: &SourceFile) -> Vec<(String, String, u32)> {
    let toks = &file.tokens;
    let mut sites = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.scopes[i].in_test {
            continue;
        }
        let fn_name = file.scopes[i]
            .fn_name
            .clone()
            .unwrap_or_else(|| "<module>".to_string());

        // `charge(CostKind::X` — anything else after `charge(` is reported
        // as a non-literal kind by the caller (counter name `cost:?`).
        if t.is_ident("charge") && toks.get(i + 1).map(|p| p.is_punct('(')).unwrap_or(false) {
            // Skip `fn charge(` definitions — they forward, not charge.
            if i > 0 && toks[i - 1].is_ident("fn") {
                continue;
            }
            let kind = if toks
                .get(i + 2)
                .map(|k| k.is_ident("CostKind"))
                .unwrap_or(false)
                && toks.get(i + 3).map(|p| p.is_punct(':')).unwrap_or(false)
                && toks.get(i + 4).map(|p| p.is_punct(':')).unwrap_or(false)
            {
                toks.get(i + 5).map(|k| k.text.clone())
            } else {
                None
            };
            match kind {
                Some(k) => sites.push((format!("cost:{k}"), fn_name, t.line)),
                None => sites.push(("cost:?".to_string(), fn_name, t.line)),
            }
            continue;
        }

        // `stats . field += …`
        if t.is_ident("stats")
            && toks.get(i + 1).map(|p| p.is_punct('.')).unwrap_or(false)
            && toks
                .get(i + 2)
                .map(|f| matches!(f.kind, crate::lexer::TokenKind::Ident))
                .unwrap_or(false)
            && toks.get(i + 3).map(|p| p.is_punct('+')).unwrap_or(false)
            && toks.get(i + 4).map(|p| p.is_punct('=')).unwrap_or(false)
        {
            let field = toks[i + 2].text.clone();
            sites.push((format!("stat:{field}"), fn_name, t.line));
        }
    }
    sites
}

impl Rule for CounterParity {
    fn id(&self) -> &'static str {
        "counter-parity"
    }

    fn describe(&self) -> &'static str {
        "every cost/stat counter site must appear in pairing.toml with tuple+batch lane coverage"
    }

    fn severity(&self) -> Severity {
        Severity::Baseline
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !under(&file.rel_path, COUNTER_SCOPE_PREFIXES) {
            return;
        }
        for (counter, fn_name, line) in extract_sites(file) {
            if counter == "cost:?" {
                out.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    line,
                    format!(
                        "`charge(…)` in `{fn_name}` with a non-literal `CostKind` defeats \
                         the parity audit; charge a literal kind at each site"
                    ),
                ));
                continue;
            }
            let site = format!("{}::{}", file.rel_path, fn_name);
            self.fingerprints
                .entry((counter.clone(), site.clone()))
                .or_insert_with(|| file.fingerprint(line));
            self.observed
                .entry(counter)
                .or_default()
                .entry(site)
                .or_insert_with(|| (file.rel_path.clone(), line));
        }
    }

    fn finish(&mut self, out: &mut Vec<Diagnostic>) {
        let map_file = "crates/analysis/pairing.toml";
        // Observed sites missing from the map, and lane coverage.
        for (counter, sites) in &self.observed {
            let entry = self.map.get(counter);
            for (site, (file, line)) in sites {
                let known = entry.map(|e| e.sites.contains_key(site)).unwrap_or(false);
                if !known {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: self.severity(),
                        file: file.clone(),
                        line: *line,
                        message: format!(
                            "counter `{counter}` charged at unmapped site `{site}`: declare \
                             it in {map_file} with its lane (tuple/batch/shared) and add the \
                             dual-path charge if one is missing"
                        ),
                        fingerprint: self
                            .fingerprints
                            .get(&(counter.clone(), site.clone()))
                            .cloned()
                            .unwrap_or_default(),
                    });
                }
            }
            if let Some(e) = entry {
                let lanes: Vec<Lane> = e
                    .sites
                    .iter()
                    .filter(|(s, _)| sites.contains_key(*s))
                    .map(|(_, l)| *l)
                    .collect();
                let covered = lanes.contains(&Lane::Shared)
                    || (lanes.contains(&Lane::Tuple) && lanes.contains(&Lane::Batch));
                if !covered && e.single_path.is_none() {
                    let (file, line) = sites.values().next().cloned().unwrap_or_default();
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: self.severity(),
                        file,
                        line,
                        message: format!(
                            "counter `{counter}` is one-sided: its sites cover only one of \
                             the tuple/batch paths — add the missing path's charge, or give \
                             the counter a `single_path` justification in {map_file}"
                        ),
                        fingerprint: format!("one-sided:{counter}"),
                    });
                }
            }
        }
        // Stale map entries (site vanished or moved).
        for (counter, entry) in &self.map {
            let observed = self.observed.get(counter);
            for site in entry.sites.keys() {
                let live = observed.map(|s| s.contains_key(site)).unwrap_or(false);
                if !live {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: self.severity(),
                        file: map_file.to_string(),
                        line: 1,
                        message: format!(
                            "stale pairing entry: counter `{counter}` is no longer charged \
                             at `{site}` — remove or update the map"
                        ),
                        fingerprint: format!("stale:{counter}:{site}"),
                    });
                }
            }
        }
    }
}

/// Render a `pairing.toml` skeleton from the workspace's current sites
/// (the `dump-pairing` subcommand): every site is emitted with lane
/// `shared` as a starting point — **hand-audit each lane** before
/// committing; the skeleton is a bootstrap aid, not a classification.
pub fn dump_pairing_skeleton(files: &[SourceFile]) -> String {
    use std::fmt::Write as _;
    let mut observed: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for file in files {
        if !under(&file.rel_path, COUNTER_SCOPE_PREFIXES) {
            continue;
        }
        for (counter, fn_name, _) in extract_sites(file) {
            let site = format!("{}::{}", file.rel_path, fn_name);
            let v = observed.entry(counter).or_default();
            if !v.contains(&site) {
                v.push(site);
            }
        }
    }
    let mut out = String::from("# pairing.toml skeleton — audit every lane before committing.\n");
    for (counter, sites) in observed {
        let _ = write!(out, "\n[[counter]]\nname = \"{counter}\"\nsites = [\n");
        for s in sites {
            let _ = writeln!(out, "  \"{s} = shared\",");
        }
        out.push_str("]\n");
    }
    out
}
