//! `panic-hygiene`: no `unwrap` / `expect` / `panic!` / `todo!` /
//! `unimplemented!` / `dbg!` in library code.
//!
//! Library code feeds long-running serving sessions; an unexpected panic
//! tears down a shard worker and loses in-flight windows. Sites whose
//! infallibility is a *proven local invariant* may stay, but must carry a
//! `// INVARIANT:` comment (same line or up to two lines above) stating
//! why the failure arm is unreachable — that annotation is part of the
//! rule, not a waiver, so the rule stays deny-severity with zero waivers.
//! `todo!`, `unimplemented!` and `dbg!` are never sanctioned.

use super::{diag, Rule};
use crate::config::is_library_code;
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

pub struct PanicHygiene;

/// How far above a site the `// INVARIANT:` annotation may sit.
const LOOKBACK_LINES: u32 = 2;

impl Rule for PanicHygiene {
    fn id(&self) -> &'static str {
        "panic-hygiene"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/dbg! in library code outside tests and INVARIANT sites"
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !is_library_code(&file.rel_path) {
            return;
        }
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if file.scopes[i].in_test {
                continue;
            }
            let next_is = |c: char| toks.get(i + 1).map(|n| n.is_punct(c)).unwrap_or(false);
            let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');

            // Method calls: `.unwrap()` / `.expect(…)` — exact names only
            // (`unwrap_or_else` etc. are fine).
            let (what, annotatable) =
                if prev_is_dot && (t.is_ident("unwrap") || t.is_ident("expect")) && next_is('(') {
                    (format!(".{}(…)", t.text), true)
                } else if (t.is_ident("panic") || t.is_ident("unreachable")) && next_is('!') {
                    // `unreachable!` is in the same class as `panic!`: a proven
                    // dead arm is an INVARIANT, an unproven one is a bug.
                    (format!("{}!", t.text), true)
                } else if (t.is_ident("todo") || t.is_ident("unimplemented")) && next_is('!') {
                    (format!("{}!", t.text), false)
                } else if t.is_ident("dbg") && next_is('!') {
                    ("dbg!".to_string(), false)
                } else {
                    continue;
                };

            if annotatable && file.annotated_near(t.line, "INVARIANT:", LOOKBACK_LINES) {
                continue;
            }
            let hint = if annotatable {
                "return a typed error, or prove the invariant in a `// INVARIANT:` comment"
            } else {
                "never ships in library code — finish or remove it"
            };
            out.push(diag(
                self.id(),
                self.severity(),
                file,
                t.line,
                format!("`{what}` in library code: {hint}"),
            ));
        }
    }
}
