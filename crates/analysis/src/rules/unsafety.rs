//! `unsafe-audit`: every `unsafe` must carry a `// SAFETY:` comment.
//!
//! The workspace is currently 100% safe Rust, so this rule lands with an
//! empty allowlist — its job is to keep it that way: the moment an
//! `unsafe` block, fn, impl or trait is introduced, CI requires the
//! obligations to be discharged in writing, directly above the keyword.
//! The annotation is part of the rule (like `// INVARIANT:` for
//! panic-hygiene), so the rule is deny-severity and unwaivable.

use super::{diag, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

pub struct UnsafeAudit;

/// How far above the `unsafe` keyword the `// SAFETY:` comment may sit.
const LOOKBACK_LINES: u32 = 3;

impl Rule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }

    fn describe(&self) -> &'static str {
        "every unsafe block/fn/impl must carry a // SAFETY: comment"
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        // Test code is NOT exempt: an unproven unsafe in a test corrupts
        // the very run that was supposed to catch bugs.
        for t in &file.tokens {
            if !t.is_ident("unsafe") {
                continue;
            }
            if file.annotated_near(t.line, "SAFETY:", LOOKBACK_LINES) {
                continue;
            }
            out.push(diag(
                self.id(),
                self.severity(),
                file,
                t.line,
                "`unsafe` without a `// SAFETY:` comment discharging its obligations \
                 (put it on the line above the keyword)"
                    .to_string(),
            ));
        }
    }
}
