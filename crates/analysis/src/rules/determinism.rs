//! `determinism`: no wall clocks or OS randomness outside sanctioned
//! modules.
//!
//! Checkpoint/recovery replay and the shard-equivalence suites assert
//! *byte-identical* reruns; one `Instant::now()` influencing data-plane
//! behaviour breaks them non-reproducibly. Wall-clock reads are confined to
//! `metrics` (throughput reporting), `bench`, `harness` (figure sweeps)
//! and `durable::checkpoint` (operational stats); randomness must come
//! from the seeded `rand` compat crate, never `thread_rng`/entropy.

use super::{diag, Rule};
use crate::config::{under, DETERMINISM_ALLOWED_PREFIXES};
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn describe(&self) -> &'static str {
        "no Instant::now/SystemTime/thread_rng outside metrics, bench, harness, durable::checkpoint"
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if under(&file.rel_path, DETERMINISM_ALLOWED_PREFIXES) {
            return;
        }
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if file.scopes[i].in_test {
                continue;
            }
            // `Instant::now(` — the type alone may appear in plumbing that
            // *transports* a caller-provided instant, which is fine.
            let bad = if t.is_ident("Instant")
                && toks.get(i + 1).map(|p| p.is_punct(':')).unwrap_or(false)
                && toks.get(i + 2).map(|p| p.is_punct(':')).unwrap_or(false)
                && toks.get(i + 3).map(|p| p.is_ident("now")).unwrap_or(false)
            {
                Some("Instant::now()")
            } else if t.is_ident("SystemTime") {
                Some("SystemTime")
            } else if t.is_ident("thread_rng") {
                Some("thread_rng")
            } else if t.is_ident("from_entropy") {
                Some("from_entropy")
            } else {
                None
            };
            if let Some(what) = bad {
                out.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    t.line,
                    format!(
                        "`{what}` breaks deterministic replay; use the executor clock / a \
                         seeded rng, or move the timing into metrics/bench"
                    ),
                ));
            }
        }
    }
}
