//! `jit-analysis` — the workspace's own static-analysis pass.
//!
//! The engine's correctness story rests on invariants no compiler checks:
//! exact tuple↔batch cost-counter parity, deterministic replay for
//! checkpoint/recovery, and the hot-path hashing/allocation discipline
//! PRs 8–9 established. The equivalence suites catch violations only
//! after a workload runs; this pass catches them at CI time, lexically,
//! with zero external dependencies (the build environment has no
//! crates.io access, so dylint/clippy plugins are not an option).
//!
//! ## Architecture
//!
//! * [`lexer`] — hand-rolled Rust tokenizer (comments kept as trivia).
//! * [`source`] — per-file scope model: enclosing `fn`, test regions,
//!   annotation/waiver lookup, line fingerprints.
//! * [`rules`] — the rule engine and catalog; see the module docs for how
//!   to add a rule.
//! * [`baseline`] — the committed allowlist pinning pre-existing accepted
//!   findings of baseline-severity rules.
//! * [`pairing`] — the counter pairing map consumed by `counter-parity`.
//! * [`config`] — scan roots and per-rule scopes (code, so reach changes
//!   review as diffs).
//!
//! ## Escape hatches, in order of preference
//!
//! 1. **Fix the code.**
//! 2. **Rule annotations** (deny rules): `// INVARIANT:` for
//!    panic-hygiene, `// SAFETY:` for unsafe-audit — proofs, not waivers.
//! 3. **Inline waiver** (baseline rules only):
//!    `// jit-analysis: allow(rule-id): justification` on the line or the
//!    two lines above. Unknown rule ids, missing justifications and
//!    waivers that match nothing are themselves violations.
//! 4. **Baseline entry** (baseline rules only): pinned in
//!    `crates/analysis/baseline.toml` via `--fix-baseline`.

pub mod baseline;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod pairing;
pub mod rules;
pub mod source;

use diag::{Diagnostic, Severity};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Run options.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Rewrite `baseline.toml` from current baseline-rule findings
    /// (preserving justifications of entries that still match).
    pub fix_baseline: bool,
}

/// The outcome of a check run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that fail the check, sorted by (file, line).
    pub failures: Vec<Diagnostic>,
    /// Waived findings per rule id.
    pub waived: BTreeMap<String, usize>,
    /// Findings absorbed by the committed baseline.
    pub baseline_covered: usize,
    /// Stale baseline entries (fail the check unless `--fix-baseline`).
    pub stale_baseline: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Where the regenerated baseline was written, if `fix_baseline`.
    pub wrote_baseline: Option<PathBuf>,
    /// Configuration / IO errors (missing pairing map, unparseable
    /// baseline) — always failures.
    pub errors: Vec<String>,
}

impl Report {
    /// Did the check pass?
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.stale_baseline.is_empty() && self.errors.is_empty()
    }
}

/// Collect the `.rs` files under the configured scan roots, sorted.
pub fn scan_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for sr in config::SCAN_ROOTS {
        let dir = root.join(sr);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Load + parse every scanned file. Public for the fixture tests.
pub fn load_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    scan_files(root)?
        .iter()
        .map(|p| SourceFile::load(root, p))
        .collect()
}

/// Run all rules over `sources` (no baseline/waiver handling) — the raw
/// diagnostic stream, used by the fixture tests and [`run`].
pub fn run_rules(sources: &[SourceFile], pairing: pairing::PairingMap) -> Vec<Diagnostic> {
    let mut rules = rules::all_rules(pairing);
    let mut diags = Vec::new();
    for rule in &mut rules {
        for file in sources {
            rule.check_file(file, &mut diags);
        }
        rule.finish(&mut diags);
    }
    diags
}

/// The full check: scan, run rules, apply waivers and the baseline.
pub fn run(root: &Path, opts: &Options) -> Report {
    let mut report = Report::default();

    let sources = match load_sources(root) {
        Ok(s) => s,
        Err(e) => {
            report.errors.push(format!("scanning workspace: {e}"));
            return report;
        }
    };
    report.files_scanned = sources.len();
    let by_path: BTreeMap<&str, &SourceFile> =
        sources.iter().map(|s| (s.rel_path.as_str(), s)).collect();

    let pairing_path = root.join("crates/analysis/pairing.toml");
    let pairing = match std::fs::read_to_string(&pairing_path) {
        Ok(text) => match pairing::parse(&text) {
            Ok(map) => map,
            Err(e) => {
                report.errors.push(e);
                return report;
            }
        },
        Err(e) => {
            report.errors.push(format!(
                "{}: {e} (the counter-parity rule needs it)",
                pairing_path.display()
            ));
            return report;
        }
    };

    let diags = run_rules(&sources, pairing);

    // Waiver application. Track which waivers matched so unused ones can be
    // flagged (a waiver that waives nothing is a stale claim).
    let known_rules: Vec<&'static str> = rules::all_rules(pairing::PairingMap::new())
        .iter()
        .map(|r| r.id())
        .collect();
    let mut used_waivers: BTreeMap<(String, u32), usize> = BTreeMap::new();
    let mut deny_failures = Vec::new();
    let mut baseline_candidates = Vec::new();
    for d in diags {
        let waiver = by_path
            .get(d.file.as_str())
            .and_then(|f| f.waiver_for(d.rule, d.line));
        match (d.severity, waiver) {
            (Severity::Deny, Some(w)) => {
                // The waiver is itself a violation; the finding stands too.
                deny_failures.push(Diagnostic {
                    message: format!(
                        "rule `{}` is deny-severity: waivers are not permitted (fix the \
                         site or use the rule's own annotation)",
                        d.rule
                    ),
                    line: w.line,
                    fingerprint: String::new(),
                    ..d.clone()
                });
                deny_failures.push(d);
            }
            (Severity::Deny, None) => deny_failures.push(d),
            (Severity::Baseline, Some(w)) => {
                if w.justification.trim().is_empty() {
                    deny_failures.push(Diagnostic {
                        message: format!(
                            "waiver for `{}` has no justification — write why the site \
                             is accepted",
                            d.rule
                        ),
                        ..d
                    });
                } else {
                    *used_waivers.entry((d.file.clone(), w.line)).or_insert(0) += 1;
                    *report.waived.entry(d.rule.to_string()).or_insert(0) += 1;
                }
            }
            (Severity::Baseline, None) => baseline_candidates.push(d),
        }
    }

    // Waiver hygiene: unknown rule ids and waivers that matched nothing.
    for f in &sources {
        for w in &f.waivers {
            if !known_rules.contains(&w.rule.as_str()) {
                report.errors.push(format!(
                    "{}:{}: waiver for unknown rule `{}` (known: {})",
                    f.rel_path,
                    w.line,
                    w.rule,
                    known_rules.join(", ")
                ));
            } else if !used_waivers.contains_key(&(f.rel_path.clone(), w.line)) {
                report.errors.push(format!(
                    "{}:{}: waiver for `{}` matches no finding — remove it",
                    f.rel_path, w.line, w.rule
                ));
            }
        }
    }

    // Baseline.
    let baseline_path = root.join("crates/analysis/baseline.toml");
    let previous = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(entries) => entries,
            Err(e) => {
                report.errors.push(e);
                Vec::new()
            }
        },
        Err(_) => Vec::new(), // absent baseline = empty baseline
    };

    if opts.fix_baseline {
        let fresh = baseline::from_findings(&baseline_candidates, &previous);
        let text = baseline::render(&fresh);
        match std::fs::write(&baseline_path, text) {
            Ok(()) => report.wrote_baseline = Some(baseline_path),
            Err(e) => report
                .errors
                .push(format!("writing {}: {e}", baseline_path.display())),
        }
        report.baseline_covered = baseline_candidates.len();
    } else {
        let outcome = baseline::apply(&previous, baseline_candidates);
        report.baseline_covered = outcome.covered;
        report.stale_baseline = outcome.stale;
        deny_failures.extend(outcome.uncovered);
    }

    deny_failures.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.failures = deny_failures;
    report
}
