//! What gets scanned, and each rule's scope and severity.
//!
//! The scan set and module classifications are code, not configuration
//! files, on purpose: changing them shows up in review as a diff to this
//! crate, next to the rule whose reach it changes.

/// Crate `src/` trees scanned by the pass. `crates/compat/**` is excluded:
/// those are offline API stubs of external crates (serde, rand, criterion,
/// proptest) — vendored surface, not this repo's data plane.
pub const SCAN_ROOTS: &[&str] = &[
    "src",
    "crates/types/src",
    "crates/metrics/src",
    "crates/stream/src",
    "crates/exec/src",
    "crates/core/src",
    "crates/plan/src",
    "crates/runtime/src",
    "crates/durable/src",
    "crates/engine/src",
    "crates/serve/src",
    "crates/harness/src",
    "crates/bench/src",
    "crates/analysis/src",
];

/// Data-plane trees where the default (SipHash) hasher is banned
/// (rule `default-hasher`): maps here are probed per arriving tuple, and
/// PR 8 measured the SipHash tax at real multiples. Keys come from the data
/// plane of a trusted process, so `FastMap` / `FastSet` apply.
pub const DATA_PLANE_PREFIXES: &[&str] = &[
    "crates/types/src",
    "crates/exec/src",
    "crates/core/src",
    "crates/runtime/src",
    "crates/serve/src",
];

/// Trees allowed to read wall clocks / OS randomness (rule `determinism`).
/// Everything else must be deterministic so checkpoint/recovery replay and
/// the shard-equivalence suites stay exact.
pub const DETERMINISM_ALLOWED_PREFIXES: &[&str] = &[
    // Wall-clock throughput reporting is the crate's purpose.
    "crates/metrics/src",
    // Benchmarks time themselves by definition.
    "crates/bench/src",
    // Harness drives wall-clock figure sweeps.
    "crates/harness/src",
    // Checkpoint writes record wall-clock duration as an operational stat
    // (never fed back into the data plane).
    "crates/durable/src/checkpoint.rs",
];

/// Trees audited for counter-accounting parity (rule `counter-parity`):
/// the operator data plane, where every cost counter must be charged
/// identically on the tuple and batch paths.
pub const COUNTER_SCOPE_PREFIXES: &[&str] = &["crates/exec/src", "crates/core/src"];

/// Trees audited for lock/channel discipline (rule `lock-order`): the
/// sharded backend, where the PR 1 deadlock class lived.
pub const LOCK_SCOPE_PREFIXES: &[&str] =
    &["crates/runtime/src", "crates/exec/src", "crates/serve/src"];

/// Is `rel_path` under any of `prefixes`?
pub fn under(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| rel_path == *p || rel_path.starts_with(&format!("{p}/")))
}

/// Is `rel_path` library code (rule `panic-hygiene` scope)? Binary targets
/// (`src/bin/**`, `main.rs`) may exit noisily; libraries must not.
pub fn is_library_code(rel_path: &str) -> bool {
    !rel_path.contains("/bin/") && !rel_path.ends_with("main.rs")
}
