//! The committed allowlist baseline (`crates/analysis/baseline.toml`).
//!
//! Pre-existing accepted findings of *baseline-severity* rules are pinned
//! here so `check` stays green on them while any **new** violation fails
//! CI. Entries are content-addressed by `(rule, file, fingerprint)` — the
//! fingerprint is the trimmed source line — so they survive unrelated line
//! drift but die with the code they describe (a stale entry is itself an
//! error, keeping the baseline tight).
//!
//! The format is a strict, hand-parsed TOML subset (this crate is
//! dependency-free): `[[entry]]` tables with `key = "value"` string pairs.

use crate::diag::Diagnostic;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One pinned finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    /// Trimmed text of the offending line.
    pub fingerprint: String,
    /// How many matching findings this entry covers (several identical
    /// lines in one file collapse into one entry).
    pub count: usize,
    /// Why the site is accepted. `--fix-baseline` writes a placeholder;
    /// review is expected to replace it with a real justification.
    pub justification: String,
}

/// Parse `baseline.toml` text.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    let mut cur: Option<Entry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[entry]]" {
            if let Some(e) = cur.take() {
                entries.push(finish(e, idx)?);
            }
            cur = Some(Entry {
                rule: String::new(),
                file: String::new(),
                fingerprint: String::new(),
                count: 1,
                justification: String::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "baseline.toml line {}: expected `key = value`",
                idx + 1
            ));
        };
        let entry = cur
            .as_mut()
            .ok_or_else(|| format!("baseline.toml line {}: key outside [[entry]]", idx + 1))?;
        let key = key.trim();
        let value = value.trim();
        match key {
            "count" => {
                entry.count = value
                    .parse()
                    .map_err(|_| format!("baseline.toml line {}: bad count", idx + 1))?;
            }
            _ => {
                let value = unquote(value).ok_or_else(|| {
                    format!("baseline.toml line {}: expected quoted string", idx + 1)
                })?;
                match key {
                    "rule" => entry.rule = value,
                    "file" => entry.file = value,
                    "fingerprint" => entry.fingerprint = value,
                    "justification" => entry.justification = value,
                    other => {
                        return Err(format!(
                            "baseline.toml line {}: unknown key `{other}`",
                            idx + 1
                        ))
                    }
                }
            }
        }
    }
    if let Some(e) = cur.take() {
        entries.push(finish(e, 0)?);
    }
    Ok(entries)
}

fn finish(e: Entry, line_hint: usize) -> Result<Entry, String> {
    if e.rule.is_empty() || e.file.is_empty() || e.fingerprint.is_empty() {
        return Err(format!(
            "baseline.toml (near line {}): entry missing rule/file/fingerprint",
            line_hint + 1
        ));
    }
    if e.justification.trim().is_empty() {
        return Err(format!(
            "baseline.toml: entry for {}:{} has no justification — every pinned \
             site must say why it is accepted",
            e.file, e.rule
        ));
    }
    Ok(e)
}

fn unquote(v: &str) -> Option<String> {
    let v = v.strip_prefix('"')?.strip_suffix('"')?;
    // Reverse the escaping in `quote`.
    Some(v.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn quote(v: &str) -> String {
    format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Serialise entries, stable-sorted, with a header explaining the contract.
pub fn render(entries: &[Entry]) -> String {
    let mut sorted: Vec<&Entry> = entries.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.rule, &a.file, &a.fingerprint).cmp(&(&b.rule, &b.file, &b.fingerprint))
    });
    let mut out = String::from(
        "# jit-analysis baseline — pre-existing accepted findings, pinned.\n\
         # New violations are NOT covered: only (rule, file, fingerprint)\n\
         # triples listed here pass `check`. Regenerate with\n\
         # `cargo run -p jit-analysis -- check --fix-baseline`, then edit the\n\
         # justification of any new entry (placeholders are fine for the tool\n\
         # but not for review). Deny-severity rules can never be pinned here.\n",
    );
    for e in sorted {
        let _ = write!(
            out,
            "\n[[entry]]\nrule = {}\nfile = {}\nfingerprint = {}\ncount = {}\njustification = {}\n",
            quote(&e.rule),
            quote(&e.file),
            quote(&e.fingerprint),
            e.count,
            quote(&e.justification),
        );
    }
    out
}

/// The result of matching findings against a baseline.
pub struct MatchOutcome {
    /// Findings not covered by the baseline — these fail the check.
    pub uncovered: Vec<Diagnostic>,
    /// Findings absorbed by a baseline entry.
    pub covered: usize,
    /// Entries (rule, file, fingerprint) that matched nothing or fewer
    /// findings than their count — stale, must be pruned.
    pub stale: Vec<String>,
}

/// Match baseline-severity findings against the committed entries.
pub fn apply(entries: &[Entry], findings: Vec<Diagnostic>) -> MatchOutcome {
    let mut budget: HashMap<(String, String, String), usize> = HashMap::new();
    for e in entries {
        *budget
            .entry((e.rule.clone(), e.file.clone(), e.fingerprint.clone()))
            .or_insert(0) += e.count;
    }
    let mut uncovered = Vec::new();
    let mut covered = 0usize;
    for d in findings {
        let key = (d.rule.to_string(), d.file.clone(), d.fingerprint.clone());
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                covered += 1;
            }
            _ => uncovered.push(d),
        }
    }
    let stale = budget
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|((rule, file, fp), n)| format!("{file}: [{rule}] `{fp}` (unused x{n})"))
        .collect();
    MatchOutcome {
        uncovered,
        covered,
        stale,
    }
}

/// Build a fresh baseline from current findings (the `--fix-baseline`
/// path), carrying forward justifications from `previous` where the triple
/// still matches.
pub fn from_findings(findings: &[Diagnostic], previous: &[Entry]) -> Vec<Entry> {
    let mut counts: HashMap<(String, String, String), usize> = HashMap::new();
    for d in findings {
        *counts
            .entry((d.rule.to_string(), d.file.clone(), d.fingerprint.clone()))
            .or_insert(0) += 1;
    }
    let mut out: Vec<Entry> = counts
        .into_iter()
        .map(|((rule, file, fingerprint), count)| {
            let justification = previous
                .iter()
                .find(|e| e.rule == rule && e.file == file && e.fingerprint == fingerprint)
                .map(|e| e.justification.clone())
                .unwrap_or_else(|| {
                    "pinned by --fix-baseline (replace with a real justification in review)"
                        .to_string()
                });
            Entry {
                rule,
                file,
                fingerprint,
                count,
                justification,
            }
        })
        .collect();
    out.sort_by(|a, b| (&a.rule, &a.file, &a.fingerprint).cmp(&(&b.rule, &b.file, &b.fingerprint)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn diag(rule: &'static str, file: &str, fp: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Baseline,
            file: file.into(),
            line: 1,
            message: "m".into(),
            fingerprint: fp.into(),
        }
    }

    #[test]
    fn round_trip() {
        let entries = vec![Entry {
            rule: "default-hasher".into(),
            file: "crates/types/src/hash.rs".into(),
            fingerprint: "use std::collections::HashMap;".into(),
            count: 2,
            justification: "definition site of FastMap".into(),
        }];
        let text = render(&entries);
        let back = parse(&text).expect("parses");
        assert_eq!(back, entries);
    }

    #[test]
    fn quoting_survives_quotes_and_backslashes() {
        let entries = vec![Entry {
            rule: "r".into(),
            file: "f".into(),
            fingerprint: r#"let s = "a\\b";"#.into(),
            count: 1,
            justification: "j".into(),
        }];
        let back = parse(&render(&entries)).expect("parses");
        assert_eq!(back, entries);
    }

    #[test]
    fn missing_justification_rejected() {
        let text = "[[entry]]\nrule = \"r\"\nfile = \"f\"\nfingerprint = \"x\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn apply_covers_counts_and_flags_stale() {
        let entries = vec![Entry {
            rule: "lock-order".into(),
            file: "a.rs".into(),
            fingerprint: "mpsc::channel()".into(),
            count: 2,
            justification: "j".into(),
        }];
        // One finding -> covered, but one budget slot unused -> stale.
        let out = apply(
            &entries,
            vec![diag("lock-order", "a.rs", "mpsc::channel()")],
        );
        assert_eq!(out.covered, 1);
        assert!(out.uncovered.is_empty());
        assert_eq!(out.stale.len(), 1);

        // A finding with no entry is uncovered.
        let out = apply(
            &entries,
            vec![diag("lock-order", "b.rs", "mpsc::channel()")],
        );
        assert_eq!(out.uncovered.len(), 1);
    }

    #[test]
    fn fix_baseline_preserves_justifications() {
        let prev = vec![Entry {
            rule: "lock-order".into(),
            file: "a.rs".into(),
            fingerprint: "mpsc::channel()".into(),
            count: 1,
            justification: "result path must be unbounded".into(),
        }];
        let fresh = from_findings(&[diag("lock-order", "a.rs", "mpsc::channel()")], &prev);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].justification, "result path must be unbounded");
    }
}
