//! CLI for the in-repo static-analysis pass.
//!
//! ```text
//! cargo run -p jit-analysis -- check                 # the CI gate
//! cargo run -p jit-analysis -- check --fix-baseline  # pin current findings
//! cargo run -p jit-analysis -- rules                 # list the catalog
//! cargo run -p jit-analysis -- dump-pairing          # pairing.toml skeleton
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut fix_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "rules" | "dump-pairing" if cmd.is_none() => cmd = Some(a.clone()),
            "--fix-baseline" => fix_baseline = true,
            "--root" => root = it.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let Some(cmd) = cmd else {
        return usage();
    };
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("could not find the workspace root (no Cargo.toml with [workspace] above the current directory); pass --root");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "rules" => {
            for rule in jit_analysis::rules::all_rules(Default::default()) {
                println!(
                    "{:<16} {:<9} {}",
                    rule.id(),
                    rule.severity().to_string(),
                    rule.describe()
                );
            }
            ExitCode::SUCCESS
        }
        "dump-pairing" => match jit_analysis::load_sources(&root) {
            Ok(sources) => {
                print!("{}", jit_analysis::rules::dump_pairing_skeleton(&sources));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("scanning workspace: {e}");
                ExitCode::FAILURE
            }
        },
        "check" => {
            let report = jit_analysis::run(&root, &jit_analysis::Options { fix_baseline });
            for f in &report.failures {
                println!("{f}");
            }
            for s in &report.stale_baseline {
                println!("baseline.toml: stale entry — {s}");
            }
            for e in &report.errors {
                println!("error: {e}");
            }
            let waived: usize = report.waived.values().sum();
            println!(
                "jit-analysis: {} files, {} violation(s), {} waived, {} baselined{}",
                report.files_scanned,
                report.failures.len(),
                waived,
                report.baseline_covered,
                if report.stale_baseline.is_empty() {
                    String::new()
                } else {
                    format!(", {} stale baseline entr(ies)", report.stale_baseline.len())
                }
            );
            for (rule, n) in &report.waived {
                println!("  waivers[{rule}] = {n}");
            }
            if let Some(p) = &report.wrote_baseline {
                println!("wrote {}", p.display());
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: jit-analysis <check [--fix-baseline] | rules | dump-pairing> [--root DIR]");
    ExitCode::FAILURE
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
