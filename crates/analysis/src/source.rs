//! Per-file source model: token stream plus the scope facts rules need.
//!
//! A single pass over the token stream computes, for every token, the
//! innermost enclosing function name and whether the token sits inside
//! test-only code (`#[cfg(test)] mod …`, `#[test]` / `#[cfg(test)]`
//! functions). Comments are indexed by line so rules can look for
//! `// SAFETY:` / `// INVARIANT:` annotations and waivers near a site.

use crate::lexer::{lex, Comment, Token};
use std::collections::BTreeMap;
use std::path::Path;

/// A waiver comment: `// jit-analysis: allow(rule-id): justification`.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub justification: String,
    pub line: u32,
}

/// One scanned file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts —
    /// used in diagnostics, the baseline and the pairing map).
    pub rel_path: String,
    pub tokens: Vec<Token>,
    /// Per-token scope facts, same length as `tokens`.
    pub scopes: Vec<ScopeInfo>,
    /// Comments grouped by starting line.
    comments_by_line: BTreeMap<u32, Vec<Comment>>,
    /// Lines covered by a comment that spans multiple lines (block comments):
    /// maps every covered line to the comment's text.
    block_cover: BTreeMap<u32, String>,
    /// Parsed waivers.
    pub waivers: Vec<Waiver>,
    /// Raw source lines (for fingerprints).
    pub lines: Vec<String>,
}

/// Scope facts for one token.
#[derive(Debug, Clone, Default)]
pub struct ScopeInfo {
    /// Innermost enclosing `fn` name, if any.
    pub fn_name: Option<String>,
    /// Inside `#[cfg(test)]` module or `#[test]`-attributed item.
    pub in_test: bool,
}

impl SourceFile {
    /// Lex and scope-scan `src`.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let scopes = compute_scopes(&lexed.tokens);
        let mut comments_by_line: BTreeMap<u32, Vec<Comment>> = BTreeMap::new();
        let mut block_cover = BTreeMap::new();
        let mut waivers = Vec::new();
        for c in &lexed.comments {
            for w in parse_waivers(c) {
                waivers.push(w);
            }
            let span = c.text.matches('\n').count() as u32;
            for l in c.line..=c.line + span {
                block_cover.insert(l, c.text.clone());
            }
            comments_by_line.entry(c.line).or_default().push(c.clone());
        }
        SourceFile {
            rel_path: rel_path.to_string(),
            tokens: lexed.tokens,
            scopes,
            comments_by_line,
            block_cover,
            waivers,
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    /// Read and parse a file from disk; `root` anchors the relative path.
    pub fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::parse(&rel, &src))
    }

    /// Is any comment text containing `needle` present on `line` or within
    /// the `lookback` lines directly above it? Block comments count on
    /// every line they cover.
    pub fn annotated_near(&self, line: u32, needle: &str, lookback: u32) -> bool {
        let from = line.saturating_sub(lookback);
        for l in from..=line {
            if let Some(text) = self.block_cover.get(&l) {
                if text.contains(needle) {
                    return true;
                }
            }
            if let Some(cs) = self.comments_by_line.get(&l) {
                if cs.iter().any(|c| c.text.contains(needle)) {
                    return true;
                }
            }
        }
        false
    }

    /// Find a waiver for `rule` on `line` or up to two lines above.
    pub fn waiver_for(&self, rule: &str, line: u32) -> Option<&Waiver> {
        self.waivers
            .iter()
            .find(|w| w.rule == rule && w.line <= line && w.line + 2 >= line)
    }

    /// The trimmed source text of a 1-based line — the baseline fingerprint
    /// (content-addressed, so entries survive unrelated line drift).
    pub fn fingerprint(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

fn parse_waivers(c: &Comment) -> Vec<Waiver> {
    let mut out = Vec::new();
    // Doc comments (`///`, `//!`, `/**`) never carry waivers — they are
    // documentation *about* the syntax, not claims about adjacent code.
    if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/**") {
        return out;
    }
    for (line, text) in (c.line..).zip(c.text.split('\n')) {
        if let Some(idx) = text.find("jit-analysis: allow(") {
            let rest = &text[idx + "jit-analysis: allow(".len()..];
            if let Some(close) = rest.find(')') {
                let rule = rest[..close].trim().to_string();
                let after = rest[close + 1..]
                    .trim_start_matches([':', ' ', '-'])
                    .trim()
                    .to_string();
                out.push(Waiver {
                    rule,
                    justification: after,
                    line,
                });
            }
        }
    }
    out
}

/// The scope pass. A pre-pass marks attribute spans (`#[…]` / `#![…]`) that
/// mention the ident `test`; the main pass tracks a brace stack where a
/// frame may carry a function name and/or a test marker. `#[cfg(test)]` /
/// `#[test]` attributes arm a pending test flag applied to the next item's
/// frame, so everything inside a `#[cfg(test)] mod` or a `#[test]` fn is
/// classified as test code.
fn compute_scopes(tokens: &[Token]) -> Vec<ScopeInfo> {
    // Pre-pass: token indexes where a test-mentioning attribute starts, and
    // the span of every attribute (so its brackets never confuse the main
    // pass — attribute bodies can contain `fn` in doc aliases etc.).
    let mut attr_span = vec![false; tokens.len()]; // token is inside an attr
    let mut test_attr_start = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') {
            let mut j = i + 1;
            if tokens.get(j).map(|t| t.is_punct('!')).unwrap_or(false) {
                j += 1;
            }
            if tokens.get(j).map(|t| t.is_punct('[')).unwrap_or(false) {
                let mut depth = 0usize;
                let mut mentions_test = false;
                let start = i;
                while j < tokens.len() {
                    if tokens[j].is_punct('[') {
                        depth += 1;
                    } else if tokens[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if tokens[j].is_ident("test") {
                        mentions_test = true;
                    }
                    j += 1;
                }
                for flag in &mut attr_span[start..=j.min(tokens.len() - 1)] {
                    *flag = true;
                }
                if mentions_test {
                    test_attr_start[start] = true;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }

    #[derive(Clone)]
    struct Frame {
        fn_name: Option<String>,
        test: bool,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut out = Vec::with_capacity(tokens.len());
    // Armed by `fn ident` until its body `{` opens.
    let mut pending_fn: Option<String> = None;
    // Armed by a test attribute until the next `{` opens an item body.
    let mut pending_test = false;

    for (i, t) in tokens.iter().enumerate() {
        out.push(ScopeInfo {
            fn_name: pending_fn
                .clone()
                .or_else(|| stack.iter().rev().find_map(|f| f.fn_name.clone())),
            in_test: pending_test || stack.iter().any(|f| f.test),
        });

        if test_attr_start[i] {
            pending_test = true;
        }
        if attr_span[i] {
            continue;
        }

        if t.is_ident("fn") {
            // `fn name` — `fn(…)` pointer types have no name and are skipped.
            if let Some(name) = tokens
                .get(i + 1)
                .filter(|n| matches!(n.kind, crate::lexer::TokenKind::Ident))
            {
                pending_fn = Some(name.text.clone());
            }
        } else if t.is_punct('{') {
            stack.push(Frame {
                fn_name: pending_fn.take(),
                test: pending_test,
            });
            pending_test = false;
        } else if t.is_punct('}') {
            stack.pop();
        } else if t.is_punct(';') && stack.last().map(|f| f.fn_name.is_none()).unwrap_or(true) {
            // An item ended without a body (a `use`, a trait-method
            // declaration): clear pending state. Statement semicolons inside
            // a fn body leave the pending flags alone (they are already
            // consumed by the body's `{`).
            pending_fn = None;
            pending_test = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("lib.rs", src)
    }

    fn scope_of<'a>(f: &'a SourceFile, ident: &str) -> &'a ScopeInfo {
        let idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        &f.scopes[idx]
    }

    #[test]
    fn fn_scopes_nest() {
        let f = sf("fn outer() { marker_a; fn inner() { marker_b; } marker_c; }");
        assert_eq!(scope_of(&f, "marker_a").fn_name.as_deref(), Some("outer"));
        assert_eq!(scope_of(&f, "marker_b").fn_name.as_deref(), Some("inner"));
        assert_eq!(scope_of(&f, "marker_c").fn_name.as_deref(), Some("outer"));
    }

    #[test]
    fn cfg_test_mod_is_test() {
        let f = sf("fn lib_code() { a; }\n#[cfg(test)]\nmod tests { fn t() { b; } }");
        assert!(!scope_of(&f, "a").in_test);
        assert!(scope_of(&f, "b").in_test);
    }

    #[test]
    fn test_attr_fn_is_test() {
        let f = sf("#[test]\nfn check() { x; }\nfn lib() { y; }");
        assert!(scope_of(&f, "x").in_test);
        assert!(!scope_of(&f, "y").in_test);
    }

    #[test]
    fn cfg_all_test_detected() {
        let f = sf("#[cfg(all(test, feature = \"x\"))]\nmod m { fn t() { z; } }");
        assert!(scope_of(&f, "z").in_test);
    }

    #[test]
    fn waiver_parsing() {
        let f = sf("// jit-analysis: allow(default-hasher): definition site\nuse x;\n");
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].rule, "default-hasher");
        assert_eq!(f.waivers[0].justification, "definition site");
        assert!(f.waiver_for("default-hasher", 2).is_some());
        assert!(f.waiver_for("default-hasher", 5).is_none());
        assert!(f.waiver_for("determinism", 2).is_none());
    }

    #[test]
    fn annotations_near() {
        let f = sf("// SAFETY: slot is live\nlet x = 1;\nlet y = 2;\n");
        assert!(f.annotated_near(2, "SAFETY:", 1));
        assert!(!f.annotated_near(3, "SAFETY:", 1));
        assert!(f.annotated_near(3, "SAFETY:", 2));
    }

    #[test]
    fn use_clears_pending_fn() {
        // A trait method *declaration* must not leak its name onto the next
        // body.
        let f = sf("trait T { fn decl(&self); }\nfn real() { m; }");
        assert_eq!(scope_of(&f, "m").fn_name.as_deref(), Some("real"));
    }

    #[test]
    fn fingerprints_trim() {
        let f = sf("fn a() {\n    let x = y.unwrap();\n}\n");
        assert_eq!(f.fingerprint(2), "let x = y.unwrap();");
    }
}
