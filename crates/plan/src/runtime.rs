//! End-to-end query runtime: workload → plan → execution → outcome.

use crate::builder::build_tree_plan;
use crate::shapes::PlanShape;
use jit_core::policy::ExecutionMode;
use jit_exec::executor::{Executor, ExecutorConfig};
use jit_exec::plan::PlanError;
use jit_metrics::MetricsSnapshot;
use jit_stream::{Trace, WorkloadGenerator, WorkloadSpec};
use jit_types::Tuple;

/// The outcome of one query execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The execution mode that produced this outcome.
    pub mode_label: &'static str,
    /// Final results (empty if collection was disabled).
    pub results: Vec<Tuple>,
    /// Number of final results emitted (counted even without collection).
    pub results_count: u64,
    /// Temporal-order violations observed at the sink (0 for a correct run).
    pub order_violations: u64,
    /// Metrics snapshot (cost units, wall time, peak memory, counters).
    pub snapshot: MetricsSnapshot,
}

/// The original one-shot batch driver, kept as the *legacy* entry point.
///
/// New code should prefer `jit_engine::Engine`, the push-based API that
/// serves the same plans through either the single-threaded executor or the
/// sharded runtime by configuration alone. `QueryRuntime` survives
/// deliberately un-rebased: it drives the `Executor` directly, which makes
/// it the independent oracle the cross-backend equivalence tests compare
/// the engine against.
#[derive(Debug, Default, Clone, Copy)]
pub struct QueryRuntime;

impl QueryRuntime {
    /// Generate the workload described by `spec` and execute it on the given
    /// plan shape under the given mode.
    pub fn run(
        spec: &WorkloadSpec,
        shape: &PlanShape,
        mode: ExecutionMode,
        config: ExecutorConfig,
    ) -> Result<RunOutcome, PlanError> {
        let trace = WorkloadGenerator::generate(spec);
        Self::run_trace(&trace, spec, shape, mode, config)
    }

    /// Execute a pre-generated trace (so REF / DOE / JIT see identical input).
    pub fn run_trace(
        trace: &Trace,
        spec: &WorkloadSpec,
        shape: &PlanShape,
        mode: ExecutionMode,
        config: ExecutorConfig,
    ) -> Result<RunOutcome, PlanError> {
        let plan = build_tree_plan(shape, &spec.predicates(), spec.window(), mode)?;
        let mut executor = Executor::new(plan, config);
        for event in trace.iter() {
            executor.ingest(event.source, event.tuple.clone());
        }
        let results_count = executor.results_count();
        let order_violations = executor.order_violations();
        let (results, snapshot) = executor.finish();
        Ok(RunOutcome {
            mode_label: mode.label(),
            results,
            results_count,
            order_violations,
            snapshot,
        })
    }

    /// Run the same trace under several modes and return the outcomes in the
    /// same order.
    pub fn compare(
        spec: &WorkloadSpec,
        shape: &PlanShape,
        modes: &[ExecutionMode],
        config: ExecutorConfig,
    ) -> Result<Vec<RunOutcome>, PlanError> {
        let trace = WorkloadGenerator::generate(spec);
        modes
            .iter()
            .map(|mode| Self::run_trace(&trace, spec, shape, *mode, config.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_core::policy::JitPolicy;
    use jit_exec::output;
    use jit_types::Duration;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::bushy_default()
            .with_sources(3)
            .with_rate(1.0)
            .with_dmax(10)
            .with_window_minutes(2.0)
            .with_duration(Duration::from_secs(180))
            .with_seed(11)
    }

    #[test]
    fn ref_and_jit_agree_on_results() {
        let spec = small_spec();
        let shape = PlanShape::left_deep(3);
        let outcomes = QueryRuntime::compare(
            &spec,
            &shape,
            &[
                ExecutionMode::Ref,
                ExecutionMode::Jit(JitPolicy::full()),
                ExecutionMode::Doe,
            ],
            ExecutorConfig::default(),
        )
        .unwrap();
        let [ref_run, jit_run, doe_run] = &outcomes[..] else {
            panic!("expected three outcomes");
        };
        assert!(ref_run.results_count > 0, "workload produced no results");
        assert!(output::same_results(&ref_run.results, &jit_run.results));
        assert!(output::same_results(&ref_run.results, &doe_run.results));
        assert_eq!(jit_run.order_violations, 0);
        assert!(!output::has_duplicates(&jit_run.results));
    }

    #[test]
    fn jit_costs_less_than_ref_on_selective_workload() {
        // High selectivity (large dmax relative to window content) is where
        // the paper's savings come from.
        let spec = WorkloadSpec::bushy_default()
            .with_sources(4)
            .with_rate(1.0)
            .with_dmax(200)
            .with_window_minutes(5.0)
            .with_duration(Duration::from_secs(300))
            .with_seed(3);
        let shape = PlanShape::bushy(4);
        let outcomes = QueryRuntime::compare(
            &spec,
            &shape,
            &[ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())],
            ExecutorConfig {
                collect_results: false,
                check_temporal_order: true,
            },
        )
        .unwrap();
        let (ref_run, jit_run) = (&outcomes[0], &outcomes[1]);
        assert!(
            jit_run.snapshot.stats.intermediate_produced
                <= ref_run.snapshot.stats.intermediate_produced
        );
        assert!(jit_run.snapshot.stats.intermediate_suppressed > 0);
    }

    #[test]
    fn mode_labels_are_propagated() {
        let spec = small_spec().with_duration(Duration::from_secs(30));
        let out = QueryRuntime::run(
            &spec,
            &PlanShape::left_deep(3),
            ExecutionMode::Ref,
            ExecutorConfig::default(),
        )
        .unwrap();
        assert_eq!(out.mode_label, "REF");
    }
}
