//! Plan shapes (Table II of the paper).
//!
//! The evaluation uses two families of binary join trees over `N` sources:
//!
//! | N | Bushy plan | Left-deep plan |
//! |---|---|---|
//! | 3 | — | `(A⋈B)⋈C` |
//! | 4 | `(A⋈B)⋈(C⋈D)` | `((A⋈B)⋈C)⋈D` |
//! | 5 | `((A⋈B)⋈(C⋈D))⋈E` | `(((A⋈B)⋈C)⋈D)⋈E` |
//! | 6 | `((A⋈B)⋈(C⋈D))⋈(E⋈F)` | `((((A⋈B)⋈C)⋈D)⋈E)⋈F` |
//! | 7 | `((A⋈B)⋈(C⋈D))⋈((E⋈F)⋈G)` | — |
//! | 8 | `((A⋈B)⋈(C⋈D))⋈((E⋈F)⋈(G⋈H))` | — |

use jit_types::{SourceId, SourceSet};
use serde::{Deserialize, Serialize};

/// Which family of binary tree to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeShape {
    /// Balanced plans pairing sources first (Table II, middle column).
    Bushy,
    /// Linear plans extending one source at a time (Table II, right column).
    LeftDeep,
}

/// What feeds one input of a join node while describing a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanInput {
    /// A raw source, by index.
    Source(usize),
    /// The output of an earlier join node, by index into the node list.
    Node(usize),
}

/// One binary join of the shape. Nodes are listed bottom-up; the last node is
/// the root (the query's output operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinNode {
    /// Left input.
    pub left: PlanInput,
    /// Right input.
    pub right: PlanInput,
}

/// A plan shape: tree family + number of sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanShape {
    /// Bushy or left-deep.
    pub shape: TreeShape,
    /// Number of streaming sources `N`.
    pub num_sources: usize,
}

impl PlanShape {
    /// A bushy plan over `n` sources (Table II supports 3 ≤ n ≤ 8).
    pub fn bushy(n: usize) -> Self {
        PlanShape {
            shape: TreeShape::Bushy,
            num_sources: n,
        }
    }

    /// A left-deep plan over `n` sources (n ≥ 2).
    pub fn left_deep(n: usize) -> Self {
        PlanShape {
            shape: TreeShape::LeftDeep,
            num_sources: n,
        }
    }

    /// The join nodes of the shape, bottom-up (the last node is the root).
    pub fn nodes(&self) -> Vec<JoinNode> {
        match self.shape {
            TreeShape::LeftDeep => left_deep_nodes(self.num_sources),
            TreeShape::Bushy => bushy_nodes(self.num_sources),
        }
    }

    /// Number of binary join operators in the plan (`N − 1`).
    pub fn num_joins(&self) -> usize {
        self.num_sources.saturating_sub(1)
    }

    /// The schema (set of sources) covered by each node's output, in node
    /// order. Useful when instantiating operators.
    pub fn node_schemas(&self) -> Vec<SourceSet> {
        let nodes = self.nodes();
        let mut schemas: Vec<SourceSet> = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let left = input_schema(node.left, &schemas);
            let right = input_schema(node.right, &schemas);
            schemas.push(left.union(right));
        }
        schemas
    }

    /// The schema of a given plan input, given the schemas of earlier nodes.
    pub fn input_schema(&self, input: PlanInput) -> SourceSet {
        input_schema(input, &self.node_schemas())
    }

    /// A short label like `"bushy-6"` for reports.
    pub fn label(&self) -> String {
        match self.shape {
            TreeShape::Bushy => format!("bushy-{}", self.num_sources),
            TreeShape::LeftDeep => format!("leftdeep-{}", self.num_sources),
        }
    }
}

fn input_schema(input: PlanInput, node_schemas: &[SourceSet]) -> SourceSet {
    match input {
        PlanInput::Source(i) => SourceSet::single(SourceId(i as u16)),
        PlanInput::Node(i) => node_schemas[i],
    }
}

fn left_deep_nodes(n: usize) -> Vec<JoinNode> {
    assert!(n >= 2, "a join plan needs at least two sources");
    let mut nodes = vec![JoinNode {
        left: PlanInput::Source(0),
        right: PlanInput::Source(1),
    }];
    for s in 2..n {
        nodes.push(JoinNode {
            left: PlanInput::Node(nodes.len() - 1),
            right: PlanInput::Source(s),
        });
    }
    nodes
}

fn bushy_nodes(n: usize) -> Vec<JoinNode> {
    assert!(
        (3..=8).contains(&n),
        "Table II defines bushy plans for 3 to 8 sources (got {n})"
    );
    use PlanInput::{Node, Source};
    let j = |left, right| JoinNode { left, right };
    match n {
        // (A⋈B)⋈C — with three sources the bushy and left-deep plans coincide.
        3 => vec![j(Source(0), Source(1)), j(Node(0), Source(2))],
        // (A⋈B)⋈(C⋈D)
        4 => vec![
            j(Source(0), Source(1)),
            j(Source(2), Source(3)),
            j(Node(0), Node(1)),
        ],
        // ((A⋈B)⋈(C⋈D))⋈E
        5 => vec![
            j(Source(0), Source(1)),
            j(Source(2), Source(3)),
            j(Node(0), Node(1)),
            j(Node(2), Source(4)),
        ],
        // ((A⋈B)⋈(C⋈D))⋈(E⋈F)
        6 => vec![
            j(Source(0), Source(1)),
            j(Source(2), Source(3)),
            j(Node(0), Node(1)),
            j(Source(4), Source(5)),
            j(Node(2), Node(3)),
        ],
        // ((A⋈B)⋈(C⋈D))⋈((E⋈F)⋈G)
        7 => vec![
            j(Source(0), Source(1)),
            j(Source(2), Source(3)),
            j(Node(0), Node(1)),
            j(Source(4), Source(5)),
            j(Node(3), Source(6)),
            j(Node(2), Node(4)),
        ],
        // ((A⋈B)⋈(C⋈D))⋈((E⋈F)⋈(G⋈H))
        8 => vec![
            j(Source(0), Source(1)),
            j(Source(2), Source(3)),
            j(Node(0), Node(1)),
            j(Source(4), Source(5)),
            j(Source(6), Source(7)),
            j(Node(3), Node(4)),
            j(Node(2), Node(5)),
        ],
        // INVARIANT: the assert above restricts n to 3..=8, all matched.
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_deep_has_linear_structure() {
        for n in 2..=8 {
            let shape = PlanShape::left_deep(n);
            let nodes = shape.nodes();
            assert_eq!(nodes.len(), n - 1);
            assert_eq!(shape.num_joins(), n - 1);
            // Every node beyond the first consumes the previous node.
            for (i, node) in nodes.iter().enumerate().skip(1) {
                assert_eq!(node.left, PlanInput::Node(i - 1));
            }
            // The root covers every source.
            assert_eq!(*shape.node_schemas().last().unwrap(), SourceSet::first_n(n));
        }
    }

    #[test]
    fn bushy_plans_match_table_ii() {
        for n in 3..=8 {
            let shape = PlanShape::bushy(n);
            let nodes = shape.nodes();
            assert_eq!(nodes.len(), n - 1, "N={n}");
            let schemas = shape.node_schemas();
            assert_eq!(*schemas.last().unwrap(), SourceSet::first_n(n), "N={n}");
            // Every source is consumed exactly once and every non-root node
            // is consumed exactly once.
            let mut source_uses = vec![0usize; n];
            let mut node_uses = vec![0usize; nodes.len()];
            for node in &nodes {
                for input in [node.left, node.right] {
                    match input {
                        PlanInput::Source(s) => source_uses[s] += 1,
                        PlanInput::Node(i) => node_uses[i] += 1,
                    }
                }
            }
            assert!(source_uses.iter().all(|&c| c == 1), "N={n}");
            assert!(
                node_uses[..nodes.len() - 1].iter().all(|&c| c == 1),
                "N={n}"
            );
            assert_eq!(node_uses[nodes.len() - 1], 0, "root is not consumed");
        }
    }

    #[test]
    fn bushy_6_pairs_sources_first() {
        // ((A⋈B)⋈(C⋈D))⋈(E⋈F): the first, second and fourth nodes join raw
        // sources.
        let nodes = PlanShape::bushy(6).nodes();
        assert_eq!(nodes[0].left, PlanInput::Source(0));
        assert_eq!(nodes[1].right, PlanInput::Source(3));
        assert_eq!(nodes[3].left, PlanInput::Source(4));
        assert_eq!(nodes[4].left, PlanInput::Node(2));
        assert_eq!(nodes[4].right, PlanInput::Node(3));
    }

    #[test]
    fn input_schema_resolves_sources_and_nodes() {
        let shape = PlanShape::bushy(4);
        assert_eq!(
            shape.input_schema(PlanInput::Source(2)),
            SourceSet::single(SourceId(2))
        );
        assert_eq!(
            shape.input_schema(PlanInput::Node(0)),
            SourceSet::first_n(2)
        );
    }

    #[test]
    fn labels() {
        assert_eq!(PlanShape::bushy(6).label(), "bushy-6");
        assert_eq!(PlanShape::left_deep(4).label(), "leftdeep-4");
    }

    #[test]
    #[should_panic(expected = "Table II")]
    fn bushy_out_of_range_panics() {
        PlanShape::bushy(9).nodes();
    }
}
