//! A small CQL-subset parser.
//!
//! Supports the shape of query used throughout the paper (Figure 1a):
//!
//! ```text
//! SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes], C [RANGE 5 minutes]
//! WHERE A.x = B.x AND A.y = C.y AND A.x > 200
//! ```
//!
//! i.e. a list of windowed streaming sources, equi-join conditions between
//! source columns, and comparison filters against integer constants. The
//! parser produces a [`CqlQuery`] from which the catalog, the window, the
//! join [`PredicateSet`] and any [`FilterPredicate`]s can be derived.

use jit_types::{
    Catalog, ColumnRef, CompareOp, Duration, EquiPredicate, FilterPredicate, PredicateSet, Value,
    Window,
};
use std::collections::BTreeMap;
use std::fmt;

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CqlError(pub String);

impl fmt::Display for CqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CQL parse error: {}", self.0)
    }
}

impl std::error::Error for CqlError {}

fn err(msg: impl Into<String>) -> CqlError {
    CqlError(msg.into())
}

/// A parsed continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct CqlQuery {
    /// Source names in declaration order, with their window lengths.
    pub sources: Vec<(String, Duration)>,
    /// Equi-join conditions as `(source, column, source, column)` names.
    pub equi_joins: Vec<(String, String, String, String)>,
    /// Filters as `(source, column, op, constant)`.
    pub filters: Vec<(String, String, CompareOp, i64)>,
}

impl CqlQuery {
    /// The global window: the paper assumes a single window length; we take
    /// the maximum of the declared ranges.
    pub fn window(&self) -> Window {
        let length = self
            .sources
            .iter()
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(Duration::ZERO);
        Window::new(length)
    }

    /// Build the catalog: one source per `FROM` entry, with exactly the
    /// columns mentioned in the predicates (in first-mention order).
    pub fn catalog(&self) -> Catalog {
        let mut columns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut note = |source: &str, column: &str| {
            let cols = columns.entry(source.to_string()).or_default();
            if !cols.iter().any(|c| c == column) {
                cols.push(column.to_string());
            }
        };
        for (s1, c1, s2, c2) in &self.equi_joins {
            note(s1, c1);
            note(s2, c2);
        }
        for (s, c, _, _) in &self.filters {
            note(s, c);
        }
        let mut catalog = Catalog::new();
        for (name, _) in &self.sources {
            let cols = columns.get(name).cloned().unwrap_or_default();
            catalog.add_source(name.clone(), cols);
        }
        catalog
    }

    /// The equi-join predicate set, resolved against [`CqlQuery::catalog`].
    pub fn predicates(&self) -> Result<PredicateSet, CqlError> {
        let catalog = self.catalog();
        let mut preds = PredicateSet::new();
        for (s1, c1, s2, c2) in &self.equi_joins {
            preds.push(EquiPredicate::new(
                resolve(&catalog, s1, c1)?,
                resolve(&catalog, s2, c2)?,
            ));
        }
        Ok(preds)
    }

    /// The filter predicates, resolved against [`CqlQuery::catalog`].
    pub fn filter_predicates(&self) -> Result<Vec<FilterPredicate>, CqlError> {
        let catalog = self.catalog();
        self.filters
            .iter()
            .map(|(s, c, op, v)| {
                Ok(FilterPredicate::new(
                    resolve(&catalog, s, c)?,
                    *op,
                    Value::int(*v),
                ))
            })
            .collect()
    }
}

fn resolve(catalog: &Catalog, source: &str, column: &str) -> Result<ColumnRef, CqlError> {
    let schema = catalog
        .source_by_name(source)
        .ok_or_else(|| err(format!("unknown source {source}")))?;
    schema
        .column_ref(column)
        .ok_or_else(|| err(format!("unknown column {source}.{column}")))
}

/// Parse a CQL-subset query string.
pub fn parse_cql(text: &str) -> Result<CqlQuery, CqlError> {
    let squashed = text.split_whitespace().collect::<Vec<_>>().join(" ");
    let upper = squashed.to_uppercase();
    if !upper.starts_with("SELECT * FROM ") {
        return Err(err("query must start with SELECT * FROM"));
    }
    let after_from = &squashed["SELECT * FROM ".len()..];
    let (from_part, where_part) = match upper.find(" WHERE ") {
        Some(idx) => {
            let idx = idx - "SELECT * FROM ".len();
            (
                &after_from[..idx],
                Some(&after_from[idx + " WHERE ".len()..]),
            )
        }
        None => (after_from, None),
    };

    let sources = parse_from(from_part)?;
    let mut equi_joins = Vec::new();
    let mut filters = Vec::new();
    if let Some(wp) = where_part {
        for clause in split_case_insensitive(wp, " AND ") {
            parse_clause(&clause, &mut equi_joins, &mut filters)?;
        }
    }
    if sources.is_empty() {
        return Err(err("no sources in FROM clause"));
    }
    Ok(CqlQuery {
        sources,
        equi_joins,
        filters,
    })
}

fn split_case_insensitive(text: &str, sep: &str) -> Vec<String> {
    let upper = text.to_uppercase();
    let sep_upper = sep.to_uppercase();
    let mut parts = Vec::new();
    let mut start = 0;
    while let Some(pos) = upper[start..].find(&sep_upper) {
        parts.push(text[start..start + pos].to_string());
        start += pos + sep.len();
    }
    parts.push(text[start..].to_string());
    parts
}

/// Source and column names: non-empty, alphanumeric/underscore only. This
/// is what turns "dangling" keywords into errors — `WHERE A.x = B.x AND`
/// would otherwise be read as a join against the column `"x AND"`.
fn valid_ident(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_from(text: &str) -> Result<Vec<(String, Duration)>, CqlError> {
    let mut sources: Vec<(String, Duration)> = Vec::new();
    for entry in text.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, range) = match entry.find('[') {
            Some(idx) => {
                let name = entry[..idx].trim().to_string();
                let close = entry.find(']').ok_or_else(|| err("missing ] in window"))?;
                if !entry[close + 1..].trim().is_empty() {
                    return Err(err(format!("unexpected text after window in {entry:?}")));
                }
                let range = parse_range(entry[idx + 1..close].trim())?;
                (name, range)
            }
            None => (entry.to_string(), Duration::ZERO),
        };
        if !valid_ident(&name) {
            return Err(err(format!("invalid source name {name:?}")));
        }
        // Duplicate names would silently re-bind every predicate mention to
        // the first declaration (name resolution is first-match), leaving
        // the second source unconstrained — a cross product, not a join.
        // The check is case-insensitive, like the keywords: `A` and `a` in
        // one FROM clause are far more likely a typo than two streams, and
        // cross-query canonicalization must not treat them as distinct.
        if sources.iter().any(|(n, _)| n.eq_ignore_ascii_case(&name)) {
            return Err(err(format!("duplicate source {name} in FROM clause")));
        }
        sources.push((name, range));
    }
    Ok(sources)
}

fn parse_range(text: &str) -> Result<Duration, CqlError> {
    let upper = text.to_uppercase();
    let rest = upper
        .strip_prefix("RANGE")
        .ok_or_else(|| err(format!("expected RANGE …, got {text}")))?
        .trim();
    let mut parts = rest.split_whitespace();
    let amount: f64 = parts
        .next()
        .ok_or_else(|| err("missing window length"))?
        .parse()
        .map_err(|_| err(format!("bad window length in {text}")))?;
    let unit = parts.next().unwrap_or("SECONDS");
    let duration = match unit {
        u if u.starts_with("MIN") => Duration::from_mins_f64(amount),
        u if u.starts_with("SEC") => Duration::from_secs_f64(amount),
        u if u.starts_with("HOUR") => Duration::from_mins_f64(amount * 60.0),
        u if u.starts_with("MILLI") => Duration::from_millis(amount as u64),
        other => return Err(err(format!("unknown window unit {other}"))),
    };
    Ok(duration)
}

fn parse_column(text: &str) -> Result<(String, String), CqlError> {
    let mut parts = text.trim().split('.');
    let source = parts.next().unwrap_or("").trim();
    let column = parts.next().unwrap_or("").trim();
    if !valid_ident(source) || !valid_ident(column) || parts.next().is_some() {
        return Err(err(format!("expected source.column, got {text}")));
    }
    Ok((source.to_string(), column.to_string()))
}

fn parse_clause(
    clause: &str,
    equi_joins: &mut Vec<(String, String, String, String)>,
    filters: &mut Vec<(String, String, CompareOp, i64)>,
) -> Result<(), CqlError> {
    let clause = clause.trim();
    // Find the comparison operator (longest first so <= is not read as <).
    for (symbol, op) in [
        ("<=", CompareOp::Le),
        (">=", CompareOp::Ge),
        ("<>", CompareOp::Ne),
        ("!=", CompareOp::Ne),
        ("=", CompareOp::Eq),
        ("<", CompareOp::Lt),
        (">", CompareOp::Gt),
    ] {
        if let Some(idx) = clause.find(symbol) {
            let left = clause[..idx].trim();
            let right = clause[idx + symbol.len()..].trim();
            let (ls, lc) = parse_column(left)?;
            // Right side: either a column (join) or an integer constant (filter).
            if let Ok(constant) = right.parse::<i64>() {
                filters.push((ls, lc, op, constant));
            } else {
                if op != CompareOp::Eq {
                    return Err(err(format!(
                        "only equality joins between columns are supported: {clause}"
                    )));
                }
                let (rs, rc) = parse_column(right)?;
                equi_joins.push((ls, lc, rs, rc));
            }
            return Ok(());
        }
    }
    Err(err(format!("unrecognised predicate: {clause}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE_1A: &str = "SELECT * FROM \
        A [RANGE 5 minutes], B [RANGE 5 minutes], C [RANGE 5 minutes] \
        WHERE A.x = B.x AND A.y = C.y";

    #[test]
    fn parses_figure_1a() {
        let q = parse_cql(FIGURE_1A).unwrap();
        assert_eq!(q.sources.len(), 3);
        assert_eq!(q.sources[0].0, "A");
        assert_eq!(q.sources[0].1, Duration::from_mins(5));
        assert_eq!(q.equi_joins.len(), 2);
        assert!(q.filters.is_empty());
        assert_eq!(q.window().length, Duration::from_mins(5));
        let catalog = q.catalog();
        assert_eq!(catalog.num_sources(), 3);
        // A has columns x and y; B has x; C has y.
        assert_eq!(catalog.source_by_name("A").unwrap().arity(), 2);
        assert_eq!(catalog.source_by_name("B").unwrap().arity(), 1);
        let preds = q.predicates().unwrap();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn parses_filters() {
        let q = parse_cql(
            "SELECT * FROM A [RANGE 90 seconds], B [RANGE 90 seconds] \
             WHERE A.x = B.x AND A.x > 200",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 1);
        let filters = q.filter_predicates().unwrap();
        assert_eq!(filters.len(), 1);
        assert_eq!(filters[0].op, CompareOp::Gt);
        assert_eq!(q.window().length, Duration::from_secs(90));
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_cql("select * from S [range 2 minutes] where S.a > 7").unwrap();
        assert_eq!(q.sources[0].0, "S");
        assert_eq!(q.filters.len(), 1);
    }

    #[test]
    fn fractional_and_unusual_units() {
        let q = parse_cql("SELECT * FROM A [RANGE 7.5 minutes], B [RANGE 1 hour]").unwrap();
        assert_eq!(q.sources[0].1, Duration::from_millis(450_000));
        assert_eq!(q.sources[1].1, Duration::from_mins(60));
        // Window is the maximum declared range.
        assert_eq!(q.window().length, Duration::from_mins(60));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_cql("DELETE FROM A").is_err());
        assert!(parse_cql("SELECT * FROM ").is_err());
        assert!(parse_cql("SELECT * FROM A [RANGE five minutes]").is_err());
        assert!(parse_cql("SELECT * FROM A WHERE A.x ~ B.x").is_err());
        assert!(parse_cql("SELECT * FROM A WHERE A.x < B.x").is_err());
        assert!(parse_cql("SELECT * FROM A WHERE x = y.z.w").is_err());
    }

    #[test]
    fn unknown_source_in_predicate_fails_resolution() {
        let q = parse_cql("SELECT * FROM A [RANGE 1 minutes] WHERE A.x = Z.x").unwrap();
        let e = q.predicates().unwrap_err();
        assert!(e.to_string().contains("unknown source Z"), "{e}");
        // The same applies to a filter referencing an undeclared source.
        let q = parse_cql("SELECT * FROM A [RANGE 1 minutes] WHERE Z.x > 5").unwrap();
        assert!(q.filter_predicates().is_err());
    }

    #[test]
    fn bad_range_units_are_rejected() {
        for query in [
            "SELECT * FROM A [RANGE 5 fortnights]",
            "SELECT * FROM A [RANGE 5] invalid", // trailing junk after the window
            "SELECT * FROM A [RANGE]",
            "SELECT * FROM A [5 minutes]",
            "SELECT * FROM A [RANGE 5 minutes", // unclosed window
            "SELECT * FROM A [RANGE minutes 5]",
        ] {
            assert!(parse_cql(query).is_err(), "accepted: {query}");
        }
        // Default unit (seconds) and every supported unit still parse.
        assert!(parse_cql("SELECT * FROM A [RANGE 5]").is_ok());
        for unit in ["milliseconds", "seconds", "minutes", "hours", "MIN", "sec"] {
            assert!(
                parse_cql(&format!("SELECT * FROM A [RANGE 5 {unit}]")).is_ok(),
                "rejected unit {unit}"
            );
        }
    }

    #[test]
    fn dangling_and_is_rejected() {
        // A trailing AND must not be silently glued into a column name.
        for query in [
            "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE A.x = B.x AND",
            "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE A.x = B.x AND ",
            "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE AND A.x = B.x",
            "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE A.x = B.x AND AND B.x = A.x",
        ] {
            assert!(parse_cql(query).is_err(), "accepted: {query}");
        }
    }

    #[test]
    fn duplicate_sources_are_rejected() {
        let e = parse_cql("SELECT * FROM A [RANGE 1 minutes], A [RANGE 1 minutes] WHERE A.x = A.x")
            .unwrap_err();
        assert!(e.to_string().contains("duplicate source A"), "{e}");
    }

    #[test]
    fn duplicate_sources_differing_only_in_case_are_rejected() {
        // Keywords are case-insensitive, so `A` vs `a` in one FROM clause is
        // treated as the same (duplicated) stream, not two sources.
        let e = parse_cql("SELECT * FROM A [RANGE 1 minutes], a [RANGE 1 minutes] WHERE A.x = a.x")
            .unwrap_err();
        assert!(e.to_string().contains("duplicate source a"), "{e}");
        // Distinct names that merely share a prefix still parse.
        assert!(parse_cql(
            "SELECT * FROM Ab [RANGE 1 minutes], AB2 [RANGE 1 minutes] WHERE Ab.x = AB2.x"
        )
        .is_ok());
    }

    #[test]
    fn malformed_identifiers_are_rejected() {
        // Missing comma between sources: "A B" is not a source name.
        assert!(parse_cql("SELECT * FROM A [RANGE 1 minutes] B [RANGE 1 minutes]").is_err());
        // Underscored and numbered identifiers are legal.
        let q = parse_cql(
            "SELECT * FROM sensor_1 [RANGE 1 minutes], sensor_2 [RANGE 1 minutes] \
             WHERE sensor_1.zone_id = sensor_2.zone_id",
        )
        .unwrap();
        assert_eq!(q.sources[0].0, "sensor_1");
        assert_eq!(q.equi_joins.len(), 1);
    }

    #[test]
    fn error_display() {
        let e = parse_cql("nonsense").unwrap_err();
        assert!(e.to_string().contains("CQL parse error"));
    }
}
