//! Building executable plans from shapes.

use crate::shapes::{PlanInput, PlanShape};
use jit_core::policy::ExecutionMode;
use jit_core::JitJoinOperator;
use jit_exec::eddy::{EddyOperator, RoutingPolicy};
use jit_exec::join::RefJoinOperator;
use jit_exec::mjoin::HalfJoinOperator;
use jit_exec::operator::{Operator, OperatorId};
use jit_exec::plan::{ExecutablePlan, Input, PlanBuilder, PlanError};
use jit_types::{PredicateSet, SourceId, SourceSet, Window};

/// Build an executable binary-join-tree plan for the given shape and
/// execution mode.
///
/// * [`ExecutionMode::Ref`] instantiates [`RefJoinOperator`]s (no feedback);
/// * [`ExecutionMode::Doe`] and [`ExecutionMode::Jit`] instantiate
///   [`JitJoinOperator`]s under the corresponding policy.
pub fn build_tree_plan(
    shape: &PlanShape,
    predicates: &PredicateSet,
    window: Window,
    mode: ExecutionMode,
) -> Result<ExecutablePlan, PlanError> {
    let mut builder = PlanBuilder::new();
    let mut op_ids: Vec<OperatorId> = Vec::new();
    let schemas = shape.node_schemas();
    for (idx, node) in shape.nodes().iter().enumerate() {
        let left_schema = resolve_schema(node.left, &schemas);
        let right_schema = resolve_schema(node.right, &schemas);
        let name = format!("{}⋈{}", left_schema, right_schema);
        let operator: Box<dyn Operator> = match mode.policy() {
            None => Box::new(RefJoinOperator::new(
                name,
                left_schema,
                right_schema,
                predicates.clone(),
                window,
            )),
            Some(policy) => Box::new(JitJoinOperator::new(
                name,
                left_schema,
                right_schema,
                predicates.clone(),
                window,
                policy,
            )),
        };
        let left_input = resolve_input(node.left, &op_ids);
        let right_input = resolve_input(node.right, &op_ids);
        let id = builder.add_operator(operator, vec![left_input, right_input]);
        debug_assert_eq!(id.0, idx);
        op_ids.push(id);
    }
    builder.build()
}

/// Build an M-Join plan (Figure 2a): for each source, a linear path of
/// half-join operators probing the states of the other sources. No
/// intermediate results are stored. Always runs in REF mode (the JIT
/// extension for M-Joins is discussed but not evaluated in the paper).
pub fn build_mjoin_plan(
    num_sources: usize,
    predicates: &PredicateSet,
    window: Window,
) -> Result<ExecutablePlan, PlanError> {
    let mut builder = PlanBuilder::new();
    for start in 0..num_sources {
        // The path for `start` probes the states of the other sources in
        // increasing id order.
        let mut pipeline_schema = SourceSet::single(SourceId(start as u16));
        let mut upstream: Option<OperatorId> = None;
        for other in (0..num_sources).filter(|&o| o != start) {
            let state_schema = SourceSet::single(SourceId(other as u16));
            let name = format!("{}⋉S_{}", pipeline_schema, SourceId(other as u16));
            let op = HalfJoinOperator::new(
                name,
                pipeline_schema,
                state_schema,
                predicates.clone(),
                window,
            );
            let probe_input = match upstream {
                None => Input::Source(SourceId(start as u16)),
                Some(prev) => Input::Operator(prev),
            };
            let id = builder.add_operator(
                Box::new(op),
                vec![probe_input, Input::Source(SourceId(other as u16))],
            );
            upstream = Some(id);
            pipeline_schema = pipeline_schema.union(state_schema);
        }
    }
    builder.build()
}

/// Build an Eddy plan (Figure 2b): a single n-ary operator holding one STeM
/// per source and routing arrivals adaptively.
pub fn build_eddy_plan(
    num_sources: usize,
    predicates: &PredicateSet,
    window: Window,
    policy: RoutingPolicy,
) -> Result<ExecutablePlan, PlanError> {
    let mut builder = PlanBuilder::new();
    let eddy = EddyOperator::new("eddy", num_sources, predicates.clone(), window, policy);
    let inputs = (0..num_sources)
        .map(|i| Input::Source(SourceId(i as u16)))
        .collect();
    builder.add_operator(Box::new(eddy), inputs);
    builder.build()
}

fn resolve_schema(input: PlanInput, node_schemas: &[SourceSet]) -> SourceSet {
    match input {
        PlanInput::Source(i) => SourceSet::single(SourceId(i as u16)),
        PlanInput::Node(i) => node_schemas[i],
    }
}

fn resolve_input(input: PlanInput, ops: &[OperatorId]) -> Input {
    match input {
        PlanInput::Source(i) => Input::Source(SourceId(i as u16)),
        PlanInput::Node(i) => Input::Operator(ops[i]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_core::policy::JitPolicy;

    #[test]
    fn ref_tree_plan_has_one_operator_per_join() {
        for n in 3..=8 {
            let shape = PlanShape::bushy(n);
            let plan = build_tree_plan(
                &shape,
                &PredicateSet::clique(n),
                Window::minutes(5.0),
                ExecutionMode::Ref,
            )
            .unwrap();
            assert_eq!(plan.num_operators(), n - 1);
            assert_eq!(plan.sinks().len(), 1);
        }
    }

    #[test]
    fn jit_tree_plan_uses_jit_operators() {
        let shape = PlanShape::left_deep(4);
        let plan = build_tree_plan(
            &shape,
            &PredicateSet::clique(4),
            Window::minutes(5.0),
            ExecutionMode::Jit(JitPolicy::full()),
        )
        .unwrap();
        // All operator names follow the schema⋈schema convention, and the
        // description mentions the sink.
        let desc = plan.describe();
        assert!(desc.contains("(sink)"));
        assert_eq!(plan.num_operators(), 3);
    }

    #[test]
    fn doe_mode_builds() {
        let plan = build_tree_plan(
            &PlanShape::bushy(4),
            &PredicateSet::clique(4),
            Window::minutes(5.0),
            ExecutionMode::Doe,
        )
        .unwrap();
        assert_eq!(plan.num_operators(), 3);
    }

    #[test]
    fn mjoin_plan_has_paths_per_source() {
        let plan = build_mjoin_plan(3, &PredicateSet::clique(3), Window::minutes(5.0)).unwrap();
        // 3 sources × 2 half-joins per path.
        assert_eq!(plan.num_operators(), 6);
        // The last operator of each path is a sink.
        assert_eq!(plan.sinks().len(), 3);
    }

    #[test]
    fn eddy_plan_is_single_operator() {
        let plan = build_eddy_plan(
            4,
            &PredicateSet::clique(4),
            Window::minutes(5.0),
            RoutingPolicy::SmallestStateFirst,
        )
        .unwrap();
        assert_eq!(plan.num_operators(), 1);
        assert_eq!(plan.sinks().len(), 1);
        assert_eq!(plan.source_subscribers.len(), 4);
    }
}
