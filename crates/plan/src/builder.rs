//! Building executable plans from shapes.

use crate::shapes::{PlanInput, PlanShape};
use jit_core::policy::ExecutionMode;
use jit_core::JitJoinOperator;
use jit_exec::eddy::{EddyOperator, RoutingPolicy};
use jit_exec::join::RefJoinOperator;
use jit_exec::mjoin::HalfJoinOperator;
use jit_exec::operator::{Operator, OperatorId};
use jit_exec::plan::{ExecutablePlan, Input, PlanBuilder, PlanError};
use jit_exec::selection::SelectionOperator;
use jit_exec::state::StateIndexMode;
use jit_types::{FilterPredicate, PredicateSet, SourceId, SourceSet, Window};
use std::collections::HashMap;

/// Cross-cutting plan-construction options threaded from the engine builder
/// down to every operator.
#[derive(Debug, Clone, Default)]
pub struct PlanOptions {
    /// How operator states answer probes: hash-partitioned on the equi-join
    /// key (the default) or the historical nested-loop scan.
    pub index_mode: StateIndexMode,
    /// Constant filters (`A.x > 200`): each filtered source is routed
    /// through a [`SelectionOperator`] chain before reaching its join port.
    pub filters: Vec<FilterPredicate>,
}

impl PlanOptions {
    /// Default options with an explicit index mode.
    pub fn with_index_mode(index_mode: StateIndexMode) -> Self {
        PlanOptions {
            index_mode,
            ..PlanOptions::default()
        }
    }
}

/// Build an executable binary-join-tree plan for the given shape and
/// execution mode, with default [`PlanOptions`] (hash-indexed states, no
/// filters).
///
/// * [`ExecutionMode::Ref`] instantiates [`RefJoinOperator`]s (no feedback);
/// * [`ExecutionMode::Doe`] and [`ExecutionMode::Jit`] instantiate
///   [`JitJoinOperator`]s under the corresponding policy.
pub fn build_tree_plan(
    shape: &PlanShape,
    predicates: &PredicateSet,
    window: Window,
    mode: ExecutionMode,
) -> Result<ExecutablePlan, PlanError> {
    build_tree_plan_with(shape, predicates, window, mode, &PlanOptions::default())
}

/// [`build_tree_plan`] with explicit [`PlanOptions`]: index-mode selection
/// for every operator state and per-source selection (filter) wiring.
///
/// Filters are stateless single-source conditions; each filtered source
/// feeds a [`SelectionOperator`] chain (one operator per filter, in input
/// order) whose output replaces the raw source at every join port that
/// consumed it. Selections are plan-level pre-filters in every execution
/// mode — they forward or drop, never withhold, so they need no feedback
/// handling and JIT's suspension semantics are unaffected.
pub fn build_tree_plan_with(
    shape: &PlanShape,
    predicates: &PredicateSet,
    window: Window,
    mode: ExecutionMode,
    options: &PlanOptions,
) -> Result<ExecutablePlan, PlanError> {
    let mut builder = PlanBuilder::new();
    // Group filters by source and build one selection chain per filtered
    // source; joins then consume the chain's tail instead of the raw source.
    let mut filtered_source: HashMap<u16, OperatorId> = HashMap::new();
    for filter in &options.filters {
        let source = filter.column.source;
        let input = match filtered_source.get(&source.0) {
            Some(&prev) => Input::Operator(prev),
            None => Input::Source(source),
        };
        let op = SelectionOperator::new(
            format!("σ {filter}"),
            filter.clone(),
            SourceSet::single(source),
        );
        let id = builder.add_operator(Box::new(op), vec![input]);
        filtered_source.insert(source.0, id);
    }
    let mut op_ids: Vec<OperatorId> = Vec::new();
    let schemas = shape.node_schemas();
    for node in shape.nodes().iter() {
        let left_schema = resolve_schema(node.left, &schemas);
        let right_schema = resolve_schema(node.right, &schemas);
        let name = format!("{}⋈{}", left_schema, right_schema);
        let operator: Box<dyn Operator> = match mode.policy() {
            None => Box::new(
                RefJoinOperator::new(name, left_schema, right_schema, predicates.clone(), window)
                    .with_state_index(options.index_mode),
            ),
            Some(policy) => Box::new(
                JitJoinOperator::new(
                    name,
                    left_schema,
                    right_schema,
                    predicates.clone(),
                    window,
                    policy,
                )
                .with_state_index(options.index_mode),
            ),
        };
        let left_input = resolve_input_filtered(node.left, &op_ids, &filtered_source);
        let right_input = resolve_input_filtered(node.right, &op_ids, &filtered_source);
        let id = builder.add_operator(operator, vec![left_input, right_input]);
        op_ids.push(id);
    }
    builder.build()
}

/// Build an M-Join plan (Figure 2a): for each source, a linear path of
/// half-join operators probing the states of the other sources. No
/// intermediate results are stored. Always runs in REF mode (the JIT
/// extension for M-Joins is discussed but not evaluated in the paper).
pub fn build_mjoin_plan(
    num_sources: usize,
    predicates: &PredicateSet,
    window: Window,
) -> Result<ExecutablePlan, PlanError> {
    build_mjoin_plan_with(num_sources, predicates, window, StateIndexMode::default())
}

/// [`build_mjoin_plan`] with an explicit state index mode for every
/// half-join.
pub fn build_mjoin_plan_with(
    num_sources: usize,
    predicates: &PredicateSet,
    window: Window,
    index_mode: StateIndexMode,
) -> Result<ExecutablePlan, PlanError> {
    let mut builder = PlanBuilder::new();
    for start in 0..num_sources {
        // The path for `start` probes the states of the other sources in
        // increasing id order.
        let mut pipeline_schema = SourceSet::single(SourceId(start as u16));
        let mut upstream: Option<OperatorId> = None;
        for other in (0..num_sources).filter(|&o| o != start) {
            let state_schema = SourceSet::single(SourceId(other as u16));
            let name = format!("{}⋉S_{}", pipeline_schema, SourceId(other as u16));
            let op = HalfJoinOperator::new(
                name,
                pipeline_schema,
                state_schema,
                predicates.clone(),
                window,
            )
            .with_state_index(index_mode);
            let probe_input = match upstream {
                None => Input::Source(SourceId(start as u16)),
                Some(prev) => Input::Operator(prev),
            };
            let id = builder.add_operator(
                Box::new(op),
                vec![probe_input, Input::Source(SourceId(other as u16))],
            );
            upstream = Some(id);
            pipeline_schema = pipeline_schema.union(state_schema);
        }
    }
    builder.build()
}

/// Build an Eddy plan (Figure 2b): a single n-ary operator holding one STeM
/// per source and routing arrivals adaptively.
pub fn build_eddy_plan(
    num_sources: usize,
    predicates: &PredicateSet,
    window: Window,
    policy: RoutingPolicy,
) -> Result<ExecutablePlan, PlanError> {
    build_eddy_plan_with(
        num_sources,
        predicates,
        window,
        policy,
        StateIndexMode::default(),
    )
}

/// [`build_eddy_plan`] with an explicit state index mode for every STeM.
pub fn build_eddy_plan_with(
    num_sources: usize,
    predicates: &PredicateSet,
    window: Window,
    policy: RoutingPolicy,
    index_mode: StateIndexMode,
) -> Result<ExecutablePlan, PlanError> {
    let mut builder = PlanBuilder::new();
    let eddy = EddyOperator::new("eddy", num_sources, predicates.clone(), window, policy)
        .with_state_index(index_mode);
    let inputs = (0..num_sources)
        .map(|i| Input::Source(SourceId(i as u16)))
        .collect();
    builder.add_operator(Box::new(eddy), inputs);
    builder.build()
}

fn resolve_schema(input: PlanInput, node_schemas: &[SourceSet]) -> SourceSet {
    match input {
        PlanInput::Source(i) => SourceSet::single(SourceId(i as u16)),
        PlanInput::Node(i) => node_schemas[i],
    }
}

fn resolve_input_filtered(
    input: PlanInput,
    ops: &[OperatorId],
    filtered: &HashMap<u16, OperatorId>,
) -> Input {
    match input {
        PlanInput::Source(i) => match filtered.get(&(i as u16)) {
            Some(&selection) => Input::Operator(selection),
            None => Input::Source(SourceId(i as u16)),
        },
        PlanInput::Node(i) => Input::Operator(ops[i]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_core::policy::JitPolicy;

    #[test]
    fn ref_tree_plan_has_one_operator_per_join() {
        for n in 3..=8 {
            let shape = PlanShape::bushy(n);
            let plan = build_tree_plan(
                &shape,
                &PredicateSet::clique(n),
                Window::minutes(5.0),
                ExecutionMode::Ref,
            )
            .unwrap();
            assert_eq!(plan.num_operators(), n - 1);
            assert_eq!(plan.sinks().len(), 1);
        }
    }

    #[test]
    fn jit_tree_plan_uses_jit_operators() {
        let shape = PlanShape::left_deep(4);
        let plan = build_tree_plan(
            &shape,
            &PredicateSet::clique(4),
            Window::minutes(5.0),
            ExecutionMode::Jit(JitPolicy::full()),
        )
        .unwrap();
        // All operator names follow the schema⋈schema convention, and the
        // description mentions the sink.
        let desc = plan.describe();
        assert!(desc.contains("(sink)"));
        assert_eq!(plan.num_operators(), 3);
    }

    #[test]
    fn doe_mode_builds() {
        let plan = build_tree_plan(
            &PlanShape::bushy(4),
            &PredicateSet::clique(4),
            Window::minutes(5.0),
            ExecutionMode::Doe,
        )
        .unwrap();
        assert_eq!(plan.num_operators(), 3);
    }

    #[test]
    fn mjoin_plan_has_paths_per_source() {
        let plan = build_mjoin_plan(3, &PredicateSet::clique(3), Window::minutes(5.0)).unwrap();
        // 3 sources × 2 half-joins per path.
        assert_eq!(plan.num_operators(), 6);
        // The last operator of each path is a sink.
        assert_eq!(plan.sinks().len(), 3);
    }

    #[test]
    fn eddy_plan_is_single_operator() {
        let plan = build_eddy_plan(
            4,
            &PredicateSet::clique(4),
            Window::minutes(5.0),
            RoutingPolicy::SmallestStateFirst,
        )
        .unwrap();
        assert_eq!(plan.num_operators(), 1);
        assert_eq!(plan.sinks().len(), 1);
        assert_eq!(plan.source_subscribers.len(), 4);
    }
}
