//! # jit-plan
//!
//! Query-plan construction and the end-to-end query runtime.
//!
//! * [`shapes`] — the plan shapes of Table II (bushy and left-deep binary
//!   join trees for `N = 3..8`), plus M-Join and Eddy alternatives.
//! * [`builder`] — turns a shape + predicates + window + execution mode
//!   (REF / DOE / JIT) into an executable plan of `jit-exec` operators.
//! * [`cql`] — a small CQL-subset parser for queries like the one in
//!   Figure 1a (`SELECT * FROM A [RANGE 5 minutes], … WHERE A.x = B.x …`).
//! * [`canonical`] — resolves a parsed query against a global catalog and
//!   normalizes it to a hashable [`canonical::CanonicalKey`], so a
//!   multi-query serving tier can detect queries that denote the same
//!   computation and share one pipeline between them.
//! * [`runtime`] — [`runtime::QueryRuntime`] generates (or accepts) an
//!   arrival trace and drives it through the plan, returning results and a
//!   metrics snapshot; this is the entry point examples, tests and the
//!   experiment harness all share.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod canonical;
pub mod cql;
pub mod runtime;
pub mod shapes;

pub use builder::{
    build_eddy_plan, build_eddy_plan_with, build_mjoin_plan, build_mjoin_plan_with,
    build_tree_plan, build_tree_plan_with, PlanOptions,
};
pub use canonical::{CanonicalKey, CanonicalQuery, FilterTerm};
pub use cql::{parse_cql, CqlQuery};
pub use runtime::{QueryRuntime, RunOutcome};
pub use shapes::{JoinNode, PlanInput, PlanShape, TreeShape};
