//! Cross-query canonicalization of continuous queries.
//!
//! A multi-query serving tier (see the `jit-serve` crate) accepts many CQL
//! queries over one shared set of streams and wants to detect when two of
//! them are *the same computation* — same sources in the same `FROM` order,
//! same window, same join conjunction, same constant filters — even when the
//! query texts differ superficially (clause order, predicate orientation,
//! identifier case). Such queries can then share one executing pipeline.
//!
//! [`CanonicalQuery::from_cql`] resolves a parsed query against a *global*
//! [`Catalog`] (the registry's view of the world, where `A.x` has a fixed
//! column index regardless of which query mentions it) and normalizes it to a
//! hashable [`CanonicalKey`]:
//!
//! * **sources** — the referenced global [`SourceId`]s *in `FROM` order*.
//!   The order is part of the key on purpose: the plan shape and therefore
//!   the component order of result tuples follows the `FROM` sequence, so
//!   `FROM A, B` and `FROM B, A` are different computations even though they
//!   join the same streams.
//! * **window** — the global window (maximum declared `RANGE`), matching
//!   [`CqlQuery::window`].
//! * **predicates** — equi-join conditions rewritten into *local* source ids
//!   (`0, 1, …` by `FROM` position) and *global* column indices, each
//!   oriented so the smaller column reference is on the left, then sorted
//!   and deduplicated. Clause order and `A.x = B.x` vs `B.x = A.x` no longer
//!   matter.
//! * **filters** — constant filters normalized the same way and sorted.
//!
//! Keeping local source ids in the key (rather than global ids) means a
//! pipeline built from the canonical form runs in its own dense id space:
//! the serving tier remaps each arrival's source id to the pipeline-local id
//! while sharing the untouched value vector, and global column indices keep
//! working because the values keep their global layout.

use crate::cql::{parse_cql, CqlError, CqlQuery};
use crate::shapes::PlanShape;
use jit_types::{
    Catalog, ColumnRef, CompareOp, EquiPredicate, FilterPredicate, PredicateSet, SourceId,
    SourceSchema, Value, Window,
};

/// One normalized constant-filter term (`column op constant`).
///
/// The column's `source` is pipeline-local (`FROM` position) and its
/// `column` index is global-catalog-relative, like everything else in a
/// [`CanonicalKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FilterTerm {
    /// Column being tested (local source id, global column index).
    pub column: ColumnRef,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant operand.
    pub constant: Value,
}

impl FilterTerm {
    /// View as an executable [`FilterPredicate`].
    pub fn predicate(&self) -> FilterPredicate {
        FilterPredicate::new(self.column, self.op, self.constant.clone())
    }
}

/// Rank used to order [`CompareOp`]s deterministically (the enum itself does
/// not implement `Ord`).
fn op_rank(op: CompareOp) -> u8 {
    match op {
        CompareOp::Eq => 0,
        CompareOp::Ne => 1,
        CompareOp::Lt => 2,
        CompareOp::Le => 3,
        CompareOp::Gt => 4,
        CompareOp::Ge => 5,
    }
}

/// The hashable identity of a canonicalized query.
///
/// Two queries receive equal keys iff they denote the same computation over
/// the global catalog (see the module docs for exactly what is normalized
/// away). The key is the sharing index of the serving tier's pipeline map.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalKey {
    /// Referenced global source ids, in `FROM` order.
    pub sources: Vec<SourceId>,
    /// The global window.
    pub window: Window,
    /// Normalized equi-join predicates (local source ids, global columns).
    pub predicates: Vec<EquiPredicate>,
    /// Normalized constant filters (local source ids, global columns).
    pub filters: Vec<FilterTerm>,
}

/// A query resolved against a global [`Catalog`] and reduced to canonical
/// form. Wraps a [`CanonicalKey`] with the accessors a pipeline builder
/// needs (shape, local-space predicates and filters, id remapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalQuery {
    key: CanonicalKey,
}

impl CanonicalQuery {
    /// Parse a CQL string and canonicalize it against `catalog`.
    pub fn from_cql(text: &str, catalog: &Catalog) -> Result<Self, CqlError> {
        Self::from_parsed(&parse_cql(text)?, catalog)
    }

    /// Canonicalize an already-parsed query against `catalog`.
    ///
    /// Fails if a `FROM` entry names no catalog source or a predicate
    /// references a column the catalog does not declare.
    pub fn from_parsed(query: &CqlQuery, catalog: &Catalog) -> Result<Self, CqlError> {
        let mut sources = Vec::with_capacity(query.sources.len());
        for (name, _) in &query.sources {
            sources.push(lookup_source(catalog, name)?.id);
        }

        // Local id of a name = its FROM position; names are unique per the
        // parser's duplicate check, case-insensitively.
        let local_of = |name: &str| -> Result<SourceId, CqlError> {
            query
                .sources
                .iter()
                .position(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|i| SourceId(i as u16))
                .ok_or_else(|| err(format!("unknown source {name}")))
        };
        let resolve = |source: &str, column: &str| -> Result<ColumnRef, CqlError> {
            let local = local_of(source)?;
            let schema = lookup_source(catalog, source)?;
            let col = schema
                .column_index(column)
                .ok_or_else(|| err(format!("unknown column {source}.{column}")))?;
            Ok(ColumnRef::new(local, col))
        };

        let mut predicates = Vec::with_capacity(query.equi_joins.len());
        for (s1, c1, s2, c2) in &query.equi_joins {
            let a = resolve(s1, c1)?;
            let b = resolve(s2, c2)?;
            // Orient so the smaller column reference is on the left —
            // equality is symmetric, so `A.x = B.x` and `B.x = A.x` collapse.
            let (left, right) = if b < a { (b, a) } else { (a, b) };
            predicates.push(EquiPredicate::new(left, right));
        }
        predicates.sort_by_key(|p| (p.left, p.right));
        predicates.dedup();

        let mut filters = Vec::with_capacity(query.filters.len());
        for (s, c, op, v) in &query.filters {
            filters.push(FilterTerm {
                column: resolve(s, c)?,
                op: *op,
                constant: Value::int(*v),
            });
        }
        filters.sort_by(|a, b| {
            (a.column, op_rank(a.op))
                .cmp(&(b.column, op_rank(b.op)))
                .then_with(|| a.constant.cmp(&b.constant))
        });
        filters.dedup();

        Ok(CanonicalQuery {
            key: CanonicalKey {
                sources,
                window: query.window(),
                predicates,
                filters,
            },
        })
    }

    /// The hashable identity of this query.
    pub fn key(&self) -> &CanonicalKey {
        &self.key
    }

    /// Consume into the key.
    pub fn into_key(self) -> CanonicalKey {
        self.key
    }

    /// Number of sources the query joins.
    pub fn num_sources(&self) -> usize {
        self.key.sources.len()
    }

    /// The referenced global source ids, in `FROM` order.
    pub fn sources(&self) -> &[SourceId] {
        &self.key.sources
    }

    /// The global window.
    pub fn window(&self) -> Window {
        self.key.window
    }

    /// The pipeline-local id of a global source, if the query references it.
    ///
    /// This is the remapping the serving tier applies to every arrival
    /// before pushing it into a shared pipeline.
    pub fn local_id(&self, global: SourceId) -> Option<SourceId> {
        self.key
            .sources
            .iter()
            .position(|&s| s == global)
            .map(|i| SourceId(i as u16))
    }

    /// The default plan shape: a left-deep tree over the `FROM` sequence,
    /// exactly what the single-query engine builds for a CQL query.
    pub fn shape(&self) -> PlanShape {
        PlanShape::left_deep(self.num_sources())
    }

    /// The join conjunction in local id space, ready for the plan builder.
    pub fn predicates(&self) -> PredicateSet {
        PredicateSet::from_predicates(self.key.predicates.clone())
    }

    /// All constant filters in local id space.
    pub fn filters(&self) -> Vec<FilterPredicate> {
        self.key.filters.iter().map(FilterTerm::predicate).collect()
    }

    /// The filter conjunction applied to one local source (empty if the
    /// source is unfiltered). This is the unit the serving tier deduplicates
    /// for shared selection pushdown: arrivals are classified once per
    /// distinct class, not once per query.
    pub fn filter_class(&self, local: SourceId) -> Vec<FilterTerm> {
        self.key
            .filters
            .iter()
            .filter(|t| t.column.source == local)
            .cloned()
            .collect()
    }
}

fn err(msg: String) -> CqlError {
    CqlError(msg)
}

/// Look up a source by name: exact match first, then unique case-insensitive
/// match (keywords and, per the parser's duplicate check, source names are
/// case-insensitive).
fn lookup_source<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a SourceSchema, CqlError> {
    if let Some(s) = catalog.source_by_name(name) {
        return Ok(s);
    }
    let mut found = None;
    for s in catalog.sources() {
        if s.name.eq_ignore_ascii_case(name) {
            if found.is_some() {
                return Err(err(format!("ambiguous source name {name}")));
            }
            found = Some(s);
        }
    }
    found.ok_or_else(|| err(format!("unknown source {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_source("A", vec!["x".into(), "y".into(), "z".into()]);
        cat.add_source("B", vec!["x".into(), "y".into()]);
        cat.add_source("C", vec!["y".into()]);
        cat
    }

    fn canon(text: &str) -> CanonicalQuery {
        CanonicalQuery::from_cql(text, &catalog()).unwrap()
    }

    #[test]
    fn superficially_different_texts_share_a_key() {
        let base = canon(
            "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes], C [RANGE 5 minutes] \
             WHERE A.x = B.x AND A.y = C.y AND A.z > 10",
        );
        // Reordered clauses, swapped predicate sides, case-varied keywords.
        let other = canon(
            "select * from A [range 5 minutes], B [range 5 minutes], C [range 5 minutes] \
             where A.z > 10 and C.y = A.y and B.x = A.x",
        );
        assert_eq!(base.key(), other.key());
        // A duplicated predicate collapses too.
        let dup = canon(
            "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes], C [RANGE 5 minutes] \
             WHERE A.x = B.x AND B.x = A.x AND A.y = C.y AND A.z > 10",
        );
        assert_eq!(base.key(), dup.key());
    }

    #[test]
    fn from_order_window_and_filters_differentiate() {
        let base = canon("SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] WHERE A.x = B.x");
        let swapped =
            canon("SELECT * FROM B [RANGE 5 minutes], A [RANGE 5 minutes] WHERE A.x = B.x");
        assert_ne!(base.key(), swapped.key(), "FROM order is part of the key");
        let longer =
            canon("SELECT * FROM A [RANGE 6 minutes], B [RANGE 6 minutes] WHERE A.x = B.x");
        assert_ne!(base.key(), longer.key());
        let filtered = canon(
            "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
             WHERE A.x = B.x AND A.y > 3",
        );
        assert_ne!(base.key(), filtered.key());
        // Filter order does not matter.
        let f1 = canon(
            "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
             WHERE A.x = B.x AND A.y > 3 AND B.x < 9",
        );
        let f2 = canon(
            "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
             WHERE B.x < 9 AND A.x = B.x AND A.y > 3",
        );
        assert_eq!(f1.key(), f2.key());
    }

    #[test]
    fn local_ids_follow_from_order_with_global_columns() {
        // FROM lists C then A: local 0 = global C(2), local 1 = global A(0).
        let q = canon("SELECT * FROM C [RANGE 1 minutes], A [RANGE 1 minutes] WHERE C.y = A.y");
        assert_eq!(q.sources(), &[SourceId(2), SourceId(0)]);
        assert_eq!(q.local_id(SourceId(2)), Some(SourceId(0)));
        assert_eq!(q.local_id(SourceId(0)), Some(SourceId(1)));
        assert_eq!(q.local_id(SourceId(1)), None);
        let preds = q.predicates();
        assert_eq!(preds.len(), 1);
        let p = preds.predicates()[0];
        // C.y is global column 0 of C; A.y is global column 1 of A.
        assert_eq!(p.left, ColumnRef::new(SourceId(0), 0));
        assert_eq!(p.right, ColumnRef::new(SourceId(1), 1));
        assert_eq!(q.shape(), PlanShape::left_deep(2));
    }

    #[test]
    fn filter_classes_group_by_local_source() {
        let q = canon(
            "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] \
             WHERE A.x = B.x AND A.y > 3 AND A.y < 9 AND B.y = 5",
        );
        let a_class = q.filter_class(SourceId(0));
        assert_eq!(a_class.len(), 2);
        assert!(a_class.iter().all(|t| t.column.source == SourceId(0)));
        assert_eq!(q.filter_class(SourceId(1)).len(), 1);
        assert_eq!(q.filters().len(), 3);
    }

    #[test]
    fn source_lookup_is_case_insensitive_against_the_catalog() {
        let q = CanonicalQuery::from_cql(
            "SELECT * FROM a [RANGE 1 minutes], b [RANGE 1 minutes] WHERE a.x = b.x",
            &catalog(),
        )
        .unwrap();
        assert_eq!(q.sources(), &[SourceId(0), SourceId(1)]);
    }

    #[test]
    fn unresolved_names_are_errors() {
        let cat = catalog();
        let e = CanonicalQuery::from_cql(
            "SELECT * FROM A [RANGE 1 minutes], Z [RANGE 1 minutes] WHERE A.x = Z.x",
            &cat,
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown source Z"), "{e}");
        let e = CanonicalQuery::from_cql(
            "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE A.q = B.x",
            &cat,
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown column A.q"), "{e}");
        // Ambiguous case-insensitive match: `Aa` could be `AA` or `aa`.
        let mut dup = Catalog::new();
        dup.add_source("AA", vec!["x".into()]);
        dup.add_source("aa", vec!["x".into()]);
        dup.add_source("T", vec!["x".into()]);
        let e = CanonicalQuery::from_cql(
            "SELECT * FROM Aa [RANGE 1 minutes], T [RANGE 1 minutes] WHERE Aa.x = T.x",
            &dup,
        )
        .unwrap_err();
        assert!(e.to_string().contains("ambiguous source name Aa"), "{e}");
        // An exact match wins even when another name matches loosely.
        let q = CanonicalQuery::from_cql(
            "SELECT * FROM aa [RANGE 1 minutes], T [RANGE 1 minutes] WHERE aa.x = T.x",
            &dup,
        )
        .unwrap();
        assert_eq!(q.sources()[0], SourceId(1));
    }
}
