//! # jit-metrics
//!
//! Measurement infrastructure for the JIT reproduction.
//!
//! The paper evaluates JIT against REF on two axes: **total CPU time** and
//! **peak memory consumption** (Section VI). Reproducing absolute seconds on
//! different hardware is meaningless, so this crate provides:
//!
//! * [`counters::ExecStats`] — raw event counters (probes, predicate
//!   evaluations, partial results produced / suppressed, feedback traffic).
//! * [`cost::CostModel`] / [`cost::CostTracker`] — a deterministic cost model
//!   that converts counted operations into simulated CPU work, so the
//!   JIT/REF *ratio* is hardware-independent; wall-clock time is also
//!   recorded for reference.
//! * [`memory::MemoryTracker`] — analytical memory accounting: every
//!   container that stores tuples (operator states, inter-operator queues,
//!   MNS buffers, blacklists) reports its size, and the tracker maintains the
//!   running total and the peak, which is the quantity Figures 10b–17b plot.
//! * [`report`] — serialisable measurement snapshots and human-readable
//!   tables used by the harness and benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod counters;
pub mod memory;
pub mod report;

pub use cost::{CostKind, CostModel, CostTracker};
pub use counters::ExecStats;
pub use memory::{MemComponentId, MemoryTracker};
pub use report::{MetricsSnapshot, RunMetrics};
