//! Measurement snapshots and run-level metric bundles.

use crate::cost::{CostKind, CostModel, CostTracker};
use crate::counters::ExecStats;
use crate::memory::{MemComponentId, MemoryTracker};
use serde::{Deserialize, Serialize};

/// Everything an execution mutates while running: counters, cost tracker and
/// memory tracker. The executor owns one of these and threads `&mut` access
/// through every operator call.
#[derive(Debug, Default, Clone)]
pub struct RunMetrics {
    /// Event counters.
    pub stats: ExecStats,
    /// CPU cost accounting (abstract units + wall clock).
    pub cost: CostTracker,
    /// Analytical memory accounting.
    pub memory: MemoryTracker,
}

impl RunMetrics {
    /// Fresh metrics with the default cost model.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// Fresh metrics with a custom cost model.
    pub fn with_cost_model(model: CostModel) -> Self {
        RunMetrics {
            stats: ExecStats::default(),
            cost: CostTracker::new(model),
            memory: MemoryTracker::new(),
        }
    }

    /// Charge `count` operations of `kind` to the cost model.
    pub fn charge(&mut self, kind: CostKind, count: u64) {
        self.cost.charge(kind, count);
    }

    /// Register a memory component.
    pub fn register_memory(&mut self, name: impl Into<String>) -> MemComponentId {
        self.memory.register(name)
    }

    /// Freeze the wall clock and produce an immutable snapshot.
    pub fn finish(mut self) -> MetricsSnapshot {
        self.cost.stop_wall_clock();
        MetricsSnapshot {
            stats: self.stats,
            cost_units: self.cost.total_units(),
            steady_cost_units: self.cost.total_units(),
            wall_seconds: self.cost.wall_seconds(),
            peak_memory_bytes: self.memory.peak_bytes(),
            steady_peak_memory_bytes: self.memory.peak_bytes(),
            final_memory_bytes: self.memory.current_bytes(),
            late_arrivals: 0,
            late_dropped: 0,
            reorder_buffer_peak: 0,
            checkpoint_bytes: 0,
            checkpoint_millis: 0,
        }
    }

    /// Produce a snapshot without consuming the metrics (wall clock keeps
    /// running).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stats: self.stats,
            cost_units: self.cost.total_units(),
            steady_cost_units: self.cost.total_units(),
            wall_seconds: self.cost.wall_seconds(),
            peak_memory_bytes: self.memory.peak_bytes(),
            steady_peak_memory_bytes: self.memory.peak_bytes(),
            final_memory_bytes: self.memory.current_bytes(),
            late_arrivals: 0,
            late_dropped: 0,
            reorder_buffer_peak: 0,
            checkpoint_bytes: 0,
            checkpoint_millis: 0,
        }
    }
}

/// An immutable summary of one execution, serialisable for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Event counters.
    pub stats: ExecStats,
    /// Total abstract CPU cost units, including any end-of-stream flush.
    pub cost_units: u64,
    /// Cost units spent *before* the end-of-stream flush (the steady-state
    /// figure: what an unbounded stream would keep paying per unit of input;
    /// the flush is a one-time artefact of a finite trace ending). Equals
    /// [`MetricsSnapshot::cost_units`] when no flush happened.
    pub steady_cost_units: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Peak analytical memory in bytes over the whole run.
    pub peak_memory_bytes: usize,
    /// Peak analytical memory before the end-of-stream flush (steady-state
    /// figure). Equals [`MetricsSnapshot::peak_memory_bytes`] without one.
    pub steady_peak_memory_bytes: usize,
    /// Memory still held at the end of the run, in bytes.
    pub final_memory_bytes: usize,
    /// Arrivals that came in behind the stream's high-water timestamp (out
    /// of order) but within the lateness bound — reordered, not dropped.
    /// Always 0 under `DisorderPolicy::Strict` (disorder is a hard error
    /// there) and for executions without a reorder buffer.
    pub late_arrivals: u64,
    /// Arrivals later than the lateness bound, dropped and counted (the
    /// `LateDrop` outcome of a bounded-disorder push).
    pub late_dropped: u64,
    /// Peak number of tuples held in the reorder buffer at any instant.
    pub reorder_buffer_peak: u64,
    /// Bytes written by the most recent state checkpoint (0 if none taken).
    pub checkpoint_bytes: u64,
    /// Wall-clock milliseconds spent writing the most recent checkpoint.
    pub checkpoint_millis: u64,
}

impl MetricsSnapshot {
    /// Peak memory in kilobytes (paper plots use KB).
    pub fn peak_memory_kb(&self) -> f64 {
        self.peak_memory_bytes as f64 / 1024.0
    }

    /// Cost units scaled to pseudo-seconds for readability
    /// (1 M units ≈ 1 pseudo-second; purely a display convention).
    pub fn cost_pseudo_seconds(&self) -> f64 {
        self.cost_units as f64 / 1.0e6
    }

    /// Ratio of this run's cost to another's (`self / other`), `inf` when the
    /// other is free.
    pub fn cost_ratio_to(&self, other: &MetricsSnapshot) -> f64 {
        if other.cost_units == 0 {
            f64::INFINITY
        } else {
            self.cost_units as f64 / other.cost_units as f64
        }
    }

    /// Ratio of this run's peak memory to another's.
    pub fn memory_ratio_to(&self, other: &MetricsSnapshot) -> f64 {
        if other.peak_memory_bytes == 0 {
            f64::INFINITY
        } else {
            self.peak_memory_bytes as f64 / other.peak_memory_bytes as f64
        }
    }

    /// A snapshot with every quantity at zero (the identity of
    /// [`MetricsSnapshot::absorb_parallel`]).
    pub fn zero() -> MetricsSnapshot {
        MetricsSnapshot {
            stats: ExecStats::default(),
            cost_units: 0,
            steady_cost_units: 0,
            wall_seconds: 0.0,
            peak_memory_bytes: 0,
            steady_peak_memory_bytes: 0,
            final_memory_bytes: 0,
            late_arrivals: 0,
            late_dropped: 0,
            reorder_buffer_peak: 0,
            checkpoint_bytes: 0,
            checkpoint_millis: 0,
        }
    }

    /// Fold another snapshot, taken by a *concurrently running* execution,
    /// into this one:
    ///
    /// * counters and cost units add up (total work performed);
    /// * wall-clock takes the maximum (parallel executions overlap);
    /// * memory adds up (shards hold their states simultaneously, so the sum
    ///   of per-shard peaks is the relevant upper bound).
    pub fn absorb_parallel(&mut self, other: &MetricsSnapshot) {
        self.stats += other.stats;
        self.cost_units += other.cost_units;
        self.steady_cost_units += other.steady_cost_units;
        self.wall_seconds = self.wall_seconds.max(other.wall_seconds);
        self.peak_memory_bytes += other.peak_memory_bytes;
        self.steady_peak_memory_bytes += other.steady_peak_memory_bytes;
        self.final_memory_bytes += other.final_memory_bytes;
        self.late_arrivals += other.late_arrivals;
        self.late_dropped += other.late_dropped;
        // Reorder buffering happens in front of the fan-out, so per-shard
        // peaks never overlap in time; the max is the relevant bound.
        self.reorder_buffer_peak = self.reorder_buffer_peak.max(other.reorder_buffer_peak);
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.checkpoint_millis += other.checkpoint_millis;
    }

    /// Aggregate the snapshots of N parallel executions into one run-level
    /// snapshot (see [`MetricsSnapshot::absorb_parallel`] for the rules).
    pub fn aggregate_parallel<'a>(
        snapshots: impl IntoIterator<Item = &'a MetricsSnapshot>,
    ) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::zero();
        for snapshot in snapshots {
            total.absorb_parallel(snapshot);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_aggregation_rules() {
        let mut a = MetricsSnapshot::zero();
        a.stats.tuples_arrived = 10;
        a.cost_units = 100;
        a.wall_seconds = 2.0;
        a.peak_memory_bytes = 4096;
        a.final_memory_bytes = 64;
        let mut b = MetricsSnapshot::zero();
        b.stats.tuples_arrived = 5;
        b.cost_units = 50;
        b.wall_seconds = 3.0;
        b.peak_memory_bytes = 1024;
        b.final_memory_bytes = 32;

        let total = MetricsSnapshot::aggregate_parallel([&a, &b]);
        assert_eq!(total.stats.tuples_arrived, 15);
        assert_eq!(total.cost_units, 150);
        assert_eq!(total.wall_seconds, 3.0); // max, not sum
        assert_eq!(total.peak_memory_bytes, 5120);
        assert_eq!(total.final_memory_bytes, 96);

        // Zero is the identity.
        let same = MetricsSnapshot::aggregate_parallel([&total, &MetricsSnapshot::zero()]);
        assert_eq!(same, total);
    }

    #[test]
    fn finish_produces_consistent_snapshot() {
        let mut m = RunMetrics::new();
        m.stats.tuples_arrived = 3;
        m.charge(CostKind::ProbePair, 4);
        let s_id = m.register_memory("state");
        m.memory.set(s_id, 2048);
        m.memory.set(s_id, 1024);
        let snap = m.finish();
        assert_eq!(snap.stats.tuples_arrived, 3);
        assert!(snap.cost_units > 0);
        assert_eq!(snap.peak_memory_bytes, 2048);
        assert_eq!(snap.final_memory_bytes, 1024);
        assert!(snap.wall_seconds >= 0.0);
        assert!((snap.peak_memory_kb() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_without_consuming() {
        let mut m = RunMetrics::new();
        m.charge(CostKind::ResultBuild, 1);
        let first = m.snapshot();
        m.charge(CostKind::ResultBuild, 1);
        let second = m.snapshot();
        assert!(second.cost_units > first.cost_units);
    }

    #[test]
    fn ratios() {
        let a = MetricsSnapshot {
            stats: ExecStats::default(),
            cost_units: 100,
            steady_cost_units: 100,
            wall_seconds: 0.0,
            peak_memory_bytes: 4096,
            steady_peak_memory_bytes: 4096,
            final_memory_bytes: 0,
            late_arrivals: 0,
            late_dropped: 0,
            reorder_buffer_peak: 0,
            checkpoint_bytes: 0,
            checkpoint_millis: 0,
        };
        let b = MetricsSnapshot {
            cost_units: 50,
            peak_memory_bytes: 1024,
            ..a.clone()
        };
        assert!((a.cost_ratio_to(&b) - 2.0).abs() < 1e-12);
        assert!((a.memory_ratio_to(&b) - 4.0).abs() < 1e-12);
        let zero = MetricsSnapshot {
            cost_units: 0,
            peak_memory_bytes: 0,
            ..a.clone()
        };
        assert!(a.cost_ratio_to(&zero).is_infinite());
        assert!(a.memory_ratio_to(&zero).is_infinite());
    }

    #[test]
    fn snapshot_serialises() {
        let snap = RunMetrics::new().finish();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn custom_cost_model_is_used() {
        let model = CostModel {
            result_build: 1_000,
            ..CostModel::default()
        };
        let mut m = RunMetrics::with_cost_model(model);
        m.charge(CostKind::ResultBuild, 1);
        assert_eq!(m.cost.total_units(), 1_000);
    }
}
