//! Deterministic CPU cost model and wall-clock timing.
//!
//! The paper reports CPU seconds on a specific 2008-era machine. To make the
//! JIT vs REF comparison reproducible on any hardware, the substrate charges
//! every elementary operation (tuple comparison, state insertion, feedback
//! handling, …) a fixed number of abstract *cost units*. The ratio between
//! two executions' cost totals tracks the ratio of their real CPU times,
//! because both systems execute the same kinds of elementary operations —
//! only in different quantities. Wall-clock time is captured alongside.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The elementary operations charged by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostKind {
    /// Examining one *candidate* stored tuple while probing a state: every
    /// live tuple under a nested-loop scan, only the hash partition (plus
    /// unindexable overflow) under indexed states. Charged once per
    /// candidate actually examined, in lock-step with the `probe_pairs`
    /// statistic.
    ProbePair,
    /// Evaluating one equi-join or filter predicate.
    PredicateEval,
    /// Materialising one (partial or final) result tuple.
    ResultBuild,
    /// Inserting a tuple into an operator state.
    StateInsert,
    /// Removing an expired tuple from an operator state.
    StatePurge,
    /// Enqueuing / dequeuing a tuple on an inter-operator queue.
    QueueOp,
    /// Probing an MNS buffer entry.
    MnsBufferProbe,
    /// Visiting a node of the CNS lattice during `Identify_MNS`.
    LatticeNode,
    /// One Bloom filter hash-and-test.
    BloomCheck,
    /// Creating or handling one feedback message.
    FeedbackHandle,
    /// Moving one tuple between a state and a blacklist (either direction).
    BlacklistMove,
    /// Scheduler task dispatch overhead.
    TaskDispatch,
}

/// Weights (in abstract units) for each [`CostKind`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of a nested-loop probe step.
    pub probe_pair: u64,
    /// Cost of one predicate evaluation.
    pub predicate_eval: u64,
    /// Cost of materialising a result.
    pub result_build: u64,
    /// Cost of a state insertion.
    pub state_insert: u64,
    /// Cost of purging one tuple.
    pub state_purge: u64,
    /// Cost of a queue operation.
    pub queue_op: u64,
    /// Cost of probing one MNS buffer entry.
    pub mns_buffer_probe: u64,
    /// Cost of visiting one lattice node.
    pub lattice_node: u64,
    /// Cost of one Bloom filter check.
    pub bloom_check: u64,
    /// Cost of handling one feedback message.
    pub feedback_handle: u64,
    /// Cost of one blacklist move.
    pub blacklist_move: u64,
    /// Cost of dispatching one scheduler task.
    pub task_dispatch: u64,
}

impl Default for CostModel {
    /// Weights roughly proportional to the work each operation performs in
    /// the substrate: building and inserting tuples is more expensive than a
    /// comparison; bookkeeping operations are cheap.
    fn default() -> Self {
        CostModel {
            probe_pair: 2,
            predicate_eval: 1,
            result_build: 6,
            state_insert: 3,
            state_purge: 2,
            queue_op: 1,
            mns_buffer_probe: 2,
            lattice_node: 1,
            bloom_check: 1,
            feedback_handle: 4,
            blacklist_move: 3,
            task_dispatch: 1,
        }
    }
}

impl CostModel {
    /// The weight for a given operation kind.
    pub fn weight(&self, kind: CostKind) -> u64 {
        match kind {
            CostKind::ProbePair => self.probe_pair,
            CostKind::PredicateEval => self.predicate_eval,
            CostKind::ResultBuild => self.result_build,
            CostKind::StateInsert => self.state_insert,
            CostKind::StatePurge => self.state_purge,
            CostKind::QueueOp => self.queue_op,
            CostKind::MnsBufferProbe => self.mns_buffer_probe,
            CostKind::LatticeNode => self.lattice_node,
            CostKind::BloomCheck => self.bloom_check,
            CostKind::FeedbackHandle => self.feedback_handle,
            CostKind::BlacklistMove => self.blacklist_move,
            CostKind::TaskDispatch => self.task_dispatch,
        }
    }
}

/// Accumulates cost units and wall-clock time over one execution.
#[derive(Debug, Clone)]
pub struct CostTracker {
    model: CostModel,
    total_units: u64,
    started: Instant,
    wall_seconds: f64,
}

impl Default for CostTracker {
    fn default() -> Self {
        CostTracker::new(CostModel::default())
    }
}

impl CostTracker {
    /// Create a tracker using the given weights; the wall clock starts now.
    pub fn new(model: CostModel) -> Self {
        CostTracker {
            model,
            total_units: 0,
            started: Instant::now(),
            wall_seconds: 0.0,
        }
    }

    /// Charge `count` operations of the given kind.
    pub fn charge(&mut self, kind: CostKind, count: u64) {
        self.total_units += self.model.weight(kind) * count;
    }

    /// Total abstract cost units charged so far.
    pub fn total_units(&self) -> u64 {
        self.total_units
    }

    /// Freeze the wall clock (call once at the end of the run).
    pub fn stop_wall_clock(&mut self) {
        self.wall_seconds = self.started.elapsed().as_secs_f64();
    }

    /// Wall-clock seconds between construction and [`CostTracker::stop_wall_clock`]
    /// (or until now, if the clock was never stopped).
    pub fn wall_seconds(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.wall_seconds
        } else {
            self.started.elapsed().as_secs_f64()
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_are_positive() {
        let m = CostModel::default();
        for kind in [
            CostKind::ProbePair,
            CostKind::PredicateEval,
            CostKind::ResultBuild,
            CostKind::StateInsert,
            CostKind::StatePurge,
            CostKind::QueueOp,
            CostKind::MnsBufferProbe,
            CostKind::LatticeNode,
            CostKind::BloomCheck,
            CostKind::FeedbackHandle,
            CostKind::BlacklistMove,
            CostKind::TaskDispatch,
        ] {
            assert!(m.weight(kind) > 0, "{kind:?}");
        }
    }

    #[test]
    fn charge_accumulates_weighted_units() {
        let mut t = CostTracker::default();
        t.charge(CostKind::ProbePair, 10);
        t.charge(CostKind::ResultBuild, 1);
        let expected = CostModel::default().probe_pair * 10 + CostModel::default().result_build;
        assert_eq!(t.total_units(), expected);
    }

    #[test]
    fn charging_zero_is_free() {
        let mut t = CostTracker::default();
        t.charge(CostKind::FeedbackHandle, 0);
        assert_eq!(t.total_units(), 0);
    }

    #[test]
    fn wall_clock_monotone() {
        let mut t = CostTracker::default();
        let first = t.wall_seconds();
        t.stop_wall_clock();
        let stopped = t.wall_seconds();
        assert!(stopped >= first);
        // After stopping, the value is frozen.
        assert_eq!(t.wall_seconds(), stopped);
    }

    #[test]
    fn custom_model_changes_totals() {
        let cheap = CostModel {
            probe_pair: 1,
            ..CostModel::default()
        };
        let costly = CostModel {
            probe_pair: 100,
            ..CostModel::default()
        };
        let mut a = CostTracker::new(cheap);
        let mut b = CostTracker::new(costly);
        a.charge(CostKind::ProbePair, 5);
        b.charge(CostKind::ProbePair, 5);
        assert!(b.total_units() > a.total_units());
    }
}
