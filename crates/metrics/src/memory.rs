//! Analytical memory accounting.
//!
//! Figures 10b–17b of the paper plot *peak memory consumption*. In this
//! reproduction every container that stores tuples — operator states,
//! inter-operator queues, MNS buffers, blacklists — registers itself with the
//! [`MemoryTracker`] and reports its current size whenever it changes. The
//! tracker maintains the global running total and its maximum over the run.
//!
//! This measures exactly the quantity the paper's argument is about (bytes
//! spent storing tuples and intermediate results), without allocator noise.

use serde::{Deserialize, Serialize};

/// Handle identifying one registered memory component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemComponentId(pub usize);

/// Per-component byte accounting with global peak tracking.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct MemoryTracker {
    names: Vec<String>,
    sizes: Vec<usize>,
    current_total: usize,
    peak_total: usize,
}

impl MemoryTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        MemoryTracker::default()
    }

    /// Register a component (e.g. `"state S_AB"`); returns its handle.
    pub fn register(&mut self, name: impl Into<String>) -> MemComponentId {
        self.names.push(name.into());
        self.sizes.push(0);
        MemComponentId(self.sizes.len() - 1)
    }

    /// Set the current size of a component in bytes.
    pub fn set(&mut self, id: MemComponentId, bytes: usize) {
        let slot = &mut self.sizes[id.0];
        self.current_total = self.current_total - *slot + bytes;
        *slot = bytes;
        if self.current_total > self.peak_total {
            self.peak_total = self.current_total;
        }
    }

    /// Increase a component's size by `bytes`.
    pub fn add(&mut self, id: MemComponentId, bytes: usize) {
        self.set(id, self.sizes[id.0] + bytes);
    }

    /// Decrease a component's size by `bytes` (saturating at zero).
    pub fn sub(&mut self, id: MemComponentId, bytes: usize) {
        self.set(id, self.sizes[id.0].saturating_sub(bytes));
    }

    /// Current size of one component.
    pub fn component_bytes(&self, id: MemComponentId) -> usize {
        self.sizes[id.0]
    }

    /// Name of one component.
    pub fn component_name(&self, id: MemComponentId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Current total across all components.
    pub fn current_bytes(&self) -> usize {
        self.current_total
    }

    /// Peak total observed since construction.
    pub fn peak_bytes(&self) -> usize {
        self.peak_total
    }

    /// Peak total in kilobytes (the unit used by the paper's plots).
    pub fn peak_kb(&self) -> f64 {
        self.peak_total as f64 / 1024.0
    }

    /// A breakdown of current usage as `(name, bytes)` pairs, largest first.
    pub fn breakdown(&self) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .names
            .iter()
            .cloned()
            .zip(self.sizes.iter().copied())
            .collect();
        v.sort_by_key(|entry| std::cmp::Reverse(entry.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_set() {
        let mut m = MemoryTracker::new();
        let a = m.register("state A");
        let b = m.register("queue AB");
        assert_eq!(m.num_components(), 2);
        m.set(a, 100);
        m.set(b, 50);
        assert_eq!(m.current_bytes(), 150);
        assert_eq!(m.component_bytes(a), 100);
        assert_eq!(m.component_name(b), "queue AB");
    }

    #[test]
    fn peak_is_maximum_of_totals() {
        let mut m = MemoryTracker::new();
        let a = m.register("a");
        let b = m.register("b");
        m.set(a, 100);
        m.set(b, 200); // total 300
        m.set(a, 10); // total 210
        m.set(b, 20); // total 30
        assert_eq!(m.current_bytes(), 30);
        assert_eq!(m.peak_bytes(), 300);
        assert!((m.peak_kb() - 300.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn add_and_sub_adjust_incrementally() {
        let mut m = MemoryTracker::new();
        let a = m.register("a");
        m.add(a, 40);
        m.add(a, 60);
        assert_eq!(m.component_bytes(a), 100);
        m.sub(a, 30);
        assert_eq!(m.component_bytes(a), 70);
        // saturating at zero
        m.sub(a, 1_000);
        assert_eq!(m.component_bytes(a), 0);
        assert_eq!(m.current_bytes(), 0);
        assert_eq!(m.peak_bytes(), 100);
    }

    #[test]
    fn shrinking_does_not_move_peak() {
        let mut m = MemoryTracker::new();
        let a = m.register("a");
        m.set(a, 500);
        m.set(a, 0);
        m.set(a, 100);
        assert_eq!(m.peak_bytes(), 500);
    }

    #[test]
    fn breakdown_sorted_by_size() {
        let mut m = MemoryTracker::new();
        let a = m.register("small");
        let b = m.register("big");
        m.set(a, 1);
        m.set(b, 10);
        let bd = m.breakdown();
        assert_eq!(bd[0].0, "big");
        assert_eq!(bd[1], ("small".to_string(), 1));
    }

    #[test]
    fn total_is_sum_of_components_invariant() {
        // mirror of the accounting invariant tested at system level
        let mut m = MemoryTracker::new();
        let ids: Vec<_> = (0..5).map(|i| m.register(format!("c{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            m.set(*id, i * 11);
        }
        let sum: usize = ids.iter().map(|id| m.component_bytes(*id)).sum();
        assert_eq!(sum, m.current_bytes());
    }
}
