//! Static relation generation.
//!
//! Section V (Figure 9b) extends JIT to consumers that join a stream with a
//! *static* relation `R_C`. This module generates such relations with the
//! same value model as the streams so the extension can be exercised in
//! tests and examples.

use crate::source::ValueDomain;
use jit_types::{BaseTuple, SourceId, Timestamp, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A static (non-streaming) relation: a fixed set of tuples known up front.
#[derive(Debug, Clone, Default)]
pub struct StaticRelation {
    /// The relation's tuples. Timestamps are all zero (a static relation has
    /// no notion of arrival time and never expires).
    pub tuples: Vec<Arc<BaseTuple>>,
}

impl StaticRelation {
    /// Generate `cardinality` tuples for `source`, each with `num_columns`
    /// values drawn from `domain`.
    pub fn generate(
        source: SourceId,
        cardinality: usize,
        num_columns: usize,
        domain: ValueDomain,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let tuples = (0..cardinality)
            .map(|seq| {
                let values: Vec<Value> =
                    (0..num_columns).map(|_| domain.sample(&mut rng)).collect();
                Arc::new(BaseTuple::new(source, seq as u64, Timestamp::ZERO, values))
            })
            .collect();
        StaticRelation { tuples }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total analytical size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tuples.iter().map(|t| t.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_cardinality_and_arity() {
        let r = StaticRelation::generate(SourceId(2), 100, 3, ValueDomain::uniform(10), 1);
        assert_eq!(r.len(), 100);
        assert!(!r.is_empty());
        for t in &r.tuples {
            assert_eq!(t.arity(), 3);
            assert_eq!(t.source, SourceId(2));
            assert_eq!(t.ts, Timestamp::ZERO);
            for v in t.values.iter() {
                assert!((1..=10).contains(&v.as_int().unwrap()));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = StaticRelation::generate(SourceId(0), 50, 2, ValueDomain::uniform(100), 9);
        let b = StaticRelation::generate(SourceId(0), 50, 2, ValueDomain::uniform(100), 9);
        let c = StaticRelation::generate(SourceId(0), 50, 2, ValueDomain::uniform(100), 10);
        assert_eq!(a.tuples, b.tuples);
        assert_ne!(a.tuples, c.tuples);
    }

    #[test]
    fn size_and_empty() {
        let empty = StaticRelation::default();
        assert!(empty.is_empty());
        assert_eq!(empty.size_bytes(), 0);
        let r = StaticRelation::generate(SourceId(0), 10, 2, ValueDomain::uniform(5), 3);
        assert!(r.size_bytes() > 0);
        assert_eq!(
            r.size_bytes(),
            r.tuples.iter().map(|t| t.size_bytes()).sum::<usize>()
        );
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let r = StaticRelation::generate(SourceId(1), 20, 1, ValueDomain::uniform(5), 4);
        let seqs: Vec<u64> = r.tuples.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }
}
