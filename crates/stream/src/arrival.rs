//! Arrival processes and arrival events.
//!
//! The paper specifies "an average tuple arrival rate of λ tuples per second"
//! per source; we model that as a Poisson process (exponential inter-arrival
//! times), with a constant-rate alternative for fully deterministic spacing
//! in unit tests.

use jit_types::{BaseTuple, SourceId, Timestamp};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One base tuple arriving at a point in application time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Arrival instant (equals the tuple's timestamp).
    pub ts: Timestamp,
    /// Which source the tuple arrives on.
    pub source: SourceId,
    /// The arriving record.
    pub tuple: Arc<BaseTuple>,
}

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process: exponential inter-arrival times with the given mean
    /// rate (tuples per second).
    Poisson {
        /// Mean arrival rate λ in tuples per second.
        rate_per_sec: f64,
    },
    /// Evenly spaced arrivals at the given rate.
    Constant {
        /// Arrival rate in tuples per second.
        rate_per_sec: f64,
    },
}

impl ArrivalProcess {
    /// The process's mean rate in tuples per second.
    pub fn rate_per_sec(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec }
            | ArrivalProcess::Constant { rate_per_sec } => *rate_per_sec,
        }
    }

    /// Draw the arrival instants in `[0, duration_ms)`.
    ///
    /// The result is sorted and strictly within the horizon. A non-positive
    /// rate yields no arrivals.
    pub fn arrival_times(&self, duration_ms: u64, rng: &mut impl Rng) -> Vec<Timestamp> {
        let rate = self.rate_per_sec();
        if rate <= 0.0 || duration_ms == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        match self {
            ArrivalProcess::Poisson { .. } => {
                let mean_gap_ms = 1_000.0 / rate;
                let mut t = 0.0f64;
                loop {
                    // Inverse-CDF exponential sample; clamp u away from 0 to
                    // avoid ln(0).
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    t += -u.ln() * mean_gap_ms;
                    if t >= duration_ms as f64 {
                        break;
                    }
                    out.push(Timestamp::from_millis(t as u64));
                }
            }
            ArrivalProcess::Constant { .. } => {
                let gap_ms = 1_000.0 / rate;
                let mut t = gap_ms;
                while t < duration_ms as f64 {
                    out.push(Timestamp::from_millis(t as u64));
                    t += gap_ms;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_process_is_evenly_spaced() {
        let p = ArrivalProcess::Constant { rate_per_sec: 2.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let times = p.arrival_times(10_000, &mut rng);
        // 2/sec over 10s, first at 500ms → 19 arrivals strictly before 10s.
        assert_eq!(times.len(), 19);
        assert_eq!(times[0], Timestamp::from_millis(500));
        assert_eq!(times[1], Timestamp::from_millis(1_000));
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn poisson_rate_is_approximately_respected() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 1.0 };
        let mut rng = StdRng::seed_from_u64(2);
        // 2000 seconds at 1/sec → expect ~2000 arrivals; allow ±10%.
        let times = p.arrival_times(2_000_000, &mut rng);
        assert!((1_800..=2_200).contains(&times.len()), "{}", times.len());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|t| t.as_millis() < 2_000_000));
    }

    #[test]
    fn zero_rate_or_duration_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(ArrivalProcess::Poisson { rate_per_sec: 0.0 }
            .arrival_times(1_000, &mut rng)
            .is_empty());
        assert!(ArrivalProcess::Constant { rate_per_sec: 5.0 }
            .arrival_times(0, &mut rng)
            .is_empty());
    }

    #[test]
    fn poisson_is_deterministic_given_seed() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 3.0 };
        let a = p.arrival_times(60_000, &mut StdRng::seed_from_u64(42));
        let b = p.arrival_times(60_000, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = p.arrival_times(60_000, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn rate_accessor() {
        assert_eq!(
            ArrivalProcess::Poisson { rate_per_sec: 1.5 }.rate_per_sec(),
            1.5
        );
        assert_eq!(
            ArrivalProcess::Constant { rate_per_sec: 0.4 }.rate_per_sec(),
            0.4
        );
    }
}
