//! Shard assignment: hash-partitioning the join-key space.
//!
//! The sharded parallel runtime (`jit-runtime`) runs one independent
//! executor per shard, so the partitioner must guarantee that any two tuples
//! that *could* join land in the same shard. For key-partitionable workloads
//! (every join predicate is an equality over the tuple's key, see
//! [`crate::WorkloadSpec::shared_key`]) hashing the key column achieves this:
//! equal keys hash to the same shard, and tuples in different shards never
//! satisfy any predicate.
//!
//! The partitioner itself is policy-free: it hashes one designated column of
//! every source. Whether that column really governs all join predicates is a
//! property of the workload, asserted by the shard-determinism tests.

use crate::arrival::ArrivalEvent;
use crate::trace::Trace;
use jit_types::{BaseTuple, Value};

/// Assigns arrivals to shards by hashing a designated key column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPartitioner {
    num_shards: usize,
    key_column: usize,
}

impl ShardPartitioner {
    /// A partitioner over `num_shards` shards, keyed on column 0.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "a partitioner needs at least one shard");
        ShardPartitioner {
            num_shards,
            key_column: 0,
        }
    }

    /// Use a different column as the partitioning key.
    pub fn with_key_column(mut self, column: usize) -> Self {
        self.key_column = column;
        self
    }

    /// Number of shards tuples are spread over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The column hashed for shard assignment.
    pub fn key_column(&self) -> usize {
        self.key_column
    }

    /// Shard of a raw key value.
    pub fn shard_of_value(&self, value: &Value) -> usize {
        (hash_value(value) % self.num_shards as u64) as usize
    }

    /// Shard of a base tuple (hash of its key column; tuples without the
    /// key column — shorter rows — fall into shard 0).
    pub fn shard_of(&self, tuple: &BaseTuple) -> usize {
        match tuple.values.get(self.key_column) {
            Some(value) => self.shard_of_value(value),
            None => 0,
        }
    }

    /// Split a trace into one per-shard trace, preserving replay order.
    pub fn split(&self, trace: &Trace) -> Vec<Trace> {
        let mut per_shard: Vec<Vec<ArrivalEvent>> = vec![Vec::new(); self.num_shards];
        for event in trace.iter() {
            per_shard[self.shard_of(&event.tuple)].push(event.clone());
        }
        per_shard.into_iter().map(Trace::new).collect()
    }
}

/// Deterministic, platform-independent value hash (SplitMix64 finaliser for
/// integers, FNV-1a for strings). `std`'s `DefaultHasher` is deliberately
/// avoided: its output may change between Rust releases, and shard layouts
/// should be stable artifacts of the configuration alone.
fn hash_value(value: &Value) -> u64 {
    match value {
        Value::Null => 0x9E37_79B9_7F4A_7C15,
        Value::Int(v) => splitmix64(*v as u64),
        Value::Str(s) => {
            let mut hash = 0xCBF2_9CE4_8422_2325u64;
            for byte in s.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            splitmix64(hash)
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WorkloadGenerator, WorkloadSpec};
    use jit_types::{Duration, SourceId, Timestamp};
    use std::sync::Arc;

    fn event(source: u16, seq: u64, ts_ms: u64, key: i64) -> ArrivalEvent {
        let ts = Timestamp::from_millis(ts_ms);
        ArrivalEvent {
            ts,
            source: SourceId(source),
            tuple: Arc::new(BaseTuple::new(
                SourceId(source),
                seq,
                ts,
                vec![Value::int(key), Value::int(key)],
            )),
        }
    }

    #[test]
    fn equal_keys_share_a_shard() {
        let p = ShardPartitioner::new(4);
        for key in [1i64, 7, 42, -3, 1_000_000] {
            let a = event(0, 1, 10, key);
            let b = event(3, 9, 999, key);
            assert_eq!(p.shard_of(&a.tuple), p.shard_of(&b.tuple));
            assert!(p.shard_of(&a.tuple) < 4);
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let p = ShardPartitioner::new(1);
        for key in 0..100 {
            assert_eq!(p.shard_of(&event(0, 0, 0, key).tuple), 0);
        }
    }

    #[test]
    fn split_partitions_and_preserves_order() {
        let trace = Trace::new((0..200).map(|i| event(0, i, i * 10, i as i64)).collect());
        let p = ShardPartitioner::new(3);
        let shards = p.split(&trace);
        assert_eq!(shards.len(), 3);
        let total: usize = shards.iter().map(Trace::len).sum();
        assert_eq!(total, trace.len());
        for shard in &shards {
            let times: Vec<u64> = shard.iter().map(|e| e.ts.as_millis()).collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted, "per-shard replay order must be temporal");
        }
    }

    #[test]
    fn shards_are_reasonably_balanced() {
        let trace = Trace::new((0..3000).map(|i| event(0, i, i, i as i64)).collect());
        let p = ShardPartitioner::new(4);
        let shards = p.split(&trace);
        for shard in &shards {
            // Perfect balance would be 750; allow wide slack.
            assert!(
                (450..1050).contains(&shard.len()),
                "shard holds {} of 3000 events",
                shard.len()
            );
        }
    }

    #[test]
    fn string_and_null_keys_hash_stably() {
        let p = ShardPartitioner::new(8);
        let s1 = p.shard_of_value(&Value::str("alpha"));
        let s2 = p.shard_of_value(&Value::str("alpha"));
        assert_eq!(s1, s2);
        assert!(p.shard_of_value(&Value::Null) < 8);
    }

    #[test]
    fn shared_key_workload_is_key_partitionable() {
        // In shared-key mode every column carries the key, so the join
        // graph never crosses shard boundaries: verify all columns equal.
        let spec = WorkloadSpec::bushy_default()
            .with_sources(4)
            .with_duration(Duration::from_secs(60))
            .with_shared_key()
            .with_seed(9);
        let trace = WorkloadGenerator::generate(&spec);
        assert!(!trace.is_empty());
        for e in trace.iter() {
            let first = &e.tuple.values[0];
            assert!(e.tuple.values.iter().all(|v| v == first));
        }
    }

    #[test]
    fn key_column_override() {
        let p = ShardPartitioner::new(4).with_key_column(1);
        assert_eq!(p.key_column(), 1);
        assert_eq!(p.num_shards(), 4);
        // Missing key column falls back to shard 0.
        let short = BaseTuple::new(SourceId(0), 0, Timestamp::ZERO, vec![]);
        assert_eq!(p.shard_of(&short), 0);
    }
}
