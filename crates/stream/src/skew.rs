//! A small Zipf sampler (skew extension to the paper's uniform workloads).
//!
//! Implemented with the classic inverse-CDF-over-precomputed-weights approach
//! for clarity; domains used in the experiments are small (≤ a few thousand
//! values), so precomputing the CDF is cheap. Implemented in-crate to avoid
//! pulling in an extra dependency for a single distribution.

use rand::Rng;

/// Samples integers in `[1..=n]` with probability proportional to
/// `1 / k^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `[1..=n]` with exponent `s`.
    ///
    /// `n` is clamped to at least 1; `s ≤ 0` degenerates to uniform.
    pub fn new(n: u64, s: f64) -> Self {
        let n = n.max(1) as usize;
        let s = s.max(0.0);
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating-point drift: the last entry must reach 1.0.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf: weights }
    }

    /// Number of distinct values.
    pub fn domain_size(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one value in `[1..=n]`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        match self
            .cdf
            // INVARIANT: the CDF is built from finite weights, so the
            // comparison is total.
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF contains NaN"))
        {
            Ok(idx) => idx as u64 + 1,
            Err(idx) => (idx.min(self.cdf.len() - 1)) as u64 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_in_domain() {
        let z = ZipfSampler::new(10, 1.0);
        assert_eq!(z.domain_size(), 10);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = z.sample(&mut rng);
            assert!((1..=10).contains(&v));
        }
    }

    #[test]
    fn rank_one_is_most_frequent() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0u32; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > counts[50] * 5);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 5];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let share = count as f64 / 40_000.0;
            assert!((share - 0.25).abs() < 0.02, "value {k} share {share}");
        }
    }

    #[test]
    fn degenerate_domain() {
        let z = ZipfSampler::new(0, 1.5);
        assert_eq!(z.domain_size(), 1);
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(z.sample(&mut rng), 1);
    }

    #[test]
    fn negative_exponent_clamped() {
        let z = ZipfSampler::new(5, -3.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!((1..=5).contains(&z.sample(&mut rng)));
        }
    }
}
