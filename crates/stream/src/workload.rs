//! Workload specifications matching Table III of the paper.

use crate::arrival::ArrivalProcess;
use crate::source::{SourceSpec, ValueDomain};
use jit_types::{Catalog, Duration, PredicateSet, Window};
use serde::{Deserialize, Serialize};

/// Full description of one synthetic workload: how many sources, how fast
/// they emit, how selective the join is, and for how long the query runs.
///
/// Defaults follow Table III: bushy experiments use `N = 6`, `w = 20 min`,
/// `λ = 1 /s`, `dmax = 200`; left-deep experiments use `N = 4`, `w = 10 min`,
/// `λ = 1 /s`, `dmax = 50` with the last source drawing from `[1..100·dmax]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of streaming sources `N`.
    pub num_sources: usize,
    /// Sliding-window length `w`, in minutes.
    pub window_minutes: f64,
    /// Mean per-source arrival rate `λ`, in tuples per second.
    pub rate_per_sec: f64,
    /// Maximum column value `dmax` (uniform domain `[1..dmax]`).
    pub dmax: u64,
    /// Multiplier applied to the *last* source's domain (`None` = same as the
    /// others). The left-deep experiments use `Some(100)` per Section VI.
    pub last_source_domain_factor: Option<u64>,
    /// Length of the run in application time.
    pub duration: Duration,
    /// RNG seed; the whole trace is a deterministic function of the spec.
    pub seed: u64,
    /// Arrival process (Poisson by default).
    pub arrival: ArrivalProcess,
    /// Optional Zipf exponent: when set, values are skewed instead of uniform.
    pub zipf_exponent: Option<f64>,
    /// Shared-key mode: every tuple draws a *single* key value and carries it
    /// in all of its columns, so each clique predicate reduces to an equality
    /// between the two tuples' keys. Such workloads are *key-partitionable*:
    /// tuples can only ever join within the same key, which is what the
    /// sharded parallel runtime (`jit-runtime`) exploits to distribute the
    /// join-key space across cores without losing results.
    pub shared_key: bool,
}

impl WorkloadSpec {
    /// Defaults for the bushy-plan experiments (Table III, left column).
    pub fn bushy_default() -> Self {
        WorkloadSpec {
            num_sources: 6,
            window_minutes: 20.0,
            rate_per_sec: 1.0,
            dmax: 200,
            last_source_domain_factor: None,
            duration: Duration::from_mins(60),
            seed: 42,
            arrival: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            zipf_exponent: None,
            shared_key: false,
        }
    }

    /// Defaults for the left-deep-plan experiments (Table III, right column).
    pub fn leftdeep_default() -> Self {
        WorkloadSpec {
            num_sources: 4,
            window_minutes: 10.0,
            rate_per_sec: 1.0,
            dmax: 50,
            last_source_domain_factor: Some(100),
            duration: Duration::from_mins(60),
            seed: 42,
            arrival: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            zipf_exponent: None,
            shared_key: false,
        }
    }

    /// Set the number of sources.
    pub fn with_sources(mut self, n: usize) -> Self {
        self.num_sources = n;
        self
    }

    /// Set the window length in minutes.
    pub fn with_window_minutes(mut self, w: f64) -> Self {
        self.window_minutes = w;
        self
    }

    /// Set the arrival rate (also updates the arrival process's rate).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate_per_sec = rate;
        self.arrival = match self.arrival {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate_per_sec: rate },
            ArrivalProcess::Constant { .. } => ArrivalProcess::Constant { rate_per_sec: rate },
        };
        self
    }

    /// Set `dmax`.
    pub fn with_dmax(mut self, dmax: u64) -> Self {
        self.dmax = dmax;
        self
    }

    /// Set the run length.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switch to the shared-key (key-partitionable) workload: one key value
    /// per tuple, replicated across all columns. See [`WorkloadSpec::shared_key`].
    pub fn with_shared_key(mut self) -> Self {
        self.shared_key = true;
        self
    }

    /// The sliding window corresponding to `window_minutes`.
    pub fn window(&self) -> Window {
        Window::minutes(self.window_minutes)
    }

    /// The catalog of `N` clique sources (each with `N − 1` columns).
    pub fn catalog(&self) -> Catalog {
        Catalog::clique(self.num_sources)
    }

    /// The clique-join predicate over the `N` sources.
    pub fn predicates(&self) -> PredicateSet {
        PredicateSet::clique(self.num_sources)
    }

    /// Per-source generation parameters.
    ///
    /// Every source emits at `rate_per_sec` and carries `N − 1` columns; the
    /// last source's domain is enlarged by `last_source_domain_factor` when
    /// set (the left-deep configuration of Section VI).
    pub fn source_specs(&self) -> Vec<SourceSpec> {
        let n = self.num_sources;
        let cols = n.saturating_sub(1);
        (0..n)
            .map(|i| {
                let name = jit_types::SourceId(i as u16).to_string();
                let dmax = if i + 1 == n {
                    self.dmax * self.last_source_domain_factor.unwrap_or(1)
                } else {
                    self.dmax
                };
                let domain = match self.zipf_exponent {
                    Some(s) => ValueDomain::Zipf {
                        max: dmax,
                        exponent: s,
                    },
                    None => ValueDomain::uniform(dmax),
                };
                SourceSpec::uniform(name, self.rate_per_sec, cols, dmax).with_domain(domain)
            })
            .collect()
    }

    /// Expected number of arrivals over the whole run (all sources).
    pub fn expected_arrivals(&self) -> f64 {
        self.num_sources as f64 * self.rate_per_sec * self.duration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bushy_defaults_match_table_iii() {
        let s = WorkloadSpec::bushy_default();
        assert_eq!(s.num_sources, 6);
        assert_eq!(s.window_minutes, 20.0);
        assert_eq!(s.rate_per_sec, 1.0);
        assert_eq!(s.dmax, 200);
        assert!(s.last_source_domain_factor.is_none());
    }

    #[test]
    fn leftdeep_defaults_match_table_iii() {
        let s = WorkloadSpec::leftdeep_default();
        assert_eq!(s.num_sources, 4);
        assert_eq!(s.window_minutes, 10.0);
        assert_eq!(s.dmax, 50);
        assert_eq!(s.last_source_domain_factor, Some(100));
    }

    #[test]
    fn builders_update_fields() {
        let s = WorkloadSpec::bushy_default()
            .with_sources(8)
            .with_window_minutes(30.0)
            .with_rate(1.6)
            .with_dmax(300)
            .with_seed(7)
            .with_duration(Duration::from_mins(5));
        assert_eq!(s.num_sources, 8);
        assert_eq!(s.window_minutes, 30.0);
        assert_eq!(s.rate_per_sec, 1.6);
        assert_eq!(s.arrival.rate_per_sec(), 1.6);
        assert_eq!(s.dmax, 300);
        assert_eq!(s.seed, 7);
        assert_eq!(s.duration, Duration::from_mins(5));
    }

    #[test]
    fn derived_schema_objects() {
        let s = WorkloadSpec::bushy_default().with_sources(4);
        assert_eq!(s.catalog().num_sources(), 4);
        assert_eq!(s.predicates().len(), 6);
        assert_eq!(s.window().length, Duration::from_mins(20));
        let specs = s.source_specs();
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().all(|sp| sp.num_columns == 3));
        assert!(specs.iter().all(|sp| sp.default_domain.max() == 200));
    }

    #[test]
    fn leftdeep_last_source_has_enlarged_domain() {
        let s = WorkloadSpec::leftdeep_default();
        let specs = s.source_specs();
        assert_eq!(specs[0].default_domain.max(), 50);
        assert_eq!(specs[3].default_domain.max(), 5_000);
    }

    #[test]
    fn zipf_option_switches_domains() {
        let s = WorkloadSpec {
            zipf_exponent: Some(1.1),
            ..WorkloadSpec::bushy_default()
        };
        match s.source_specs()[0].default_domain {
            ValueDomain::Zipf { exponent, .. } => assert_eq!(exponent, 1.1),
            other => panic!("expected zipf, got {other:?}"),
        }
    }

    #[test]
    fn expected_arrivals_formula() {
        let s = WorkloadSpec::bushy_default()
            .with_sources(2)
            .with_rate(2.0)
            .with_duration(Duration::from_secs(30));
        assert_eq!(s.expected_arrivals(), 120.0);
    }

    #[test]
    fn spec_serialises() {
        let s = WorkloadSpec::leftdeep_default();
        let json = serde_json::to_string(&s).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
