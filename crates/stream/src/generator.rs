//! Deterministic workload generation.

use crate::arrival::{ArrivalEvent, ArrivalProcess};
use crate::trace::Trace;
use crate::workload::WorkloadSpec;
use jit_types::{BaseTuple, SourceId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Turns a [`WorkloadSpec`] into a concrete, replayable [`Trace`].
///
/// Each source's arrival times and column values are drawn from an
/// independent RNG seeded from `(spec.seed, source index)`, so changing the
/// number of sources does not perturb the streams of the sources that remain
/// — useful when sweeping `N` (Figures 12 and 16).
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkloadGenerator;

impl WorkloadGenerator {
    /// Generate the full arrival trace for a workload specification.
    pub fn generate(spec: &WorkloadSpec) -> Trace {
        let source_specs = spec.source_specs();
        let duration_ms = spec.duration.as_millis();
        let mut events = Vec::new();
        for (idx, source_spec) in source_specs.iter().enumerate() {
            let source = SourceId(idx as u16);
            // Mix the source index into the seed with a large odd constant so
            // per-source streams are decorrelated but reproducible.
            let seed = spec
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(idx as u64 + 1));
            let mut rng = StdRng::seed_from_u64(seed);
            let process = match spec.arrival {
                ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson {
                    rate_per_sec: source_spec.rate_per_sec,
                },
                ArrivalProcess::Constant { .. } => ArrivalProcess::Constant {
                    rate_per_sec: source_spec.rate_per_sec,
                },
            };
            let times = process.arrival_times(duration_ms, &mut rng);
            for (seq, ts) in times.into_iter().enumerate() {
                let values = if spec.shared_key {
                    // Shared-key mode: one draw, replicated across all
                    // columns, so every clique predicate reduces to an
                    // equality between tuple keys (key-partitionable).
                    let key = source_spec.default_domain.sample(&mut rng);
                    vec![key; source_spec.num_columns]
                } else {
                    source_spec.sample_values(&mut rng)
                };
                let tuple = Arc::new(BaseTuple::new(source, seq as u64, ts, values));
                events.push(ArrivalEvent { ts, source, tuple });
            }
        }
        Trace::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::Duration;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::bushy_default()
            .with_sources(3)
            .with_rate(2.0)
            .with_dmax(20)
            .with_duration(Duration::from_secs(120))
            .with_seed(7)
    }

    #[test]
    fn generates_roughly_expected_volume() {
        let spec = small_spec();
        let trace = WorkloadGenerator::generate(&spec);
        let expected = spec.expected_arrivals();
        let actual = trace.len() as f64;
        assert!(
            (actual - expected).abs() < expected * 0.35,
            "expected ≈{expected}, got {actual}"
        );
    }

    #[test]
    fn all_sources_present_with_correct_arity() {
        let spec = small_spec();
        let trace = WorkloadGenerator::generate(&spec);
        let counts = trace.per_source_counts();
        assert_eq!(counts.len(), 3);
        for e in trace.iter() {
            assert_eq!(e.tuple.arity(), 2); // N - 1 columns
            assert_eq!(e.tuple.ts, e.ts);
            assert_eq!(e.tuple.source, e.source);
            for v in e.tuple.values.iter() {
                let v = v.as_int().unwrap();
                assert!((1..=20).contains(&v));
            }
        }
    }

    #[test]
    fn trace_is_sorted_and_within_duration() {
        let spec = small_spec();
        let trace = WorkloadGenerator::generate(&spec);
        assert!(trace.events().windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(trace.horizon().as_millis() < spec.duration.as_millis());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let a = WorkloadGenerator::generate(&spec);
        let b = WorkloadGenerator::generate(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.tuple, y.tuple);
        }
        let c = WorkloadGenerator::generate(&spec.clone().with_seed(8));
        assert!(a.len() != c.len() || a.iter().zip(c.iter()).any(|(x, y)| x.tuple != y.tuple));
    }

    #[test]
    fn seq_numbers_are_dense_per_source() {
        let spec = small_spec();
        let trace = WorkloadGenerator::generate(&spec);
        for (source, count) in trace.per_source_counts() {
            let mut seqs: Vec<u64> = trace
                .iter()
                .filter(|e| e.source == source)
                .map(|e| e.tuple.seq)
                .collect();
            seqs.sort_unstable();
            assert_eq!(seqs, (0..count as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn adding_a_source_preserves_existing_streams() {
        let spec3 = small_spec();
        let spec4 = small_spec().with_sources(4);
        let t3 = WorkloadGenerator::generate(&spec3);
        let t4 = WorkloadGenerator::generate(&spec4);
        // Arrival times of source 0 are identical in both traces (values
        // differ in arity, so compare timestamps and seq only).
        let a: Vec<(u64, u64)> = t3
            .iter()
            .filter(|e| e.source == SourceId(0))
            .map(|e| (e.ts.as_millis(), e.tuple.seq))
            .collect();
        let b: Vec<(u64, u64)> = t4
            .iter()
            .filter(|e| e.source == SourceId(0))
            .map(|e| (e.ts.as_millis(), e.tuple.seq))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn leftdeep_last_source_uses_enlarged_domain() {
        let spec = WorkloadSpec::leftdeep_default()
            .with_duration(Duration::from_secs(300))
            .with_rate(2.0);
        let trace = WorkloadGenerator::generate(&spec);
        let max_last = trace
            .iter()
            .filter(|e| e.source == SourceId(3))
            .flat_map(|e| e.tuple.values.iter())
            .filter_map(|v| v.as_int())
            .max()
            .unwrap_or(0);
        // Domain is [1..5000]; with hundreds of samples we expect to see
        // values far above the base dmax of 50.
        assert!(max_last > 50, "max value of last source {max_last}");
    }
}
