//! Disorder injection: turn a timestamp-ordered trace into an arrival
//! sequence with bounded late arrivals.
//!
//! The paper's arrival model is in-order (arrival instant = tuple
//! timestamp). Real feeds are not: a fraction of tuples is delayed in
//! transit and shows up after younger tuples have already arrived. The
//! durability tier tolerates that with a watermark-driven reorder stage
//! (`jit_durable::ReorderBuffer`); this module generates the matching
//! workloads.
//!
//! Each selected event keeps its original timestamp but is assigned a
//! *virtual arrival instant* `ts + delay`; the output is the trace re-sorted
//! by that instant. Delays are drawn uniformly from `(0, max_delay]`, so a
//! reorder stage with a lateness bound of at least `max_delay` loses
//! nothing, while a tighter bound drops the tail of the delay distribution
//! — exactly the latency/completeness trade-off the bench sweeps.

use crate::arrival::ArrivalEvent;
use crate::trace::Trace;
use jit_types::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How much disorder to inject into a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisorderSpec {
    /// Fraction of events delayed, in `[0, 1]` (the paper-adjacent sweeps
    /// use 1–10%).
    pub late_fraction: f64,
    /// Upper bound on the injected delay; a delayed event arrives at
    /// `ts + d` with `d` uniform in `(0, max_delay]`.
    pub max_delay: Duration,
    /// Seed for the (deterministic) selection and delay draws.
    pub seed: u64,
}

impl DisorderSpec {
    /// A spec delaying `late_fraction` of events by up to `max_delay`.
    pub fn new(late_fraction: f64, max_delay: Duration, seed: u64) -> Self {
        DisorderSpec {
            late_fraction,
            max_delay,
            seed,
        }
    }

    /// Apply the disorder to a trace: the same events, re-sequenced by
    /// virtual arrival instant. Timestamps are untouched — only the order
    /// (and hence each event's lateness relative to the max timestamp seen
    /// so far) changes. Deterministic given the spec.
    pub fn apply(&self, trace: &Trace) -> Vec<ArrivalEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let max_delay_ms = self.max_delay.as_millis();
        let mut keyed: Vec<(u64, usize, ArrivalEvent)> = trace
            .iter()
            .enumerate()
            .map(|(idx, event)| {
                let late = max_delay_ms > 0 && rng.gen_bool(self.late_fraction);
                let delay = if late {
                    rng.gen_range(1..=max_delay_ms)
                } else {
                    0
                };
                (event.ts.as_millis() + delay, idx, event.clone())
            })
            .collect();
        // The original index breaks ties, so on-time runs keep trace order.
        keyed.sort_by_key(|(arrival, idx, _)| (*arrival, *idx));
        keyed.into_iter().map(|(_, _, event)| event).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, SourceId, Timestamp, Value};
    use std::sync::Arc;

    fn trace(n: u64) -> Trace {
        Trace::new(
            (0..n)
                .map(|i| {
                    let ts = Timestamp::from_millis(i * 100);
                    ArrivalEvent {
                        ts,
                        source: SourceId((i % 2) as u16),
                        tuple: Arc::new(BaseTuple::new(
                            SourceId((i % 2) as u16),
                            i,
                            ts,
                            vec![Value::int(i as i64)],
                        )),
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn zero_fraction_preserves_order() {
        let t = trace(50);
        let spec = DisorderSpec::new(0.0, Duration::from_millis(500), 7);
        let out = spec.apply(&t);
        assert_eq!(out, t.events().to_vec());
    }

    #[test]
    fn disorder_permutes_but_keeps_every_event_and_timestamp() {
        let t = trace(200);
        let spec = DisorderSpec::new(0.1, Duration::from_millis(1_000), 7);
        let out = spec.apply(&t);
        assert_eq!(out.len(), t.len());
        // Same multiset of events…
        let mut seqs: Vec<u64> = out.iter().map(|e| e.tuple.seq).collect();
        seqs.sort();
        assert_eq!(seqs, (0..200).collect::<Vec<_>>());
        // …but no longer in timestamp order.
        assert!(out.windows(2).any(|w| w[0].ts > w[1].ts));
        // Timestamps are untouched.
        assert!(out.iter().all(|e| e.ts == e.tuple.ts));
    }

    #[test]
    fn lateness_is_bounded_by_max_delay() {
        let t = trace(500);
        let max_delay = Duration::from_millis(700);
        let out = DisorderSpec::new(0.2, max_delay, 11).apply(&t);
        let mut frontier = Timestamp::ZERO;
        for e in &out {
            // An event can trail the running max timestamp by at most the
            // injected delay bound.
            assert!(e.ts >= frontier.saturating_sub_duration(max_delay));
            frontier = frontier.max(e.ts);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = trace(100);
        let a = DisorderSpec::new(0.1, Duration::from_millis(300), 5).apply(&t);
        let b = DisorderSpec::new(0.1, Duration::from_millis(300), 5).apply(&t);
        assert_eq!(a, b);
        let c = DisorderSpec::new(0.1, Duration::from_millis(300), 6).apply(&t);
        assert_ne!(a, c);
    }
}
