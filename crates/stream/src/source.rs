//! Per-source workload parameters.

use crate::skew::ZipfSampler;
use jit_types::Value;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The distribution a source draws its column values from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueDomain {
    /// Uniform integers in `[1..=max]` — the paper's default.
    Uniform {
        /// Largest value (the paper's `dmax`).
        max: u64,
    },
    /// Zipf-distributed integers in `[1..=max]` with the given exponent —
    /// a skew extension beyond the paper (hot values appear often).
    Zipf {
        /// Largest value.
        max: u64,
        /// Skew exponent (`s > 0`); larger means more skew.
        exponent: f64,
    },
}

impl ValueDomain {
    /// The uniform domain `[1..=dmax]`.
    pub fn uniform(dmax: u64) -> Self {
        ValueDomain::Uniform { max: dmax }
    }

    /// The largest value of the domain.
    pub fn max(&self) -> u64 {
        match self {
            ValueDomain::Uniform { max } => *max,
            ValueDomain::Zipf { max, .. } => *max,
        }
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut impl Rng) -> Value {
        match self {
            ValueDomain::Uniform { max } => Value::int(rng.gen_range(1..=(*max).max(1)) as i64),
            ValueDomain::Zipf { max, exponent } => {
                let sampler = ZipfSampler::new(*max, *exponent);
                Value::int(sampler.sample(rng) as i64)
            }
        }
    }
}

/// Parameters of one streaming source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Human-readable name (matches the catalog entry).
    pub name: String,
    /// Mean arrival rate in tuples per second (the paper's `λ`).
    pub rate_per_sec: f64,
    /// Number of columns each tuple carries.
    pub num_columns: usize,
    /// Value domain, per column index. If a column has no entry the
    /// `default_domain` is used.
    pub column_domains: Vec<Option<ValueDomain>>,
    /// Default value domain for columns without an override.
    pub default_domain: ValueDomain,
}

impl SourceSpec {
    /// A source with uniform values in `[1..=dmax]` on every column.
    pub fn uniform(
        name: impl Into<String>,
        rate_per_sec: f64,
        num_columns: usize,
        dmax: u64,
    ) -> Self {
        SourceSpec {
            name: name.into(),
            rate_per_sec,
            num_columns,
            column_domains: vec![None; num_columns],
            default_domain: ValueDomain::uniform(dmax),
        }
    }

    /// Override the domain of every column (used by the left-deep setup where
    /// the last source draws from `[1..100·dmax]`).
    pub fn with_domain(mut self, domain: ValueDomain) -> Self {
        self.default_domain = domain;
        self
    }

    /// Override the domain of a single column.
    pub fn with_column_domain(mut self, column: usize, domain: ValueDomain) -> Self {
        if column < self.column_domains.len() {
            self.column_domains[column] = Some(domain);
        }
        self
    }

    /// The effective domain of a column.
    pub fn domain_of(&self, column: usize) -> ValueDomain {
        self.column_domains
            .get(column)
            .copied()
            .flatten()
            .unwrap_or(self.default_domain)
    }

    /// Draw the column values for one tuple.
    pub fn sample_values(&self, rng: &mut impl Rng) -> Vec<Value> {
        (0..self.num_columns)
            .map(|c| self.domain_of(c).sample(rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_values_stay_in_range() {
        let dom = ValueDomain::uniform(50);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = dom.sample(&mut rng).as_int().unwrap();
            assert!((1..=50).contains(&v));
        }
        assert_eq!(dom.max(), 50);
    }

    #[test]
    fn uniform_with_max_one_is_constant() {
        let dom = ValueDomain::uniform(1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(dom.sample(&mut rng), Value::int(1));
    }

    #[test]
    fn zipf_values_stay_in_range_and_prefer_small() {
        let dom = ValueDomain::Zipf {
            max: 100,
            exponent: 1.2,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut small = 0;
        for _ in 0..2_000 {
            let v = dom.sample(&mut rng).as_int().unwrap();
            assert!((1..=100).contains(&v));
            if v <= 10 {
                small += 1;
            }
        }
        // With exponent 1.2, well over half the mass sits on the 10 smallest values.
        assert!(small > 1_000, "small-value count {small}");
    }

    #[test]
    fn source_spec_samples_right_arity() {
        let spec = SourceSpec::uniform("A", 1.0, 3, 200);
        let mut rng = StdRng::seed_from_u64(4);
        let vals = spec.sample_values(&mut rng);
        assert_eq!(vals.len(), 3);
        for v in vals {
            assert!((1..=200).contains(&v.as_int().unwrap()));
        }
    }

    #[test]
    fn per_column_override_applies() {
        let spec =
            SourceSpec::uniform("D", 1.0, 2, 50).with_column_domain(1, ValueDomain::uniform(5_000));
        assert_eq!(spec.domain_of(0).max(), 50);
        assert_eq!(spec.domain_of(1).max(), 5_000);
        // out-of-range column override is ignored
        let spec2 =
            SourceSpec::uniform("D", 1.0, 2, 50).with_column_domain(9, ValueDomain::uniform(5_000));
        assert_eq!(spec2.domain_of(0).max(), 50);
    }

    #[test]
    fn whole_source_override_applies() {
        let spec = SourceSpec::uniform("D", 1.0, 2, 50).with_domain(ValueDomain::uniform(5_000));
        assert_eq!(spec.domain_of(0).max(), 5_000);
        assert_eq!(spec.domain_of(1).max(), 5_000);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let spec = SourceSpec::uniform("A", 1.0, 4, 300);
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| spec.sample_values(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| spec.sample_values(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
