//! # jit-stream
//!
//! Synthetic stream workload generation, reproducing the experimental setup
//! of Section VI of the paper:
//!
//! * `N` streaming sources, each with an average arrival rate of `λ` tuples
//!   per second (Poisson arrivals).
//! * Every tuple carries `N − 1` integer columns, one per partner source,
//!   with values drawn uniformly from `[1..dmax]` (per-source overrides are
//!   supported — the left-deep experiments feed the last source with values
//!   from `[1..100·dmax]`).
//! * A clique equi-join predicate connects every pair of sources.
//!
//! The generator is fully deterministic given a seed, so every experiment is
//! reproducible and REF / DOE / JIT executions of the same configuration see
//! exactly the same arrival trace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod disorder;
pub mod generator;
pub mod partition;
pub mod skew;
pub mod source;
pub mod static_rel;
pub mod trace;
pub mod workload;

pub use arrival::{ArrivalEvent, ArrivalProcess};
pub use disorder::DisorderSpec;
pub use generator::WorkloadGenerator;
pub use partition::ShardPartitioner;
pub use source::{SourceSpec, ValueDomain};
pub use trace::Trace;
pub use workload::WorkloadSpec;
