//! Arrival traces: the fully materialised input of one experiment run.

use crate::arrival::ArrivalEvent;
use jit_types::{SourceId, Timestamp};
use std::collections::BTreeMap;

/// A time-ordered sequence of arrival events across all sources.
///
/// Traces are generated once per experiment configuration and then replayed
/// against each execution mode (REF, DOE, JIT), guaranteeing that every mode
/// sees exactly the same input.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<ArrivalEvent>,
}

impl Trace {
    /// Build a trace from events, sorting them into temporal order.
    ///
    /// Ties on the timestamp are broken by source id and then sequence
    /// number so replay order is fully deterministic.
    pub fn new(mut events: Vec<ArrivalEvent>) -> Self {
        events.sort_by_key(|e| (e.ts, e.source, e.tuple.seq));
        Trace { events }
    }

    /// The empty trace.
    pub fn empty() -> Self {
        Trace::default()
    }

    /// Number of arrival events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in replay order.
    pub fn events(&self) -> &[ArrivalEvent] {
        &self.events
    }

    /// Iterate over the events in replay order.
    pub fn iter(&self) -> impl Iterator<Item = &ArrivalEvent> {
        self.events.iter()
    }

    /// Timestamp of the last arrival (or time zero for an empty trace).
    pub fn horizon(&self) -> Timestamp {
        self.events.last().map(|e| e.ts).unwrap_or(Timestamp::ZERO)
    }

    /// Number of arrivals per source.
    pub fn per_source_counts(&self) -> BTreeMap<SourceId, usize> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.source).or_insert(0) += 1;
        }
        counts
    }

    /// Merge two traces into one (re-sorted).
    pub fn merge(self, other: Trace) -> Trace {
        let mut events = self.events;
        events.extend(other.events);
        Trace::new(events)
    }

    /// Keep only the events arriving strictly before `cutoff` — useful for
    /// scaling an experiment down without regenerating the workload.
    pub fn truncate_at(&self, cutoff: Timestamp) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .filter(|e| e.ts < cutoff)
                .cloned()
                .collect(),
        }
    }
}

impl IntoIterator for Trace {
    type Item = ArrivalEvent;
    type IntoIter = std::vec::IntoIter<ArrivalEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Value};
    use std::sync::Arc;

    fn ev(source: u16, seq: u64, ts_ms: u64) -> ArrivalEvent {
        let ts = Timestamp::from_millis(ts_ms);
        ArrivalEvent {
            ts,
            source: SourceId(source),
            tuple: Arc::new(BaseTuple::new(
                SourceId(source),
                seq,
                ts,
                vec![Value::int(1)],
            )),
        }
    }

    #[test]
    fn construction_sorts_events() {
        let t = Trace::new(vec![ev(1, 1, 500), ev(0, 1, 100), ev(0, 2, 300)]);
        let times: Vec<u64> = t.iter().map(|e| e.ts.as_millis()).collect();
        assert_eq!(times, vec![100, 300, 500]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.horizon(), Timestamp::from_millis(500));
    }

    #[test]
    fn ties_break_by_source_then_seq() {
        let t = Trace::new(vec![ev(1, 5, 100), ev(0, 9, 100), ev(0, 2, 100)]);
        let order: Vec<(u16, u64)> = t.iter().map(|e| (e.source.0, e.tuple.seq)).collect();
        assert_eq!(order, vec![(0, 2), (0, 9), (1, 5)]);
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::empty();
        assert!(t.is_empty());
        assert_eq!(t.horizon(), Timestamp::ZERO);
        assert!(t.per_source_counts().is_empty());
    }

    #[test]
    fn per_source_counts() {
        let t = Trace::new(vec![ev(0, 1, 1), ev(0, 2, 2), ev(1, 1, 3)]);
        let counts = t.per_source_counts();
        assert_eq!(counts[&SourceId(0)], 2);
        assert_eq!(counts[&SourceId(1)], 1);
    }

    #[test]
    fn merge_combines_and_resorts() {
        let a = Trace::new(vec![ev(0, 1, 10), ev(0, 2, 30)]);
        let b = Trace::new(vec![ev(1, 1, 20)]);
        let m = a.merge(b);
        let times: Vec<u64> = m.iter().map(|e| e.ts.as_millis()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let t = Trace::new(vec![ev(0, 1, 10), ev(0, 2, 20), ev(0, 3, 30)]);
        let cut = t.truncate_at(Timestamp::from_millis(30));
        assert_eq!(cut.len(), 2);
        assert_eq!(cut.horizon(), Timestamp::from_millis(20));
    }

    #[test]
    fn into_iterator_consumes() {
        let t = Trace::new(vec![ev(0, 1, 10), ev(1, 1, 5)]);
        let v: Vec<ArrivalEvent> = t.into_iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].ts, Timestamp::from_millis(5));
    }
}
