//! Parallel experiment entry point: workload → sharded engine → outcome.
//!
//! Legacy shims. [`run_parallel`] and [`run_parallel_trace`] predate the
//! unified engine API and survive as thin wrappers over
//! `jit_engine::Engine` with a `.sharded(...)` backend — prefer building
//! the engine directly:
//!
//! ```ignore
//! let outcome = Engine::builder()
//!     .workload(&spec, &shape)
//!     .mode(mode)
//!     .sharded(RuntimeConfig::with_shards(8))
//!     .build()?
//!     .run_trace(&trace)?;
//! ```
//!
//! Correctness requires a *key-partitionable* workload — use
//! [`parallel_workload`] (or `WorkloadSpec::with_shared_key`) so that every
//! join predicate reduces to key equality and sharding is lossless. Unlike
//! the pre-engine entry points, a workload that is neither shared-key nor
//! statically partitionable is now rejected with
//! [`jit_engine::EngineError::NotPartitionable`] instead of silently losing
//! results. The shard-determinism integration tests assert set-equality
//! against the single-threaded executor for shard counts 1, 2 and 4.

use jit_core::policy::ExecutionMode;
use jit_engine::{Engine, EngineError};
use jit_exec::executor::ExecutorConfig;
use jit_plan::shapes::PlanShape;
use jit_runtime::{ParallelOutcome, RuntimeConfig};
use jit_stream::{Trace, WorkloadGenerator, WorkloadSpec};

/// A Table-III-style workload that is safe to shard: shared-key mode on,
/// with a key domain of `dmax`.
pub fn parallel_workload(num_sources: usize, dmax: u64) -> WorkloadSpec {
    WorkloadSpec::bushy_default()
        .with_sources(num_sources)
        .with_dmax(dmax)
        .with_shared_key()
}

/// Generate the workload described by `spec` and execute it across shards.
///
/// Equivalent to [`run_parallel_trace`] on a freshly generated trace.
pub fn run_parallel(
    spec: &WorkloadSpec,
    shape: &PlanShape,
    mode: ExecutionMode,
    exec_config: ExecutorConfig,
    runtime_config: RuntimeConfig,
) -> Result<ParallelOutcome, EngineError> {
    let trace = WorkloadGenerator::generate(spec);
    run_parallel_trace(&trace, spec, shape, mode, exec_config, runtime_config)
}

/// Execute a pre-generated trace across shards (so different shard counts
/// and modes see identical input).
///
/// Each shard's worker owns its own instance of the plan described by
/// `shape` + `spec` under `mode` — operators are stateful, so instances are
/// never shared.
pub fn run_parallel_trace(
    trace: &Trace,
    spec: &WorkloadSpec,
    shape: &PlanShape,
    mode: ExecutionMode,
    exec_config: ExecutorConfig,
    runtime_config: RuntimeConfig,
) -> Result<ParallelOutcome, EngineError> {
    let outcome = Engine::builder()
        .workload(spec, shape)
        .mode(mode)
        .executor_config(exec_config)
        .sharded(runtime_config)
        .build()?
        .run_trace(trace)?;
    Ok(ParallelOutcome {
        results: outcome.results,
        results_count: outcome.results_count,
        order_violations: outcome.order_violations,
        snapshot: outcome.snapshot,
        per_shard: outcome.per_shard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_exec::output;
    use jit_plan::runtime::QueryRuntime;
    use jit_types::Duration;

    fn small_spec() -> WorkloadSpec {
        parallel_workload(3, 20)
            .with_rate(1.0)
            .with_window_minutes(2.0)
            .with_duration(Duration::from_secs(120))
            .with_seed(17)
    }

    #[test]
    fn parallel_ref_matches_sequential_ref() {
        let spec = small_spec();
        let shape = PlanShape::bushy(3);
        let trace = WorkloadGenerator::generate(&spec);
        let sequential = QueryRuntime::run_trace(
            &trace,
            &spec,
            &shape,
            ExecutionMode::Ref,
            ExecutorConfig::default(),
        )
        .unwrap();
        let parallel = run_parallel_trace(
            &trace,
            &spec,
            &shape,
            ExecutionMode::Ref,
            ExecutorConfig::default(),
            RuntimeConfig::with_shards(3),
        )
        .unwrap();
        assert!(
            sequential.results_count > 0,
            "workload must produce results"
        );
        assert_eq!(parallel.results_count, sequential.results_count);
        assert!(output::same_results(&sequential.results, &parallel.results));
        assert!(output::is_temporally_ordered(&parallel.results));
        assert_eq!(parallel.order_violations, 0);
        assert_eq!(parallel.snapshot.stats.tuples_arrived, trace.len() as u64);
    }

    #[test]
    fn run_parallel_generates_and_runs() {
        let outcome = run_parallel(
            &small_spec(),
            &PlanShape::left_deep(3),
            ExecutionMode::Ref,
            ExecutorConfig::default(),
            RuntimeConfig::with_shards(2),
        )
        .unwrap();
        assert_eq!(outcome.per_shard.len(), 2);
        assert!(outcome.snapshot.stats.tuples_arrived > 0);
    }

    #[test]
    fn non_partitionable_workload_is_rejected_not_silently_wrong() {
        // No shared key: the clique predicates cannot be hash-sharded.
        let spec = WorkloadSpec::bushy_default()
            .with_sources(3)
            .with_duration(Duration::from_secs(30));
        let result = run_parallel(
            &spec,
            &PlanShape::bushy(3),
            ExecutionMode::Ref,
            ExecutorConfig::default(),
            RuntimeConfig::with_shards(2),
        );
        assert!(matches!(result, Err(EngineError::NotPartitionable { .. })));
    }
}
