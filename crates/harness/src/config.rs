//! Experiment configuration.

use jit_core::policy::ExecutionMode;
use jit_plan::shapes::PlanShape;
use jit_stream::WorkloadSpec;
use jit_types::Duration;
use serde::{Deserialize, Serialize};

/// One experiment: a plan, a base workload, and the execution modes to
/// compare on it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Human-readable name (e.g. `"fig10"`).
    pub name: String,
    /// Plan shape.
    pub shape: PlanShape,
    /// Base workload (Table III defaults; sweeps override one field).
    pub workload: WorkloadSpec,
    /// Execution modes to compare (typically REF and JIT).
    pub modes: Vec<ExecutionMode>,
}

impl ExperimentConfig {
    /// The bushy-plan default configuration of Table III (`N = 6`,
    /// `w = 20 min`, `λ = 1/s`, `dmax = 200`).
    pub fn bushy_default() -> Self {
        ExperimentConfig {
            name: "bushy-default".to_string(),
            shape: PlanShape::bushy(6),
            workload: WorkloadSpec::bushy_default(),
            modes: vec![
                ExecutionMode::Ref,
                ExecutionMode::Jit(jit_core::policy::JitPolicy::full()),
            ],
        }
    }

    /// The left-deep default configuration of Table III (`N = 4`,
    /// `w = 10 min`, `λ = 1/s`, `dmax = 50`, last source enlarged 100×).
    pub fn leftdeep_default() -> Self {
        ExperimentConfig {
            name: "leftdeep-default".to_string(),
            shape: PlanShape::left_deep(4),
            workload: WorkloadSpec::leftdeep_default(),
            modes: vec![
                ExecutionMode::Ref,
                ExecutionMode::Jit(jit_core::policy::JitPolicy::full()),
            ],
        }
    }

    /// Scale the run length. The paper uses 5 hours of application time per
    /// point; a scale of 1.0 here corresponds to 60 minutes, so `scale = 5.0`
    /// reproduces the paper's duration and smaller values keep benches fast.
    pub fn with_duration_scale(mut self, scale: f64) -> Self {
        let minutes = (60.0 * scale).max(1.0);
        self.workload.duration = Duration::from_mins_f64(minutes);
        self
    }

    /// Override the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.workload.seed = seed;
        self
    }

    /// Also compare the DOE baseline.
    pub fn with_doe(mut self) -> Self {
        if !self.modes.iter().any(|m| matches!(m, ExecutionMode::Doe)) {
            self.modes.push(ExecutionMode::Doe);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_table_iii() {
        let bushy = ExperimentConfig::bushy_default();
        assert_eq!(bushy.shape, PlanShape::bushy(6));
        assert_eq!(bushy.workload.window_minutes, 20.0);
        assert_eq!(bushy.workload.dmax, 200);
        assert_eq!(bushy.modes.len(), 2);
        let ld = ExperimentConfig::leftdeep_default();
        assert_eq!(ld.shape, PlanShape::left_deep(4));
        assert_eq!(ld.workload.dmax, 50);
        assert_eq!(ld.workload.last_source_domain_factor, Some(100));
    }

    #[test]
    fn duration_scale_and_seed() {
        let c = ExperimentConfig::bushy_default()
            .with_duration_scale(0.1)
            .with_seed(7);
        assert_eq!(c.workload.duration, Duration::from_mins_f64(6.0));
        assert_eq!(c.workload.seed, 7);
        // Scaling below the floor clamps to one minute.
        let tiny = ExperimentConfig::bushy_default().with_duration_scale(0.0001);
        assert_eq!(tiny.workload.duration, Duration::from_mins_f64(1.0));
    }

    #[test]
    fn with_doe_adds_mode_once() {
        let c = ExperimentConfig::bushy_default().with_doe().with_doe();
        assert_eq!(
            c.modes
                .iter()
                .filter(|m| matches!(m, ExecutionMode::Doe))
                .count(),
            1
        );
    }
}
