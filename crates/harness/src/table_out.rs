//! Plain-text and CSV rendering of measured figures.

use crate::figures::FigureResult;
use std::fmt::Write as _;

/// Render a figure as a plain-text table with one row per swept value and
/// per-mode CPU cost, peak memory and result count columns — the "rows the
/// paper reports" for each figure.
pub fn render_table(result: &FigureResult) -> String {
    let modes: Vec<String> = result
        .rows
        .first()
        .map(|r| r.measurements.iter().map(|(m, _, _)| m.clone()).collect())
        .unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "{} — {}", result.id, result.caption);
    let mut header = format!("{:>12}", result.x_label);
    for m in &modes {
        header.push_str(&format!(
            " | {:>14} {:>12} {:>10}",
            format!("{m} cost(Mu)"),
            format!("{m} mem(KB)"),
            format!("{m} results")
        ));
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    for row in &result.rows {
        let mut line = format!("{:>12.2}", row.x);
        for m in &modes {
            if let Some((_, snap, results)) = row.measurements.iter().find(|(name, _, _)| name == m)
            {
                line.push_str(&format!(
                    " | {:>14.3} {:>12.1} {:>10}",
                    snap.steady_cost_units as f64 / 1.0e6,
                    snap.steady_peak_memory_bytes as f64 / 1024.0,
                    results
                ));
            }
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Render a figure as CSV (one line per swept value, per-mode columns).
pub fn render_csv(result: &FigureResult) -> String {
    let modes: Vec<String> = result
        .rows
        .first()
        .map(|r| r.measurements.iter().map(|(m, _, _)| m.clone()).collect())
        .unwrap_or_default();
    let mut out = String::new();
    let mut header = vec!["x".to_string()];
    for m in &modes {
        header.push(format!("{m}_cost_units"));
        header.push(format!("{m}_wall_seconds"));
        header.push(format!("{m}_peak_memory_kb"));
        header.push(format!("{m}_results"));
        header.push(format!("{m}_intermediate_produced"));
        header.push(format!("{m}_intermediate_suppressed"));
    }
    let _ = writeln!(out, "{}", header.join(","));
    for row in &result.rows {
        let mut fields = vec![format!("{}", row.x)];
        for m in &modes {
            if let Some((_, snap, results)) = row.measurements.iter().find(|(name, _, _)| name == m)
            {
                fields.push(snap.steady_cost_units.to_string());
                fields.push(format!("{:.6}", snap.wall_seconds));
                fields.push(format!(
                    "{:.2}",
                    snap.steady_peak_memory_bytes as f64 / 1024.0
                ));
                fields.push(results.to_string());
                fields.push(snap.stats.intermediate_produced.to_string());
                fields.push(snap.stats.intermediate_suppressed.to_string());
            }
        }
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureRow;
    use jit_metrics::{ExecStats, MetricsSnapshot};

    fn snapshot(cost: u64, mem: usize) -> MetricsSnapshot {
        MetricsSnapshot {
            stats: ExecStats {
                intermediate_produced: 10,
                intermediate_suppressed: 5,
                ..ExecStats::default()
            },
            cost_units: cost,
            steady_cost_units: cost,
            wall_seconds: 0.5,
            peak_memory_bytes: mem,
            steady_peak_memory_bytes: mem,
            final_memory_bytes: mem / 2,
            ..MetricsSnapshot::zero()
        }
    }

    fn sample() -> FigureResult {
        FigureResult {
            id: "figX".into(),
            caption: "sample".into(),
            x_label: "w (min)".into(),
            rows: vec![FigureRow {
                x: 10.0,
                measurements: vec![
                    ("JIT".into(), snapshot(1_000_000, 2048), 42),
                    ("REF".into(), snapshot(9_000_000, 8192), 42),
                ],
            }],
        }
    }

    #[test]
    fn table_contains_modes_and_values() {
        let text = render_table(&sample());
        assert!(text.contains("figX"));
        assert!(text.contains("JIT cost(Mu)"));
        assert!(text.contains("REF cost(Mu)"));
        assert!(text.contains("10.00"));
        assert!(text.contains("42"));
    }

    #[test]
    fn csv_has_header_and_one_row() {
        let csv = render_csv(&sample());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("JIT_cost_units"));
        assert!(lines[0].contains("REF_peak_memory_kb"));
        assert!(lines[1].starts_with("10,"));
        assert!(lines[1].contains("1000000"));
    }

    #[test]
    fn empty_result_renders_without_panicking() {
        let empty = FigureResult {
            id: "empty".into(),
            caption: "".into(),
            x_label: "x".into(),
            rows: vec![],
        };
        assert!(render_table(&empty).contains("empty"));
        assert!(render_csv(&empty).starts_with("x"));
    }
}
