//! # jit-harness
//!
//! The experiment harness that regenerates the paper's evaluation
//! (Section VI): every figure is a parameter sweep comparing JIT against REF
//! (and optionally DOE) on synthetic clique-join workloads, reporting CPU
//! cost and peak memory.
//!
//! * [`config`] — experiment configuration: plan shape, workload, modes and
//!   a duration scale (the paper runs 5 hours of application time per point;
//!   the harness defaults to minutes and scales linearly).
//! * [`figures`] — the definitions of Figures 10–17 (which parameter is
//!   swept, over which values, on which plan family) and the sweep runner.
//! * [`table_out`] — plain-text and CSV rendering of the measured series,
//!   mirroring the "rows/series the paper reports".
//! * [`parallel`] — the multi-core entry point: the same workloads executed
//!   across hash-partitioned shards by `jit-runtime`, for the scaling
//!   benchmarks beyond the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod figures;
pub mod parallel;
pub mod table_out;

pub use config::ExperimentConfig;
pub use figures::{run_figure, FigureResult, FigureRow, FigureSpec, SweepParameter};
pub use parallel::{parallel_workload, run_parallel, run_parallel_trace};
pub use table_out::{render_csv, render_table};
