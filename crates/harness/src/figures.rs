//! Definitions and runners for Figures 10–17 of the paper.
//!
//! Each figure sweeps one workload parameter (window size `w`, stream rate
//! `λ`, number of sources `N`, or maximum column value `dmax`) on one plan
//! family (bushy or left-deep) and reports, for every swept value, the CPU
//! cost and peak memory of JIT and REF.

use crate::config::ExperimentConfig;
use jit_engine::Engine;
use jit_exec::executor::ExecutorConfig;
use jit_exec::state::StateIndexMode;
use jit_metrics::MetricsSnapshot;
use jit_plan::shapes::PlanShape;
use jit_stream::WorkloadGenerator;
use serde::{Deserialize, Serialize};

/// The workload parameter a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SweepParameter {
    /// Window size in minutes (Figures 10 and 14).
    WindowMinutes,
    /// Stream rate in tuples per second (Figures 11 and 15).
    RatePerSec,
    /// Number of sources (Figures 12 and 16).
    NumSources,
    /// Maximum column value (Figures 13 and 17).
    DMax,
}

impl SweepParameter {
    /// Axis label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            SweepParameter::WindowMinutes => "w (min)",
            SweepParameter::RatePerSec => "lambda (/s)",
            SweepParameter::NumSources => "N",
            SweepParameter::DMax => "dmax",
        }
    }
}

/// The specification of one figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureSpec {
    /// Identifier, e.g. `"fig10"`.
    pub id: String,
    /// Caption matching the paper.
    pub caption: String,
    /// Base experiment configuration (Table III defaults).
    pub base: ExperimentConfig,
    /// The swept parameter.
    pub parameter: SweepParameter,
    /// Values of the swept parameter.
    pub values: Vec<f64>,
}

impl FigureSpec {
    /// All eight figures of Section VI, in paper order.
    pub fn all() -> Vec<FigureSpec> {
        vec![
            Self::fig10(),
            Self::fig11(),
            Self::fig12(),
            Self::fig13(),
            Self::fig14(),
            Self::fig15(),
            Self::fig16(),
            Self::fig17(),
        ]
    }

    /// Look up a figure by id (`"fig10"` … `"fig17"`).
    pub fn by_id(id: &str) -> Option<FigureSpec> {
        Self::all().into_iter().find(|f| f.id == id)
    }

    /// Figure 10: overhead vs window size `w` (bushy plan).
    pub fn fig10() -> FigureSpec {
        FigureSpec {
            id: "fig10".into(),
            caption: "Overhead vs. window size w (bushy plan)".into(),
            base: ExperimentConfig::bushy_default(),
            parameter: SweepParameter::WindowMinutes,
            values: vec![10.0, 15.0, 20.0, 25.0, 30.0],
        }
    }

    /// Figure 11: overhead vs stream rate `λ` (bushy plan).
    pub fn fig11() -> FigureSpec {
        FigureSpec {
            id: "fig11".into(),
            caption: "Overhead vs. stream rate lambda (bushy plan)".into(),
            base: ExperimentConfig::bushy_default(),
            parameter: SweepParameter::RatePerSec,
            values: vec![0.4, 0.7, 1.0, 1.3, 1.6],
        }
    }

    /// Figure 12: overhead vs number of sources `N` (bushy plan).
    pub fn fig12() -> FigureSpec {
        FigureSpec {
            id: "fig12".into(),
            caption: "Overhead vs. number of sources N (bushy plan)".into(),
            base: ExperimentConfig::bushy_default(),
            parameter: SweepParameter::NumSources,
            values: vec![4.0, 5.0, 6.0, 7.0, 8.0],
        }
    }

    /// Figure 13: overhead vs maximum data value `dmax` (bushy plan).
    pub fn fig13() -> FigureSpec {
        FigureSpec {
            id: "fig13".into(),
            caption: "Overhead vs. max data value dmax (bushy plan)".into(),
            base: ExperimentConfig::bushy_default(),
            parameter: SweepParameter::DMax,
            values: vec![100.0, 150.0, 200.0, 250.0, 300.0],
        }
    }

    /// Figure 14: overhead vs window size `w` (left-deep plan).
    pub fn fig14() -> FigureSpec {
        FigureSpec {
            id: "fig14".into(),
            caption: "Overhead vs. window size w (left-deep plan)".into(),
            base: ExperimentConfig::leftdeep_default(),
            parameter: SweepParameter::WindowMinutes,
            values: vec![5.0, 7.5, 10.0, 12.5, 15.0],
        }
    }

    /// Figure 15: overhead vs stream rate `λ` (left-deep plan).
    pub fn fig15() -> FigureSpec {
        FigureSpec {
            id: "fig15".into(),
            caption: "Overhead vs. stream rate lambda (left-deep plan)".into(),
            base: ExperimentConfig::leftdeep_default(),
            parameter: SweepParameter::RatePerSec,
            values: vec![0.4, 0.7, 1.0, 1.3, 1.6],
        }
    }

    /// Figure 16: overhead vs number of sources `N` (left-deep plan).
    pub fn fig16() -> FigureSpec {
        FigureSpec {
            id: "fig16".into(),
            caption: "Overhead vs. number of sources N (left-deep plan)".into(),
            base: ExperimentConfig::leftdeep_default(),
            parameter: SweepParameter::NumSources,
            values: vec![3.0, 4.0, 5.0, 6.0],
        }
    }

    /// Figure 17: overhead vs maximum data value `dmax` (left-deep plan).
    pub fn fig17() -> FigureSpec {
        FigureSpec {
            id: "fig17".into(),
            caption: "Overhead vs. max data value dmax (left-deep plan)".into(),
            base: ExperimentConfig::leftdeep_default(),
            parameter: SweepParameter::DMax,
            values: vec![30.0, 40.0, 50.0, 60.0, 70.0],
        }
    }

    /// The experiment configuration for one swept value.
    pub fn config_for(&self, value: f64) -> ExperimentConfig {
        let mut config = self.base.clone();
        match self.parameter {
            SweepParameter::WindowMinutes => {
                config.workload = config.workload.with_window_minutes(value);
            }
            SweepParameter::RatePerSec => {
                config.workload = config.workload.with_rate(value);
            }
            SweepParameter::NumSources => {
                let n = value.round() as usize;
                config.workload = config.workload.with_sources(n);
                config.shape = PlanShape {
                    num_sources: n,
                    ..config.shape
                };
            }
            SweepParameter::DMax => {
                config.workload = config.workload.with_dmax(value.round() as u64);
            }
        }
        config
    }
}

/// One measured point of a figure: the swept value and, per mode, the
/// metrics snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// The swept parameter value.
    pub x: f64,
    /// `(mode label, snapshot, final result count)` per execution mode.
    pub measurements: Vec<(String, MetricsSnapshot, u64)>,
}

/// A fully measured figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureResult {
    /// The figure's identifier.
    pub id: String,
    /// The figure's caption.
    pub caption: String,
    /// Axis label of the swept parameter.
    pub x_label: String,
    /// One row per swept value.
    pub rows: Vec<FigureRow>,
}

impl FigureResult {
    /// The series of CPU cost units for one mode (row order).
    pub fn cost_series(&self, mode: &str) -> Vec<u64> {
        self.rows
            .iter()
            .filter_map(|row| {
                row.measurements
                    .iter()
                    .find(|(m, _, _)| m == mode)
                    .map(|(_, snap, _)| snap.steady_cost_units)
            })
            .collect()
    }

    /// The series of peak memory (KB) for one mode (row order).
    pub fn memory_series(&self, mode: &str) -> Vec<f64> {
        self.rows
            .iter()
            .filter_map(|row| {
                row.measurements
                    .iter()
                    .find(|(m, _, _)| m == mode)
                    .map(|(_, snap, _)| snap.steady_peak_memory_bytes as f64 / 1024.0)
            })
            .collect()
    }
}

/// Run one figure: every swept value, every mode, on the same seeded trace
/// per value (each mode runs on its own [`Engine`] over the shared trace).
/// `duration_scale` scales application time (1.0 = 60 minutes per point;
/// the paper uses 5 hours = 5.0).
///
/// The figures pin [`StateIndexMode::Scan`]: the paper's cost model (and
/// its JIT-beats-REF CPU claims) assume nested-loop operator states, whose
/// dominant probe term is exactly what suppression saves. Under the
/// hash-indexed states (the engine default) REF itself becomes
/// output-sensitive and the relative CPU gap narrows — that regime is
/// measured separately by the `bench_indexed_join` probe-scaling bench, not
/// by the paper-reproduction figures.
pub fn run_figure(spec: &FigureSpec, duration_scale: f64, seed: u64) -> FigureResult {
    let mut rows = Vec::with_capacity(spec.values.len());
    for &value in &spec.values {
        let config = spec
            .config_for(value)
            .with_duration_scale(duration_scale)
            .with_seed(seed);
        let exec_config = ExecutorConfig {
            collect_results: false,
            check_temporal_order: false,
        };
        let trace = WorkloadGenerator::generate(&config.workload);
        let outcomes = Engine::builder()
            .workload(&config.workload, &config.shape)
            .executor_config(exec_config)
            .state_index(StateIndexMode::Scan)
            .compare(&trace, &config.modes)
            // INVARIANT: the built-in figure workloads construct valid plans;
            // a failure here is a bug in this crate's own tables.
            .expect("figure plans are valid by construction");
        let measurements = outcomes
            .into_iter()
            .map(|o| (o.mode_label.to_string(), o.snapshot, o.results_count))
            .collect();
        rows.push(FigureRow {
            x: value,
            measurements,
        });
    }
    FigureResult {
        id: spec.id.clone(),
        caption: spec.caption.clone(),
        x_label: spec.parameter.label().to_string(),
        rows,
    }
}

/// The duration scale below which the *memory* expectation is not checked.
///
/// Below this scale the run is shorter than (or comparable to) the window,
/// so nothing ever expires: REF's operator states sit at their no-expiry
/// ceiling and JIT's auxiliary structures (MNS buffers, blacklists) stack
/// *on top of* near-identical states, leaving JIT's peak a few percent
/// above REF's until expiry starts reclaiming the storage that suppression
/// avoided. The effect is inherent to the no-expiry regime, not a bug —
/// the paper's own setting (scale 5.0, five hours per point) is deep in
/// the expiring regime, where JIT's memory advantage is the headline
/// result. CPU-cost and result-count expectations hold at every scale and
/// are always checked.
pub const MEMORY_CHECK_MIN_SCALE: f64 = 0.3;

/// Check the qualitative claims of the paper on a measured figure: JIT's
/// CPU cost (at any `duration_scale`) and peak memory (at scales ≥
/// [`MEMORY_CHECK_MIN_SCALE`], see there) do not exceed REF's at any swept
/// point, and both modes report the same number of final results. A 10%
/// slack is allowed on both metrics because on very short, low-selectivity
/// runs JIT's auxiliary structures (MNS buffers, blacklists) can cost a few
/// percent before the suppression savings kick in. Returns a list of
/// violations (empty = the figure reproduces the paper's shape).
pub fn check_expectations(result: &FigureResult, duration_scale: f64) -> Vec<String> {
    const SLACK: f64 = 1.10;
    let mut violations = Vec::new();
    for row in &result.rows {
        let find = |mode: &str| row.measurements.iter().find(|(m, _, _)| m == mode);
        let (Some(ref_m), Some(jit_m)) = (find("REF"), find("JIT")) else {
            violations.push(format!("{}: missing REF or JIT at x={}", result.id, row.x));
            continue;
        };
        if jit_m.1.steady_cost_units as f64 > ref_m.1.steady_cost_units as f64 * SLACK {
            violations.push(format!(
                "{}: JIT cost {} exceeds REF cost {} at x={}",
                result.id, jit_m.1.steady_cost_units, ref_m.1.steady_cost_units, row.x
            ));
        }
        // Memory is only comparable once the run actually expires tuples;
        // see MEMORY_CHECK_MIN_SCALE for why short runs inherently favour
        // REF here.
        if duration_scale >= MEMORY_CHECK_MIN_SCALE
            && jit_m.1.steady_peak_memory_bytes as f64
                > ref_m.1.steady_peak_memory_bytes as f64 * SLACK
        {
            violations.push(format!(
                "{}: JIT peak memory {} exceeds REF {} at x={}",
                result.id,
                jit_m.1.steady_peak_memory_bytes,
                ref_m.1.steady_peak_memory_bytes,
                row.x
            ));
        }
        if jit_m.2 != ref_m.2 {
            violations.push(format!(
                "{}: result counts differ (REF {}, JIT {}) at x={}",
                result.id, ref_m.2, jit_m.2, row.x
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_are_defined() {
        let figs = FigureSpec::all();
        assert_eq!(figs.len(), 8);
        assert_eq!(figs[0].id, "fig10");
        assert_eq!(figs[7].id, "fig17");
        assert!(FigureSpec::by_id("fig13").is_some());
        assert!(FigureSpec::by_id("fig99").is_none());
    }

    #[test]
    fn sweep_values_match_table_iii() {
        assert_eq!(
            FigureSpec::fig10().values,
            vec![10.0, 15.0, 20.0, 25.0, 30.0]
        );
        assert_eq!(FigureSpec::fig14().values, vec![5.0, 7.5, 10.0, 12.5, 15.0]);
        assert_eq!(FigureSpec::fig12().values, vec![4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(FigureSpec::fig16().values, vec![3.0, 4.0, 5.0, 6.0]);
        assert_eq!(
            FigureSpec::fig17().values,
            vec![30.0, 40.0, 50.0, 60.0, 70.0]
        );
    }

    #[test]
    fn config_for_overrides_the_right_parameter() {
        let f = FigureSpec::fig12();
        let c = f.config_for(8.0);
        assert_eq!(c.workload.num_sources, 8);
        assert_eq!(c.shape.num_sources, 8);
        let f = FigureSpec::fig10();
        assert_eq!(f.config_for(25.0).workload.window_minutes, 25.0);
        let f = FigureSpec::fig11();
        assert_eq!(f.config_for(1.6).workload.rate_per_sec, 1.6);
        let f = FigureSpec::fig13();
        assert_eq!(f.config_for(300.0).workload.dmax, 300);
    }

    #[test]
    fn tiny_figure_run_produces_rows_and_passes_checks() {
        // A drastically scaled-down figure still exercises the whole path.
        let mut spec = FigureSpec::fig16();
        spec.values = vec![3.0, 4.0];
        spec.base.workload = spec.base.workload.with_rate(0.5).with_dmax(20);
        let result = run_figure(&spec, 0.05, 123);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.cost_series("REF").len(), 2);
        assert_eq!(result.memory_series("JIT").len(), 2);
        let violations = check_expectations(&result, 0.05);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }
}
