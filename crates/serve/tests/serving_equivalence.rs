//! The serving tier's contract, pinned: every registered query's delivered
//! result stream is byte-identical to a dedicated single-query engine's —
//! whatever the sharing (pipelines, selection classes, windows) behind it,
//! on both execution backends, and across register/deregister mid-stream.

use jit_core::{ExecutionMode, JitPolicy};
use jit_engine::Engine;
use jit_plan::CanonicalQuery;
use jit_runtime::RuntimeConfig;
use jit_serve::{QueryRegistry, ServeError, ServeOptions};
use jit_types::{BaseTuple, Catalog, SourceId, Timestamp, Tuple, Value};
use std::sync::Arc;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_source("A", vec!["k".into(), "v".into()]);
    cat.add_source("B", vec!["k".into(), "v".into()]);
    cat.add_source("C", vec!["k".into(), "v".into()]);
    cat
}

/// A deterministic mixed-source trace: LCG-driven source/key/value choice,
/// strictly increasing timestamps (500 ms apart, so a 1-minute window holds
/// ~120 arrivals).
fn trace(n: usize) -> Vec<Arc<BaseTuple>> {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut seqs = [0u64; 3];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let source = ((state >> 33) % 3) as usize;
        let k = ((state >> 16) % 4) as i64;
        let v = ((state >> 8) % 30) as i64;
        let seq = seqs[source];
        seqs[source] += 1;
        out.push(Arc::new(BaseTuple::new(
            SourceId(source as u16),
            seq,
            Timestamp((i as u64 + 1) * 500),
            vec![Value::int(k), Value::int(v)],
        )));
    }
    out
}

/// What the registry does for one query, done by hand with a dedicated
/// engine: remap arrivals to the query's local id space, apply its constant
/// filters before the push, run to completion.
fn dedicated_session(
    cql: &str,
    cat: &Catalog,
    options: &ServeOptions,
) -> (CanonicalQuery, jit_engine::Session) {
    let canonical = CanonicalQuery::from_cql(cql, cat).unwrap();
    let mut builder = Engine::builder()
        .query_shape(
            canonical.shape(),
            canonical.predicates(),
            canonical.window(),
        )
        .mode(options.mode)
        .state_index(options.state_index)
        .partition_key_column(options.key_column);
    if options.assume_partitionable {
        builder = builder.assume_key_partitionable();
    }
    if let Some(config) = &options.runtime {
        builder = builder.sharded(config.clone());
    }
    let session = builder.build().unwrap().session().unwrap();
    (canonical, session)
}

fn feed(canonical: &CanonicalQuery, session: &mut jit_engine::Session, arrival: &Arc<BaseTuple>) {
    let Some(local) = canonical.local_id(arrival.source) else {
        return;
    };
    let remapped = Arc::new(BaseTuple {
        source: local,
        seq: arrival.seq,
        ts: arrival.ts,
        values: arrival.values.clone(),
    });
    let as_tuple = Tuple::from_base(remapped.clone());
    let passes = canonical
        .filter_class(local)
        .iter()
        .all(|t| t.predicate().holds_on(&as_tuple).unwrap_or(false));
    if passes {
        let _ = session.push(local, remapped).unwrap();
    }
}

fn dedicated_results(
    cql: &str,
    cat: &Catalog,
    options: &ServeOptions,
    arrivals: &[Arc<BaseTuple>],
) -> Vec<Tuple> {
    let (canonical, mut session) = dedicated_session(cql, cat, options);
    for arrival in arrivals {
        feed(&canonical, &mut session, arrival);
    }
    session.finish().unwrap().results
}

/// Drive a registry over the trace with periodic polling and return each
/// query's complete delivered stream (polls + finish), in query order.
fn registry_results(
    queries: &[&str],
    options: &ServeOptions,
    arrivals: &[Arc<BaseTuple>],
    poll_every: usize,
) -> Vec<Vec<Tuple>> {
    let mut reg = QueryRegistry::with_options(catalog(), options.clone());
    let ids: Vec<_> = queries.iter().map(|q| reg.register(q).unwrap()).collect();
    let mut delivered: Vec<Vec<Tuple>> = vec![Vec::new(); ids.len()];
    for (i, arrival) in arrivals.iter().enumerate() {
        reg.push(arrival.clone()).unwrap();
        if (i + 1) % poll_every == 0 {
            for (slot, &qid) in ids.iter().enumerate() {
                delivered[slot].extend(reg.poll_results(qid).unwrap());
            }
        }
    }
    for (qid, outcome) in reg.finish().unwrap() {
        let slot = ids.iter().position(|&q| q == qid).unwrap();
        delivered[slot].extend(outcome.results);
    }
    delivered
}

/// An overlapping workload: two texts of one query, a filtered variant, a
/// wider window, and a three-way join.
const QUERIES: [&str; 5] = [
    "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE A.k = B.k",
    "select * from a [range 1 minutes], b [range 1 minutes] where B.k = A.k",
    "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE A.k = B.k AND A.v > 14",
    "SELECT * FROM A [RANGE 2 minutes], B [RANGE 2 minutes] WHERE A.k = B.k",
    "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes], C [RANGE 1 minutes] \
     WHERE A.k = B.k AND B.k = C.k",
];

fn assert_equivalent(options: &ServeOptions, n: usize, poll_every: usize) {
    let arrivals = trace(n);
    let cat = catalog();
    let shared = registry_results(&QUERIES, options, &arrivals, poll_every);
    for (query, delivered) in QUERIES.iter().zip(&shared) {
        let isolated = dedicated_results(query, &cat, options, &arrivals);
        assert!(!isolated.is_empty(), "workload must exercise {query}");
        assert_eq!(delivered, &isolated, "results diverge for {query}");
    }
}

#[test]
fn registry_matches_dedicated_engines_ref_single_threaded() {
    assert_equivalent(&ServeOptions::default(), 300, 37);
}

#[test]
fn registry_matches_dedicated_engines_jit_single_threaded() {
    let options = ServeOptions {
        mode: ExecutionMode::Jit(JitPolicy::full()),
        ..ServeOptions::default()
    };
    assert_equivalent(&options, 300, 53);
}

#[test]
fn registry_matches_dedicated_engines_sharded() {
    let options = ServeOptions {
        runtime: Some(RuntimeConfig::with_shards(2)),
        ..ServeOptions::default()
    };
    assert_equivalent(&options, 200, 29);
}

fn mid_stream_scenario(options: &ServeOptions) {
    let arrivals = trace(240);
    let cat = catalog();
    let full_query = QUERIES[0];
    let cold_query = QUERIES[2]; // no equal key registered → fresh pipeline
    let warm_query = QUERIES[1]; // same canonical key as full_query → shares

    let mut reg = QueryRegistry::with_options(catalog(), options.clone());
    let q_full = reg.register(full_query).unwrap();
    let mut full_delivered = Vec::new();
    let mut cold_delivered = Vec::new();
    let mut warm_delivered = Vec::new();
    let (mut q_cold, mut q_warm) = (None, None);
    // The warm baseline runs alongside from the start but only counts
    // deliveries after the registration boundary.
    let (warm_canonical, mut warm_baseline) = dedicated_session(warm_query, &cat, options);
    for (i, arrival) in arrivals.iter().enumerate() {
        if i == 80 {
            q_cold = Some(reg.register(cold_query).unwrap());
            q_warm = Some(reg.register(warm_query).unwrap());
            warm_baseline.poll_results(); // discard the pre-registration past
        }
        if i == 160 {
            // Mid-stream exit: the cold query collects only what was ready.
            cold_delivered.extend(reg.deregister(q_cold.take().unwrap()).unwrap());
        }
        reg.push(arrival.clone()).unwrap();
        feed(&warm_canonical, &mut warm_baseline, arrival);
        if (i + 1) % 31 == 0 {
            full_delivered.extend(reg.poll_results(q_full).unwrap());
            if let Some(q) = q_warm {
                warm_delivered.extend(reg.poll_results(q).unwrap());
            }
        }
    }
    for (qid, outcome) in reg.finish().unwrap() {
        if qid == q_full {
            full_delivered.extend(outcome.results);
        } else if Some(qid) == q_warm {
            warm_delivered.extend(outcome.results);
        } else {
            panic!("deregistered query must not appear in finish");
        }
    }

    // Never-deregistered query: equals a dedicated engine over everything.
    let full_isolated = dedicated_results(full_query, &cat, options, &arrivals);
    assert_eq!(full_delivered, full_isolated);

    // Cold mid-stream registration: the flush-less deregistration returns
    // what was *ready*, which on the sharded backend depends on how far the
    // cross-shard watermark got — but it is always a prefix of the stream a
    // dedicated engine over the same suffix produces.
    let cold_isolated = dedicated_results(cold_query, &cat, options, &arrivals[80..160]);
    assert!(
        !cold_isolated.is_empty(),
        "cold window must produce results"
    );
    assert!(cold_delivered.len() <= cold_isolated.len());
    assert_eq!(
        cold_delivered,
        cold_isolated[..cold_delivered.len()],
        "cold deliveries must prefix the dedicated stream"
    );
    if options.runtime.is_none() {
        // Single-threaded "ready" = everything emitted so far: the whole
        // stream for a REF query with nothing left to flush.
        assert_eq!(cold_delivered.len(), cold_isolated.len());
    }

    // Warm registration onto a shared pipeline: full-history engine,
    // deliveries counted from the registration boundary.
    let mut warm_isolated = warm_baseline.poll_results();
    warm_isolated.extend(warm_baseline.finish().unwrap().results);
    assert!(
        !warm_isolated.is_empty(),
        "warm window must produce results"
    );
    assert_eq!(warm_delivered, warm_isolated);
}

#[test]
fn register_and_deregister_mid_stream_single_threaded() {
    mid_stream_scenario(&ServeOptions::default());
}

#[test]
fn register_and_deregister_mid_stream_sharded() {
    let options = ServeOptions {
        runtime: Some(RuntimeConfig::with_shards(2)),
        ..ServeOptions::default()
    };
    mid_stream_scenario(&options);
}

#[test]
fn duplicate_from_aliases_are_rejected_at_the_registry_surface() {
    let mut reg = QueryRegistry::new(catalog());
    // Exact duplicate and case-variant duplicate both die in parsing.
    for text in [
        "SELECT * FROM A [RANGE 1 minutes], A [RANGE 1 minutes] WHERE A.k = A.k",
        "SELECT * FROM A [RANGE 1 minutes], a [RANGE 1 minutes] WHERE A.k = a.k",
    ] {
        assert!(
            matches!(reg.register(text), Err(ServeError::Cql(_))),
            "{text}"
        );
    }
    assert_eq!(reg.num_queries(), 0);
    assert_eq!(reg.num_pipelines(), 0);
}
