//! The query registry: many standing queries, one pushed stream.

use crate::selection::{ClassId, SelectionIndex};
use jit_core::ExecutionMode;
use jit_engine::{CheckpointError, DisorderPolicy, Engine, EngineError, EngineOutcome, Session};
use jit_exec::operator::SuppressionDigest;
use jit_exec::state::{OperatorState, StateCache, StateIndexMode};
use jit_metrics::MetricsSnapshot;
use jit_plan::canonical::{CanonicalKey, CanonicalQuery, FilterTerm};
use jit_plan::cql::CqlError;
use jit_runtime::RuntimeConfig;
use jit_types::{
    BaseTuple, BatchPolicy, Catalog, ColumnRef, FastMap, Signature, SourceId, Timestamp, Tuple,
    Value, Window,
};
use serde::{Content, Serialize};
use std::sync::Arc;

/// Handle to one registered query, unique for the registry's lifetime
/// (handles are never reused, even after [`QueryRegistry::deregister`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Errors surfaced by the serving tier.
#[derive(Debug)]
pub enum ServeError {
    /// The query text failed to parse or canonicalize against the catalog.
    Cql(CqlError),
    /// Building or driving the underlying engine failed.
    Engine(EngineError),
    /// The query id is not (or no longer) registered.
    UnknownQuery(QueryId),
    /// The source id is not in the registry's catalog, or the query does
    /// not reference it.
    UnknownSource(SourceId),
    /// An arrival was pushed with a timestamp earlier than its predecessor.
    OutOfOrder {
        /// Timestamp of the offending arrival.
        pushed: Timestamp,
        /// Timestamp of the previous arrival.
        last: Timestamp,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Cql(e) => write!(f, "query error: {e}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::UnknownQuery(q) => write!(f, "unknown query {q}"),
            ServeError::UnknownSource(s) => write!(f, "unknown source {s}"),
            ServeError::OutOfOrder { pushed, last } => {
                write!(f, "out-of-order arrival: ts {pushed} after {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CqlError> for ServeError {
    fn from(e: CqlError) -> Self {
        ServeError::Cql(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// Execution configuration shared by every pipeline the registry builds.
///
/// One registry runs all its pipelines under one mode / backend / state
/// index, so the canonical key alone decides pipeline sharing.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Execution mode (REF / DOE / JIT). Default REF.
    pub mode: ExecutionMode,
    /// How operator states answer probes. Default hashed.
    pub state_index: StateIndexMode,
    /// `Some` runs every pipeline on the sharded multi-core backend.
    pub runtime: Option<RuntimeConfig>,
    /// Partition key column for the sharded backend. Default 0.
    pub key_column: usize,
    /// Assert data-level key-partitionability (see
    /// [`jit_engine::EngineBuilder::assume_key_partitionable`]).
    pub assume_partitionable: bool,
    /// How the tier treats out-of-order arrivals. Default
    /// [`DisorderPolicy::Strict`] (a regression is a typed
    /// [`ServeError::OutOfOrder`]); bounded tolerance gives every pipeline
    /// a watermark-driven reorder stage and turns too-late arrivals into
    /// counted drops (surfaced through each pipeline's metrics).
    pub disorder: DisorderPolicy,
    /// Columnar batching policy of every pipeline's data plane. The default
    /// (one row per flush) is tuple-equivalent; a batching policy amortises
    /// per-arrival overhead without changing any results or counters (see
    /// [`jit_engine::EngineBuilder::batch_policy`]).
    pub batch: BatchPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            mode: ExecutionMode::Ref,
            state_index: StateIndexMode::default(),
            runtime: None,
            key_column: 0,
            assume_partitionable: false,
            disorder: DisorderPolicy::Strict,
            batch: BatchPolicy::default(),
        }
    }
}

/// Identity of one shared leaf window state: the canonical sub-pattern
/// (global source, window, filter class) every subscribing query agrees on.
type StemKey = (SourceId, Window, Option<ClassId>);

/// One executing pipeline: a session plus the queries subscribed to it.
struct Pipeline {
    canonical: CanonicalQuery,
    session: Session,
    subscribers: Vec<QueryId>,
    /// Per local source: the selection class gating arrivals (None =
    /// unfiltered source, everything passes).
    class_of_local: Vec<Option<ClassId>>,
    /// Per local source: the shared leaf-window cache key.
    stem_keys: Vec<StemKey>,
}

/// Sharing counters accumulated by one registry.
#[derive(Debug, Default, Clone)]
struct SharingStats {
    arrivals: u64,
    routed: u64,
    classifications_saved: u64,
    cross_pollination_hits: u64,
}

/// A point-in-time account of how much work the serving tier is sharing.
#[derive(Debug, Clone)]
pub struct SharingReport {
    /// Registered queries.
    pub queries: usize,
    /// Executing pipelines (≤ queries; the gap is pipeline sharing).
    pub pipelines: usize,
    /// Distinct live filter classes.
    pub filter_classes: usize,
    /// Arrivals pushed into the registry.
    pub arrivals: u64,
    /// Tuples actually delivered into pipelines (post-selection routing).
    pub routed: u64,
    /// Filter-class evaluations performed (once per distinct class).
    pub classifications: u64,
    /// Evaluations avoided versus classifying once per holder of a class.
    pub classifications_saved: u64,
    /// Bytes held in the shared leaf-window cache, counting each state once.
    pub shared_state_bytes: usize,
    /// Bytes the same windows would occupy if every holder kept its own
    /// copy (refcount × bytes) — the isolated-serving baseline.
    pub isolated_state_bytes: usize,
    /// Arrivals matching a suppression signature learned by a *sibling*
    /// pipeline (see [`QueryRegistry::refresh_suppression`]). Observational:
    /// nothing is dropped.
    pub cross_pollination_hits: u64,
    /// Suppression signatures currently cached from the pipelines.
    pub suppression_signatures: usize,
}

/// A registry of standing continuous queries over one shared stream.
///
/// See the crate docs for the sharing model. The registry enforces the same
/// arrival contract as [`Session`]: tuples are pushed in non-decreasing
/// timestamp order, with the *global* source id of the registry's catalog;
/// each pipeline sees the arrival remapped to its own dense local id space
/// (`FROM` position) over the unchanged value vector, so results come back
/// with local source ids — source 0 is the query's first `FROM` entry.
pub struct QueryRegistry {
    catalog: Catalog,
    options: ServeOptions,
    /// Creation-ordered pipeline slots, tombstoned on removal so routing
    /// order (and therefore result interleaving) is deterministic.
    pipelines: Vec<Option<Pipeline>>,
    by_key: FastMap<CanonicalKey, usize>,
    /// Global source id → subscribed pipeline slots, ascending.
    routes: FastMap<SourceId, Vec<usize>>,
    queries: FastMap<QueryId, usize>,
    mailboxes: FastMap<QueryId, Vec<Tuple>>,
    selection: SelectionIndex,
    stems: StateCache<StemKey>,
    /// Per-pipeline suppression digests in global column space, as of the
    /// last [`QueryRegistry::refresh_suppression`].
    digests: Vec<(usize, SuppressionDigest)>,
    stats: SharingStats,
    next_query: u64,
    /// Per-source sequence counters for [`QueryRegistry::push_values`].
    seqs: FastMap<SourceId, u64>,
    last_push_ts: Timestamp,
}

impl std::fmt::Debug for QueryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryRegistry")
            .field("queries", &self.queries.len())
            .field("pipelines", &self.num_pipelines())
            .field("arrivals", &self.stats.arrivals)
            .finish()
    }
}

impl QueryRegistry {
    /// A registry over `catalog` with default (single-threaded REF)
    /// execution.
    pub fn new(catalog: Catalog) -> Self {
        QueryRegistry::with_options(catalog, ServeOptions::default())
    }

    /// A registry with explicit execution options.
    pub fn with_options(catalog: Catalog, options: ServeOptions) -> Self {
        QueryRegistry {
            catalog,
            options,
            pipelines: Vec::new(),
            by_key: FastMap::default(),
            routes: FastMap::default(),
            queries: FastMap::default(),
            mailboxes: FastMap::default(),
            selection: SelectionIndex::new(),
            stems: StateCache::new(),
            digests: Vec::new(),
            stats: SharingStats::default(),
            next_query: 0,
            seqs: FastMap::default(),
            last_push_ts: Timestamp::ZERO,
        }
    }

    /// The registry's global catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a CQL query; it sees every arrival pushed from now on.
    ///
    /// If an already-registered query canonicalizes to the same
    /// [`CanonicalKey`], the new query joins its pipeline instead of
    /// getting a fresh one. The two paths differ in what the new query
    /// observes first:
    ///
    /// * **cold** (fresh pipeline) — the query sees only arrivals pushed
    ///   after registration, exactly like a dedicated engine started now;
    /// * **warm** (shared pipeline) — the query subscribes to a pipeline
    ///   whose window state already holds the recent past, so its results
    ///   may join post-registration arrivals with pre-registration tuples —
    ///   exactly like a dedicated engine fed the full history, counting
    ///   deliveries from registration onward. Results emitted *before*
    ///   registration are drained to the existing subscribers first and
    ///   never reach the new query.
    pub fn register(&mut self, cql: &str) -> Result<QueryId, ServeError> {
        let canonical = CanonicalQuery::from_cql(cql, &self.catalog)?;
        let qid = QueryId(self.next_query);

        let idx = match self.by_key.get(canonical.key()) {
            Some(&idx) => {
                self.fan_out(idx);
                idx
            }
            None => {
                let idx = self.start_pipeline(canonical.clone())?;
                self.by_key.insert(canonical.key().clone(), idx);
                for &global in canonical.sources() {
                    self.routes.entry(global).or_default().push(idx);
                }
                idx
            }
        };

        // Per-query references on the shared selection classes and leaf
        // windows: the refcounts price what isolated serving would keep.
        let (sources, window, local_classes, is_fresh) = {
            // INVARIANT: the queries map only holds indices of live pipeline
            // slots (entries are removed together in unregister).
            let pipeline = self.pipelines[idx].as_ref().expect("live pipeline");
            let sources = pipeline.canonical.sources().to_vec();
            let local_classes: Vec<Vec<FilterTerm>> = (0..sources.len())
                .map(|l| pipeline.canonical.filter_class(SourceId(l as u16)))
                .collect();
            let window = pipeline.canonical.window();
            (
                sources,
                window,
                local_classes,
                pipeline.subscribers.is_empty(),
            )
        };
        let mut class_of_local = Vec::with_capacity(sources.len());
        let mut stem_keys = Vec::with_capacity(sources.len());
        for (local, &global) in sources.iter().enumerate() {
            let terms = rebase_terms(&local_classes[local], global);
            let class = self.selection.acquire(global, &terms);
            let key = (global, window, class);
            let mode = self.options.state_index;
            self.stems.acquire(key, || {
                OperatorState::with_index_mode(format!("stem:{global}"), mode)
            });
            class_of_local.push(class);
            stem_keys.push(key);
        }
        // INVARIANT: the queries map only holds indices of live pipeline
        // slots (entries are removed together in unregister).
        let pipeline = self.pipelines[idx].as_mut().expect("live pipeline");
        if is_fresh {
            pipeline.class_of_local = class_of_local;
            pipeline.stem_keys = stem_keys;
        } else {
            debug_assert_eq!(pipeline.class_of_local, class_of_local);
            debug_assert_eq!(pipeline.stem_keys, stem_keys);
        }
        pipeline.subscribers.push(qid);

        self.next_query += 1;
        self.queries.insert(qid, idx);
        self.mailboxes.insert(qid, Vec::new());
        Ok(qid)
    }

    /// Build and start a pipeline for `canonical`. Filters are *not*
    /// compiled into the plan — the registry applies them through the
    /// shared selection index before routing, so pipelines only ever see
    /// passing tuples.
    fn start_pipeline(&mut self, canonical: CanonicalQuery) -> Result<usize, ServeError> {
        let session = self.engine_for(&canonical)?.session()?;
        let idx = self.pipelines.len();
        self.pipelines.push(Some(Pipeline {
            canonical,
            session,
            subscribers: Vec::new(),
            class_of_local: Vec::new(),
            stem_keys: Vec::new(),
        }));
        Ok(idx)
    }

    /// The engine configuration for one canonical query — the same recipe
    /// whether the pipeline starts fresh ([`Self::start_pipeline`]) or is
    /// rebuilt from a checkpoint ([`Self::restore`]).
    fn engine_for(&self, canonical: &CanonicalQuery) -> Result<Engine, ServeError> {
        let mut builder = Engine::builder()
            .query_shape(
                canonical.shape(),
                canonical.predicates(),
                canonical.window(),
            )
            .mode(self.options.mode)
            .state_index(self.options.state_index)
            .partition_key_column(self.options.key_column)
            .disorder(self.options.disorder)
            .batch_policy(self.options.batch);
        if self.options.assume_partitionable {
            builder = builder.assume_key_partitionable();
        }
        if let Some(config) = &self.options.runtime {
            builder = builder.sharded(config.clone());
        }
        Ok(builder.build()?)
    }

    /// Remove a query. Its share of the pipeline's ready results is
    /// delivered into its mailbox first, and the mailbox remainder is
    /// returned; results not yet emitted are *not* flushed (the query asked
    /// to stop listening). When the last subscriber leaves, the pipeline is
    /// shut down and its shared state references released.
    pub fn deregister(&mut self, qid: QueryId) -> Result<Vec<Tuple>, ServeError> {
        let idx = *self
            .queries
            .get(&qid)
            .ok_or(ServeError::UnknownQuery(qid))?;
        self.fan_out(idx);
        self.queries.remove(&qid);

        // INVARIANT: the queries map only holds indices of live pipeline
        // slots; qid was just resolved through it.
        let pipeline = self.pipelines[idx].as_mut().expect("live pipeline");
        pipeline.subscribers.retain(|&q| q != qid);
        let empty = pipeline.subscribers.is_empty();
        let classes = pipeline.class_of_local.clone();
        let keys = pipeline.stem_keys.clone();
        for class in classes.into_iter().flatten() {
            self.selection.release(class);
        }
        for key in &keys {
            self.stems.release(key);
        }

        if empty {
            // INVARIANT: the slot was live two statements up and nothing
            // in between can clear it.
            let pipeline = self.pipelines[idx].take().expect("live pipeline");
            self.by_key.remove(pipeline.canonical.key());
            for &global in pipeline.canonical.sources() {
                if let Some(ids) = self.routes.get_mut(&global) {
                    ids.retain(|&i| i != idx);
                }
            }
            self.digests.retain(|(i, _)| *i != idx);
            // Join workers / drain cleanly; the orphaned flush output has
            // no subscriber and is discarded.
            pipeline.session.finish()?;
        }
        Ok(self.mailboxes.remove(&qid).unwrap_or_default())
    }

    /// Push one arrival, carrying the *global* source id in
    /// [`BaseTuple::source`]. The arrival is classified once per distinct
    /// filter class, folded once into each shared leaf window, and routed
    /// to every pipeline whose class passed.
    pub fn push(&mut self, tuple: Arc<BaseTuple>) -> Result<(), ServeError> {
        self.push_classified(tuple, None)
    }

    /// Push one source's pre-batched run of arrivals. Identical routing and
    /// accounting to pushing each row with [`QueryRegistry::push`], except
    /// classification is vectorized: every distinct filter class on the
    /// batch's source is evaluated in one
    /// [`SelectionIndex::classify_batch`] call — a packed-mask kernel pass
    /// per class term when the batch carries a columnar projection — instead
    /// of once per row. Rows must respect the registry's timestamp contract
    /// exactly as individual pushes would.
    pub fn push_batch(&mut self, batch: &jit_types::Batch) -> Result<(), ServeError> {
        let source = batch.source();
        if self.catalog.source(source).is_none() {
            return Err(ServeError::UnknownSource(source));
        }
        let masks = self.selection.classify_batch(source, batch);
        let per_row: Vec<Vec<(ClassId, bool)>> = (0..batch.len())
            .map(|r| masks.iter().map(|(c, m)| (*c, m.get(r))).collect())
            .collect();
        for (row, verdicts) in batch.rows().iter().zip(per_row) {
            self.push_classified(Arc::clone(row), Some(verdicts))?;
        }
        Ok(())
    }

    /// Shared body of [`QueryRegistry::push`] and
    /// [`QueryRegistry::push_batch`]: `precomputed` carries this arrival's
    /// class verdicts when a batch classification already produced them.
    fn push_classified(
        &mut self,
        tuple: Arc<BaseTuple>,
        precomputed: Option<Vec<(ClassId, bool)>>,
    ) -> Result<(), ServeError> {
        let source = tuple.source;
        if self.catalog.source(source).is_none() {
            return Err(ServeError::UnknownSource(source));
        }
        if tuple.ts < self.last_push_ts {
            // A timestamp regression is only an error under the strict
            // policy; under bounded disorder each pipeline's reorder stage
            // re-sequences (or drops and counts) the arrival itself.
            if matches!(self.options.disorder, DisorderPolicy::Strict) {
                return Err(ServeError::OutOfOrder {
                    pushed: tuple.ts,
                    last: self.last_push_ts,
                });
            }
        }
        self.last_push_ts = self.last_push_ts.max(tuple.ts);
        self.stats.arrivals += 1;
        self.seqs
            .entry(source)
            .and_modify(|s| *s = (*s).max(tuple.seq + 1))
            .or_insert(tuple.seq + 1);

        let global_tuple = Tuple::from_base(tuple.clone());

        // Shared selection: one evaluation per distinct class on this
        // source, reused by every holder (already done batch-wide when the
        // arrival came in through `push_batch`).
        let verdicts = match precomputed {
            Some(v) => v,
            None => self.selection.classify(source, &global_tuple),
        };
        let mut passed: FastMap<ClassId, bool> =
            FastMap::with_capacity_and_hasher(verdicts.len(), Default::default());
        for (class, ok) in verdicts {
            self.stats.classifications_saved += (self.selection.refcount(class) as u64).max(1) - 1;
            passed.insert(class, ok);
        }
        let class_passes =
            |class: Option<ClassId>| class.is_none_or(|c| *passed.get(&c).unwrap_or(&false));

        let route = self.routes.get(&source).cloned().unwrap_or_default();

        // Cross-pollination (observational): does a sibling pipeline's
        // learned suppression knowledge cover this arrival?
        if !self.digests.is_empty() && !route.is_empty() {
            for (owner, digest) in &self.digests {
                if !route.iter().any(|i| i != owner) {
                    continue;
                }
                for (columns, signature) in &digest.signatures {
                    if !columns.is_empty()
                        && columns.iter().all(|c| c.source == source)
                        && Signature::of(&global_tuple, columns) == *signature
                    {
                        self.stats.cross_pollination_hits += 1;
                    }
                }
            }
        }

        // Maintain each touched shared leaf window exactly once.
        let mut touched: Vec<StemKey> = Vec::new();
        for &idx in &route {
            let Some(pipeline) = self.pipelines[idx].as_ref() else {
                continue;
            };
            let local = pipeline
                .canonical
                .local_id(source)
                // INVARIANT: routes entries only name pipelines whose canonical
                // query covers the routed source.
                .expect("routed pipeline references source");
            let key = pipeline.stem_keys[local.0 as usize];
            if class_passes(key.2) && !touched.contains(&key) {
                touched.push(key);
            }
        }
        for key in &touched {
            if let Some(state) = self.stems.peek(key) {
                let mut state = state.borrow_mut();
                state.purge(key.1, tuple.ts);
                state.insert(global_tuple.clone(), tuple.ts);
            }
        }

        // Route once per subscribed pipeline (not per query), in creation
        // order, remapped to the pipeline's local id space over the shared
        // value vector.
        let mut routed = 0u64;
        for idx in route {
            let Some(pipeline) = self.pipelines[idx].as_mut() else {
                continue;
            };
            let local = pipeline
                .canonical
                .local_id(source)
                // INVARIANT: routes entries only name pipelines whose canonical
                // query covers the routed source.
                .expect("routed pipeline references source");
            if !class_passes(pipeline.class_of_local[local.0 as usize]) {
                continue;
            }
            let remapped = Arc::new(BaseTuple {
                source: local,
                seq: tuple.seq,
                ts: tuple.ts,
                values: tuple.values.clone(),
            });
            // Under bounded disorder a too-late arrival comes back as a
            // counted LateDrop in the pipeline's metrics, not an error.
            let _ = pipeline.session.push(local, remapped)?;
            routed += 1;
        }
        self.stats.routed += routed;
        Ok(())
    }

    /// Convenience push: build the [`BaseTuple`] with a registry-assigned
    /// per-source sequence number.
    pub fn push_values(
        &mut self,
        source: SourceId,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<(), ServeError> {
        let seq = self.seqs.get(&source).copied().unwrap_or(0);
        self.push(Arc::new(BaseTuple::new(source, seq, ts, values)))
    }

    /// Drain the results ready for `qid`: the query's pipeline is polled,
    /// the new results fan out to *all* its subscribers' mailboxes, and
    /// `qid`'s mailbox is emptied and returned. Result tuples are in the
    /// query's local id space (source `i` = `i`-th `FROM` entry).
    pub fn poll_results(&mut self, qid: QueryId) -> Result<Vec<Tuple>, ServeError> {
        let idx = *self
            .queries
            .get(&qid)
            .ok_or(ServeError::UnknownQuery(qid))?;
        self.fan_out(idx);
        Ok(std::mem::take(
            // INVARIANT: every registered query gets a mailbox at register
            // time; both are removed together.
            self.mailboxes.get_mut(&qid).expect("mailbox"),
        ))
    }

    /// Poll pipeline `idx` and append the fresh results to every
    /// subscriber's mailbox.
    fn fan_out(&mut self, idx: usize) {
        let Some(pipeline) = self.pipelines[idx].as_mut() else {
            return;
        };
        let fresh = pipeline.session.poll_results();
        if fresh.is_empty() {
            return;
        }
        for &qid in &pipeline.subscribers {
            self.mailboxes
                .get_mut(&qid)
                // INVARIANT: subscribers are registered queries, each with a
                // mailbox created at register time.
                .expect("mailbox")
                .extend(fresh.iter().cloned());
        }
    }

    /// Live metrics of the pipeline serving `qid`. Shared subscribers see
    /// the same snapshot — the cost was paid once for all of them.
    pub fn metrics_snapshot(&mut self, qid: QueryId) -> Result<MetricsSnapshot, ServeError> {
        let idx = *self
            .queries
            .get(&qid)
            .ok_or(ServeError::UnknownQuery(qid))?;
        // INVARIANT: the queries map only holds indices of live pipeline
        // slots (entries are removed together in unregister).
        let pipeline = self.pipelines[idx].as_mut().expect("live pipeline");
        Ok(pipeline.session.metrics_snapshot())
    }

    /// The current contents of the shared window on `source` as `qid` sees
    /// it (post-selection, purged to the last pushed timestamp), in global
    /// id space.
    pub fn window_contents(
        &mut self,
        qid: QueryId,
        source: SourceId,
    ) -> Result<Vec<Tuple>, ServeError> {
        let idx = *self
            .queries
            .get(&qid)
            .ok_or(ServeError::UnknownQuery(qid))?;
        // INVARIANT: the queries map only holds indices of live pipeline
        // slots (entries are removed together in unregister).
        let pipeline = self.pipelines[idx].as_ref().expect("live pipeline");
        let local = pipeline
            .canonical
            .local_id(source)
            .ok_or(ServeError::UnknownSource(source))?;
        let key = pipeline.stem_keys[local.0 as usize];
        // INVARIANT: stem_keys entries hold an acquire() refcount until
        // the pipeline is unregistered.
        let state = self.stems.peek(&key).expect("acquired stem");
        let mut state = state.borrow_mut();
        state.purge(key.1, self.last_push_ts);
        Ok(state.iter().map(|s| s.tuple.clone()).collect())
    }

    /// Re-collect every pipeline's suppression digest (rebased to the
    /// global column space) for cross-pollination accounting. Returns the
    /// number of signatures now cached. Digests are empty on backends that
    /// cannot aggregate them (notably the sharded runtime) and in non-JIT
    /// modes — then this is a cheap no-op.
    pub fn refresh_suppression(&mut self) -> usize {
        self.digests.clear();
        for (idx, slot) in self.pipelines.iter_mut().enumerate() {
            let Some(pipeline) = slot else { continue };
            let local_digest = pipeline.session.suppression_digest();
            if local_digest.signatures.is_empty() {
                continue;
            }
            let sources = pipeline.canonical.sources();
            let mut global = SuppressionDigest::new();
            for (columns, signature) in &local_digest.signatures {
                let columns = columns
                    .iter()
                    .map(|c| ColumnRef::new(sources[c.source.0 as usize], c.column))
                    .collect::<Vec<_>>();
                let values = Signature(
                    signature
                        .0
                        .iter()
                        .map(|(c, v)| {
                            (
                                ColumnRef::new(sources[c.source.0 as usize], c.column),
                                v.clone(),
                            )
                        })
                        .collect(),
                );
                global.add(columns, values);
            }
            global.entries = local_digest.entries;
            self.digests.push((idx, global));
        }
        self.digests.iter().map(|(_, d)| d.signatures.len()).sum()
    }

    /// Total pairwise overlap between the cached pipeline digests: how many
    /// suppression signatures were learned independently by more than one
    /// pipeline — knowledge one query could have handed its siblings.
    pub fn suppression_overlap(&self) -> usize {
        let mut total = 0;
        for (i, (_, a)) in self.digests.iter().enumerate() {
            for (_, b) in &self.digests[i + 1..] {
                total += a.overlap(b);
            }
        }
        total
    }

    /// Serialise the registry's full resumable state: every pipeline's
    /// session (operator state, reorder stage, progress), the shared
    /// leaf-window contents, undelivered mailboxes, per-source sequence
    /// counters, the push frontier and the sharing statistics.
    ///
    /// What is *not* serialised — and deliberately so — is the query text
    /// and registration structure: a checkpoint is restored by creating a
    /// fresh registry with the same options, re-registering the identical
    /// queries in the identical order (queries are configuration, not
    /// state), and then calling [`QueryRegistry::restore`], which validates
    /// the structure against the blob and rehydrates the state. On sharded
    /// backends this call blocks until every shard reaches its checkpoint
    /// barrier.
    pub fn checkpoint(&mut self) -> Result<Content, ServeError> {
        let mut pipelines = Vec::with_capacity(self.pipelines.len());
        for slot in self.pipelines.iter_mut() {
            match slot {
                None => pipelines.push(Content::Null),
                Some(pipeline) => pipelines.push(pipeline.session.checkpoint()?),
            }
        }
        let mut stem_states = Vec::new();
        for key in self.stem_key_order() {
            // INVARIANT: stem_key_order() lists only keys currently holding
            // an acquire() refcount.
            let state = self.stems.peek(&key).expect("acquired stem");
            stem_states.push(state.borrow().checkpoint());
        }
        let mut mailboxes: Vec<(u64, Vec<Tuple>)> = self
            .mailboxes
            .iter()
            .map(|(qid, tuples)| (qid.0, tuples.clone()))
            .collect();
        mailboxes.sort_by_key(|(qid, _)| *qid);
        let mut seqs: Vec<(SourceId, u64)> = self.seqs.iter().map(|(s, n)| (*s, *n)).collect();
        seqs.sort_by_key(|(s, _)| *s);
        Ok(Content::Map(vec![
            ("next_query".to_string(), Content::U64(self.next_query)),
            ("last_push_ts".to_string(), self.last_push_ts.to_content()),
            ("pipelines".to_string(), Content::Seq(pipelines)),
            ("stems".to_string(), Content::Seq(stem_states)),
            ("mailboxes".to_string(), mailboxes.to_content()),
            ("seqs".to_string(), seqs.to_content()),
            (
                "stats".to_string(),
                Content::Map(vec![
                    ("arrivals".to_string(), Content::U64(self.stats.arrivals)),
                    ("routed".to_string(), Content::U64(self.stats.routed)),
                    (
                        "classifications_saved".to_string(),
                        Content::U64(self.stats.classifications_saved),
                    ),
                    (
                        "cross_pollination_hits".to_string(),
                        Content::U64(self.stats.cross_pollination_hits),
                    ),
                ]),
            ),
        ]))
    }

    /// Rehydrate a registry from a [`QueryRegistry::checkpoint`] blob.
    ///
    /// Call on a registry whose queries have been re-registered identically
    /// (same texts, same order, same options) but which has seen no
    /// arrivals. Structural mismatches — different query count, pipeline
    /// layout or stem set — are typed errors
    /// ([`jit_engine::CheckpointError::Mismatch`] under
    /// [`ServeError::Engine`]); nothing is partially applied on the
    /// pipeline level before validation passes. Suppression digests are not
    /// part of the checkpoint — call [`QueryRegistry::refresh_suppression`]
    /// after restoring if cross-pollination accounting is wanted.
    pub fn restore(&mut self, checkpoint: &Content) -> Result<(), ServeError> {
        const TY: &str = "QueryRegistry checkpoint";
        let mismatch = |detail: String| {
            ServeError::Engine(EngineError::Checkpoint(CheckpointError::Mismatch(detail)))
        };
        let corrupt = |e: serde::Error| {
            ServeError::Engine(EngineError::Checkpoint(CheckpointError::Serde(e)))
        };
        let map = checkpoint
            .as_map()
            .ok_or_else(|| mismatch("checkpoint body is not an object".to_string()))?;
        let next_query: u64 = serde::field(map, "next_query", TY).map_err(corrupt)?;
        if next_query != self.next_query {
            return Err(mismatch(format!(
                "checkpoint covers {next_query} registrations, this registry has {}; \
                 re-register the identical queries in the identical order first",
                self.next_query
            )));
        }
        let blobs = serde::field::<Content>(map, "pipelines", TY).map_err(corrupt)?;
        let blobs = match &blobs {
            Content::Seq(items) if items.len() == self.pipelines.len() => items.clone(),
            Content::Seq(items) => {
                return Err(mismatch(format!(
                    "checkpoint holds {} pipeline slots, registry has {}",
                    items.len(),
                    self.pipelines.len()
                )))
            }
            _ => return Err(mismatch("pipelines is not a sequence".to_string())),
        };
        // Rebuild every live pipeline's session before touching anything,
        // so a failing slot leaves the registry unchanged.
        let mut sessions: Vec<Option<Session>> = Vec::with_capacity(blobs.len());
        for (idx, (slot, blob)) in self.pipelines.iter().zip(&blobs).enumerate() {
            match (slot, blob) {
                (None, Content::Null) => sessions.push(None),
                (Some(pipeline), blob) if !matches!(blob, Content::Null) => {
                    let session = self.engine_for(&pipeline.canonical)?.restore(blob)?;
                    sessions.push(Some(session));
                }
                _ => {
                    return Err(mismatch(format!(
                        "pipeline slot {idx} is live on one side of the restore only"
                    )))
                }
            }
        }
        let stem_blobs = serde::field::<Content>(map, "stems", TY).map_err(corrupt)?;
        let stem_order = self.stem_key_order();
        let stem_blobs = stem_blobs.as_seq_n(stem_order.len(), TY).map_err(corrupt)?;
        for (key, blob) in stem_order.iter().zip(stem_blobs.iter()) {
            // INVARIANT: stem_key_order() lists only keys currently holding
            // an acquire() refcount.
            let state = self.stems.peek(key).expect("acquired stem");
            state
                .borrow_mut()
                .restore_checkpoint(blob)
                .map_err(corrupt)?;
        }
        for (slot, session) in self.pipelines.iter_mut().zip(sessions) {
            if let (Some(pipeline), Some(session)) = (slot.as_mut(), session) {
                pipeline.session = session;
            }
        }
        let mailboxes: Vec<(u64, Vec<Tuple>)> =
            serde::field(map, "mailboxes", TY).map_err(corrupt)?;
        for (qid, tuples) in mailboxes {
            let slot = self
                .mailboxes
                .get_mut(&QueryId(qid))
                .ok_or_else(|| mismatch(format!("checkpoint mailbox for unknown query Q{qid}")))?;
            *slot = tuples;
        }
        let seqs: Vec<(SourceId, u64)> = serde::field(map, "seqs", TY).map_err(corrupt)?;
        self.seqs = seqs.into_iter().collect();
        self.last_push_ts = serde::field(map, "last_push_ts", TY).map_err(corrupt)?;
        let stats = serde::field::<Content>(map, "stats", TY).map_err(corrupt)?;
        let stats_map = stats
            .as_map()
            .ok_or_else(|| mismatch("stats is not an object".to_string()))?;
        self.stats = SharingStats {
            arrivals: serde::field(stats_map, "arrivals", TY).map_err(corrupt)?,
            routed: serde::field(stats_map, "routed", TY).map_err(corrupt)?,
            classifications_saved: serde::field(stats_map, "classifications_saved", TY)
                .map_err(corrupt)?,
            cross_pollination_hits: serde::field(stats_map, "cross_pollination_hits", TY)
                .map_err(corrupt)?,
        };
        self.digests.clear();
        Ok(())
    }

    /// The shared leaf-window keys in deterministic first-use order
    /// (pipeline slot order, then local source order) — the order both
    /// [`Self::checkpoint`] and [`Self::restore`] serialise stem states in.
    fn stem_key_order(&self) -> Vec<StemKey> {
        let mut order: Vec<StemKey> = Vec::new();
        for pipeline in self.pipelines.iter().flatten() {
            for key in &pipeline.stem_keys {
                if !order.contains(key) {
                    order.push(*key);
                }
            }
        }
        order
    }

    /// How much work the tier is currently sharing.
    pub fn sharing_report(&self) -> SharingReport {
        SharingReport {
            queries: self.queries.len(),
            pipelines: self.num_pipelines(),
            filter_classes: self.selection.num_classes(),
            arrivals: self.stats.arrivals,
            routed: self.stats.routed,
            classifications: self.selection.evaluations(),
            classifications_saved: self.stats.classifications_saved,
            shared_state_bytes: self.stems.shared_bytes(),
            isolated_state_bytes: self.stems.isolated_bytes(),
            cross_pollination_hits: self.stats.cross_pollination_hits,
            suppression_signatures: self.digests.iter().map(|(_, d)| d.signatures.len()).sum(),
        }
    }

    /// Registered query ids, ascending.
    pub fn queries(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self.queries.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of executing pipelines.
    pub fn num_pipelines(&self) -> usize {
        self.pipelines.iter().flatten().count()
    }

    /// Arrivals pushed so far.
    pub fn arrivals(&self) -> u64 {
        self.stats.arrivals
    }

    /// End the stream for every query: each pipeline is finished once
    /// (end-of-stream flush, workers joined) and its outcome duplicated to
    /// all subscribers, with each subscriber's undelivered mailbox content
    /// prepended to the outcome's results. Sorted by query id.
    ///
    /// Pipeline-level figures (`results_count`, metrics) appear once per
    /// subscriber — they describe the shared pipeline, paid for once.
    pub fn finish(mut self) -> Result<Vec<(QueryId, EngineOutcome)>, ServeError> {
        let mut finished = Vec::with_capacity(self.queries.len());
        for slot in self.pipelines.into_iter() {
            let Some(pipeline) = slot else { continue };
            let outcome = pipeline.session.finish()?;
            for qid in pipeline.subscribers {
                let mut results = self.mailboxes.remove(&qid).unwrap_or_default();
                results.extend(outcome.results.iter().cloned());
                finished.push((
                    qid,
                    EngineOutcome {
                        results,
                        ..outcome.clone()
                    },
                ));
            }
        }
        finished.sort_by_key(|(qid, _)| *qid);
        Ok(finished)
    }
}

/// Rebase a local-space filter class (local source id, global columns) to
/// the fully global column space of the registry-wide selection index.
fn rebase_terms(terms: &[FilterTerm], global: SourceId) -> Vec<FilterTerm> {
    terms
        .iter()
        .map(|t| FilterTerm {
            column: ColumnRef::new(global, t.column.column),
            op: t.op,
            constant: t.constant.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_source("A", vec!["k".into(), "v".into()]);
        cat.add_source("B", vec!["k".into(), "v".into()]);
        cat.add_source("C", vec!["k".into()]);
        cat
    }

    const JOIN_AB: &str = "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE A.k = B.k";

    fn push(reg: &mut QueryRegistry, source: u16, ts: u64, values: Vec<i64>) {
        reg.push_values(
            SourceId(source),
            Timestamp(ts),
            values.into_iter().map(Value::int).collect(),
        )
        .unwrap();
    }

    #[test]
    fn equivalent_texts_share_one_pipeline() {
        let mut reg = QueryRegistry::new(catalog());
        let q1 = reg.register(JOIN_AB).unwrap();
        let q2 = reg
            .register("select * from a [range 1 minutes], b [range 1 minutes] where B.k = A.k")
            .unwrap();
        assert_ne!(q1, q2);
        assert_eq!(reg.num_queries(), 2);
        assert_eq!(reg.num_pipelines(), 1);
        // A genuinely different query gets its own pipeline.
        let q3 = reg
            .register("SELECT * FROM A [RANGE 2 minutes], B [RANGE 2 minutes] WHERE A.k = B.k")
            .unwrap();
        assert_eq!(reg.num_pipelines(), 2);

        push(&mut reg, 0, 0, vec![7, 1]);
        push(&mut reg, 1, 10, vec![7, 2]);
        let r1 = reg.poll_results(q1).unwrap();
        let r2 = reg.poll_results(q2).unwrap();
        let r3 = reg.poll_results(q3).unwrap();
        assert_eq!(r1.len(), 1);
        assert_eq!(r1, r2, "subscribers of one pipeline see identical results");
        assert_eq!(r1, r3, "same join, wider window, same single result");
        // Nothing is delivered twice.
        assert!(reg.poll_results(q1).unwrap().is_empty());
        // Two pipelines saw the arrivals; each was pushed once per pipeline.
        assert_eq!(reg.sharing_report().routed, 4);
    }

    #[test]
    fn shared_filters_classify_once_and_gate_routing() {
        let mut reg = QueryRegistry::new(catalog());
        let filtered = "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] \
                        WHERE A.k = B.k AND A.v > 10";
        let q1 = reg.register(filtered).unwrap();
        // Same filter, different window: new pipeline, same filter class.
        let q2 = reg
            .register(
                "SELECT * FROM A [RANGE 2 minutes], B [RANGE 2 minutes] \
                 WHERE A.k = B.k AND A.v > 10",
            )
            .unwrap();
        let report = reg.sharing_report();
        assert_eq!(report.pipelines, 2);
        assert_eq!(report.filter_classes, 1);

        push(&mut reg, 0, 0, vec![7, 5]); // fails A.v > 10 for both pipelines
        push(&mut reg, 0, 1, vec![7, 20]); // passes
        push(&mut reg, 1, 2, vec![7, 0]);
        let report = reg.sharing_report();
        // The two A-arrivals were each classified once (one shared class),
        // not once per query.
        assert_eq!(report.classifications, 2);
        assert_eq!(report.classifications_saved, 2);
        // The failing arrival never reached any pipeline: 1 passing A + 1
        // unfiltered B, each into 2 pipelines.
        assert_eq!(report.routed, 4);
        assert_eq!(reg.poll_results(q1).unwrap().len(), 1);
        assert_eq!(reg.poll_results(q2).unwrap().len(), 1);
    }

    #[test]
    fn push_batch_matches_per_row_pushes() {
        use jit_types::BlockBuilder;
        let filtered = "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] \
                        WHERE A.k = B.k AND A.v > 10";
        let build = |reg: &mut QueryRegistry| {
            (
                reg.register(filtered).unwrap(),
                reg.register(JOIN_AB).unwrap(),
            )
        };
        let a_rows: Vec<(u64, Vec<i64>)> =
            vec![(0, vec![7, 5]), (1, vec![7, 20]), (2, vec![8, 30])];

        let mut row_reg = QueryRegistry::new(catalog());
        let (rq1, rq2) = build(&mut row_reg);
        for (ts, values) in &a_rows {
            push(&mut row_reg, 0, *ts, values.clone());
        }
        push(&mut row_reg, 1, 3, vec![7, 0]);

        let mut batch_reg = QueryRegistry::new(catalog());
        let (bq1, bq2) = build(&mut batch_reg);
        let mut builder = BlockBuilder::new().with_columns(true);
        for (i, (ts, values)) in a_rows.iter().enumerate() {
            builder.push(
                SourceId(0),
                Arc::new(BaseTuple::new(
                    SourceId(0),
                    i as u64,
                    Timestamp(*ts),
                    values.iter().map(|&v| Value::int(v)).collect(),
                )),
            );
        }
        let block = builder.finish();
        batch_reg.push_batch(&block.batches()[0]).unwrap();
        push(&mut batch_reg, 1, 3, vec![7, 0]);

        // Identical results per query and identical sharing accounting.
        assert_eq!(
            row_reg.poll_results(rq1).unwrap(),
            batch_reg.poll_results(bq1).unwrap()
        );
        assert_eq!(
            row_reg.poll_results(rq2).unwrap(),
            batch_reg.poll_results(bq2).unwrap()
        );
        let (r, b) = (row_reg.sharing_report(), batch_reg.sharing_report());
        assert_eq!(r.routed, b.routed);
        assert_eq!(r.classifications, b.classifications);
        assert_eq!(r.classifications_saved, b.classifications_saved);
        assert!(b.routed > 0);
    }

    #[test]
    fn stem_cache_shares_windows_and_prices_isolation() {
        let mut reg = QueryRegistry::new(catalog());
        let q1 = reg.register(JOIN_AB).unwrap();
        let _q2 = reg.register(JOIN_AB).unwrap();
        push(&mut reg, 0, 0, vec![1, 1]);
        push(&mut reg, 0, 1, vec![2, 2]);
        let report = reg.sharing_report();
        assert!(report.shared_state_bytes > 0);
        // Two subscribers per stem: isolation would store everything twice.
        assert_eq!(report.isolated_state_bytes, 2 * report.shared_state_bytes);
        let window = reg.window_contents(q1, SourceId(0)).unwrap();
        assert_eq!(window.len(), 2);
        // The window slides: push past the 1-minute range.
        push(&mut reg, 0, 61_000, vec![3, 3]);
        let window = reg.window_contents(q1, SourceId(0)).unwrap();
        assert_eq!(window.len(), 1);
        // Windows are registry-level state, in global id space.
        assert_eq!(window[0].parts()[0].source, SourceId(0));
    }

    #[test]
    fn deregister_mid_stream_keeps_siblings_and_reclaims_orphans() {
        let mut reg = QueryRegistry::new(catalog());
        let q1 = reg.register(JOIN_AB).unwrap();
        let q2 = reg.register(JOIN_AB).unwrap();
        push(&mut reg, 0, 0, vec![7, 1]);
        push(&mut reg, 1, 1, vec![7, 2]);
        // q1 leaves: it collects the ready result on the way out…
        let remainder = reg.deregister(q1).unwrap();
        assert_eq!(remainder.len(), 1);
        // …and the shared pipeline keeps serving q2.
        assert_eq!(reg.num_pipelines(), 1);
        push(&mut reg, 0, 2, vec![7, 3]);
        assert_eq!(reg.poll_results(q2).unwrap().len(), 2);
        // The id is dead for every per-query entry point.
        assert!(matches!(
            reg.poll_results(q1),
            Err(ServeError::UnknownQuery(_))
        ));
        assert!(matches!(
            reg.metrics_snapshot(q1),
            Err(ServeError::UnknownQuery(_))
        ));
        assert!(matches!(
            reg.deregister(q1),
            Err(ServeError::UnknownQuery(_))
        ));
        // Last subscriber out shuts the pipeline and empties the caches.
        reg.deregister(q2).unwrap();
        assert_eq!(reg.num_pipelines(), 0);
        let report = reg.sharing_report();
        assert_eq!(report.filter_classes, 0);
        assert_eq!(report.shared_state_bytes, 0);
        // The stream keeps flowing with zero queries registered.
        push(&mut reg, 0, 3, vec![1, 1]);
        assert_eq!(reg.sharing_report().routed, 3);
    }

    #[test]
    fn push_contract_is_enforced() {
        let mut reg = QueryRegistry::new(catalog());
        reg.register(JOIN_AB).unwrap();
        push(&mut reg, 0, 10, vec![1, 1]);
        assert!(matches!(
            reg.push_values(SourceId(0), Timestamp(5), vec![Value::int(1)]),
            Err(ServeError::OutOfOrder { .. })
        ));
        assert!(matches!(
            reg.push_values(SourceId(9), Timestamp(10), vec![]),
            Err(ServeError::UnknownSource(SourceId(9)))
        ));
        assert!(matches!(
            reg.register("SELECT nonsense"),
            Err(ServeError::Cql(_))
        ));
    }

    #[test]
    fn finish_delivers_every_query_exactly_once() {
        let mut reg = QueryRegistry::new(catalog());
        let q1 = reg.register(JOIN_AB).unwrap();
        let q2 = reg.register(JOIN_AB).unwrap();
        push(&mut reg, 0, 0, vec![7, 1]);
        push(&mut reg, 1, 1, vec![7, 2]);
        // q1 polls early; q2 never polls. Both must end with the same
        // complete result stream.
        let early = reg.poll_results(q1).unwrap();
        assert_eq!(early.len(), 1);
        push(&mut reg, 0, 2, vec![7, 3]);
        push(&mut reg, 1, 3, vec![7, 4]);
        let finished = reg.finish().unwrap();
        assert_eq!(finished.len(), 2);
        assert_eq!(finished[0].0, q1);
        assert_eq!(finished[1].0, q2);
        // Four join results total: B@1×A@0, A@2×B@1, B@3×{A@0, A@2}.
        let q1_total = early.len() + finished[0].1.results.len();
        assert_eq!(q1_total, finished[1].1.results.len());
        assert_eq!(finished[1].1.results.len(), 4);
    }

    #[test]
    fn checkpoint_restore_resumes_every_query_mid_stream() {
        let mut reg = QueryRegistry::new(catalog());
        let q1 = reg.register(JOIN_AB).unwrap();
        let q2 = reg
            .register("SELECT * FROM A [RANGE 2 minutes], B [RANGE 2 minutes] WHERE A.k = B.k")
            .unwrap();
        push(&mut reg, 0, 0, vec![7, 1]);
        push(&mut reg, 1, 10, vec![7, 2]);
        // q1 has polled, q2 has not: the checkpoint must preserve both the
        // delivered-already cursor and the undelivered mailbox.
        assert_eq!(reg.poll_results(q1).unwrap().len(), 1);
        let blob = reg.checkpoint().unwrap();

        // "Crash": rebuild from configuration + blob.
        let mut restored = QueryRegistry::new(catalog());
        let r1 = restored.register(JOIN_AB).unwrap();
        let r2 = restored
            .register("SELECT * FROM A [RANGE 2 minutes], B [RANGE 2 minutes] WHERE A.k = B.k")
            .unwrap();
        assert_eq!((r1, r2), (q1, q2), "identical registration order");
        restored.restore(&blob).unwrap();

        // The shared windows came back…
        assert_eq!(
            restored.window_contents(r1, SourceId(0)).unwrap(),
            reg.window_contents(q1, SourceId(0)).unwrap()
        );
        // …and both streams continue identically from the cut.
        push(&mut reg, 0, 20, vec![7, 3]);
        push(&mut restored, 0, 20, vec![7, 3]);
        let live = reg.finish().unwrap();
        let resumed = restored.finish().unwrap();
        assert_eq!(live.len(), resumed.len());
        for ((lq, lo), (rq, ro)) in live.iter().zip(resumed.iter()) {
            assert_eq!(lq, rq);
            assert_eq!(lo.results, ro.results);
        }
        // q2 never polled: its full stream (A@0×B@10 and A@20×B@10)
        // survives intact.
        assert_eq!(resumed[1].1.results.len(), 2);
        // q1's early poll happened before the cut, so the restored side owes
        // it only the post-poll remainder.
        assert_eq!(resumed[0].1.results.len(), 1);
    }

    #[test]
    fn restore_rejects_a_structurally_different_registry() {
        let mut reg = QueryRegistry::new(catalog());
        reg.register(JOIN_AB).unwrap();
        let blob = reg.checkpoint().unwrap();
        // No queries re-registered: the structure cannot match.
        let mut empty = QueryRegistry::new(catalog());
        assert!(matches!(
            empty.restore(&blob),
            Err(ServeError::Engine(jit_engine::EngineError::Checkpoint(
                CheckpointError::Mismatch(_)
            )))
        ));
    }

    #[test]
    fn suppression_reporting_is_wired_and_observational() {
        use jit_core::JitPolicy;
        let mut reg = QueryRegistry::with_options(
            catalog(),
            ServeOptions {
                mode: ExecutionMode::Jit(JitPolicy::full()),
                ..ServeOptions::default()
            },
        );
        let q1 = reg.register(JOIN_AB).unwrap();
        push(&mut reg, 0, 0, vec![7, 1]);
        push(&mut reg, 1, 1, vec![7, 2]);
        // Nothing suppressed in this tiny stream: the digest cache is
        // empty, overlap zero, and no hit is ever counted — but the calls
        // are valid at any time.
        reg.refresh_suppression();
        assert_eq!(reg.suppression_overlap(), 0);
        push(&mut reg, 0, 2, vec![7, 3]);
        let report = reg.sharing_report();
        assert_eq!(report.suppression_signatures, 0);
        assert_eq!(report.cross_pollination_hits, 0);
        // JIT never changes what a query receives: 2 join results total,
        // whether polled or flushed.
        let polled = reg.poll_results(q1).unwrap().len();
        let finished = reg.finish().unwrap();
        assert_eq!(polled + finished[0].1.results.len(), 2);
    }
}
