//! Shared selection pushdown: a registry-wide index of constant-filter
//! classes.
//!
//! Each registered query applies a (possibly empty) conjunction of constant
//! filters to every source it reads. Serving queries in isolation would
//! evaluate each query's conjunction on each arrival — cost linear in the
//! number of queries even when they all ask the same thing. The
//! [`SelectionIndex`] deduplicates the conjunctions into refcounted
//! *classes* (in the global catalog's column space): an arrival is
//! classified once per *distinct* class on its source, and every query
//! holding a reference to that class reuses the verdict.
//!
//! Class ids are never reused, so a released class cannot be confused with
//! a later one holding the same terms.

use jit_plan::FilterTerm;
use jit_types::kernel::{self, BitMask};
use jit_types::{Batch, ColumnRef, CompareOp, FastMap, FilterPredicate, SourceId, Tuple, Value};

/// Stable handle to one deduplicated filter conjunction.
pub type ClassId = usize;

/// Hashable identity of a class: its normalized terms, in canonical order
/// (the canonicalizer sorts them, and all terms of one class share a source,
/// so rebasing local → global source ids preserves the order).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ClassKey(Vec<(ColumnRef, CompareOp, Value)>);

#[derive(Debug)]
struct ClassEntry {
    source: SourceId,
    predicates: Vec<FilterPredicate>,
    key: ClassKey,
    refcount: usize,
}

/// The registry-wide index of filter classes.
#[derive(Debug, Default)]
pub struct SelectionIndex {
    /// Slot per ever-created class; `None` once released to refcount 0.
    classes: Vec<Option<ClassEntry>>,
    by_key: FastMap<ClassKey, ClassId>,
    /// Global source id → live class ids on that source (ascending).
    by_source: FastMap<SourceId, Vec<ClassId>>,
    evaluations: u64,
}

impl SelectionIndex {
    /// An empty index.
    pub fn new() -> Self {
        SelectionIndex::default()
    }

    /// Take one reference on the class for `terms` (already rebased to the
    /// global column space, all on `source`), creating it on first use.
    /// An empty conjunction has no class: every arrival passes.
    pub fn acquire(&mut self, source: SourceId, terms: &[FilterTerm]) -> Option<ClassId> {
        if terms.is_empty() {
            return None;
        }
        debug_assert!(terms.iter().all(|t| t.column.source == source));
        let key = ClassKey(
            terms
                .iter()
                .map(|t| (t.column, t.op, t.constant.clone()))
                .collect(),
        );
        if let Some(&id) = self.by_key.get(&key) {
            // INVARIANT: by_key only references live class slots (removed
            // together in release).
            self.classes[id].as_mut().expect("live class").refcount += 1;
            return Some(id);
        }
        let id = self.classes.len();
        self.classes.push(Some(ClassEntry {
            source,
            predicates: terms.iter().map(FilterTerm::predicate).collect(),
            key: key.clone(),
            refcount: 1,
        }));
        self.by_key.insert(key, id);
        self.by_source.entry(source).or_default().push(id);
        Some(id)
    }

    /// Drop one reference; the class disappears at refcount 0.
    pub fn release(&mut self, id: ClassId) {
        let Some(slot) = self.classes.get_mut(id) else {
            return;
        };
        let Some(entry) = slot else { return };
        entry.refcount -= 1;
        if entry.refcount == 0 {
            self.by_key.remove(&entry.key);
            let source = entry.source;
            if let Some(ids) = self.by_source.get_mut(&source) {
                ids.retain(|&c| c != id);
            }
            *slot = None;
        }
    }

    /// Evaluate every distinct class on `source` against one arrival, once
    /// each. Returns `(class, passed)` pairs; a missing column rejects, as
    /// in [`jit_exec::selection::SelectionOperator`].
    pub fn classify(&mut self, source: SourceId, tuple: &Tuple) -> Vec<(ClassId, bool)> {
        let Some(ids) = self.by_source.get(&source) else {
            return Vec::new();
        };
        let mut verdicts = Vec::with_capacity(ids.len());
        for &id in ids {
            // INVARIANT: by_source only references live class slots (removed
            // together in release).
            let entry = self.classes[id].as_ref().expect("live class");
            self.evaluations += 1;
            let passed = entry
                .predicates
                .iter()
                .all(|p| p.holds_on(tuple).unwrap_or(false));
            verdicts.push((id, passed));
        }
        verdicts
    }

    /// Batched [`SelectionIndex::classify`]: evaluate every distinct class
    /// on `source` against a whole batch at once, returning one packed
    /// verdict mask per class. When the batch carries a columnar projection
    /// each term runs as one [`kernel::filter_mask`] pass and the terms AND
    /// together word-wise; otherwise the scalar per-row check decides each
    /// bit. Either way a row not carrying the filtered column is rejected,
    /// and `evaluations` advances by one per class per row — exactly as if
    /// [`SelectionIndex::classify`] had run on every row.
    pub fn classify_batch(&mut self, source: SourceId, batch: &Batch) -> Vec<(ClassId, BitMask)> {
        let Some(ids) = self.by_source.get(&source) else {
            return Vec::new();
        };
        let n = batch.len();
        let num_classes = ids.len();
        let mut verdicts = Vec::with_capacity(num_classes);
        let mut term_mask = BitMask::new();
        for &id in ids {
            // INVARIANT: by_source only references live class slots (removed
            // together in release).
            let entry = self.classes[id].as_ref().expect("live class");
            let mut mask = BitMask::filled(n, true);
            for p in &entry.predicates {
                if p.column.source != source {
                    // The filtered column cannot appear on any row here.
                    mask = BitMask::zeros(n);
                    break;
                }
                if let Some(array) = batch.column(p.column.column as usize) {
                    kernel::filter_mask(array, p.op, &p.constant, &mut term_mask);
                } else {
                    // No columnar projection (or the column is beyond it):
                    // decide each row from its base tuple. A missing cell
                    // rejects, as on the per-tuple path.
                    term_mask = BitMask::zeros(n);
                    for (r, row) in batch.rows().iter().enumerate() {
                        let pass = row.value(p.column.column).is_some_and(|v| match p.op {
                            CompareOp::Eq => *v == p.constant,
                            CompareOp::Ne => *v != p.constant,
                            CompareOp::Lt => *v < p.constant,
                            CompareOp::Le => *v <= p.constant,
                            CompareOp::Gt => *v > p.constant,
                            CompareOp::Ge => *v >= p.constant,
                        });
                        term_mask.set(r, pass);
                    }
                }
                mask.and_assign(&term_mask);
                if !mask.any() {
                    break;
                }
            }
            verdicts.push((id, mask));
        }
        self.evaluations += (num_classes * n) as u64;
        verdicts
    }

    /// Number of references currently held on `id` (0 if released).
    pub fn refcount(&self, id: ClassId) -> usize {
        self.classes
            .get(id)
            .and_then(Option::as_ref)
            .map_or(0, |e| e.refcount)
    }

    /// Number of live classes.
    pub fn num_classes(&self) -> usize {
        self.classes.iter().flatten().count()
    }

    /// Total class evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Timestamp};
    use std::sync::Arc;

    fn term(source: u16, column: u16, op: CompareOp, constant: i64) -> FilterTerm {
        FilterTerm {
            column: ColumnRef::new(SourceId(source), column),
            op,
            constant: Value::int(constant),
        }
    }

    fn tuple(source: u16, values: Vec<i64>) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            0,
            Timestamp::ZERO,
            values.into_iter().map(Value::int).collect(),
        )))
    }

    #[test]
    fn identical_conjunctions_share_one_class() {
        let mut index = SelectionIndex::new();
        let terms = vec![term(0, 0, CompareOp::Gt, 10)];
        let a = index.acquire(SourceId(0), &terms).unwrap();
        let b = index.acquire(SourceId(0), &terms).unwrap();
        assert_eq!(a, b);
        assert_eq!(index.refcount(a), 2);
        assert_eq!(index.num_classes(), 1);
        // A different constant is a different class.
        let c = index
            .acquire(SourceId(0), &[term(0, 0, CompareOp::Gt, 11)])
            .unwrap();
        assert_ne!(a, c);
        assert_eq!(index.num_classes(), 2);
        // The empty conjunction has no class at all.
        assert_eq!(index.acquire(SourceId(1), &[]), None);
    }

    #[test]
    fn classify_evaluates_each_class_once() {
        let mut index = SelectionIndex::new();
        let gt = index
            .acquire(SourceId(0), &[term(0, 0, CompareOp::Gt, 10)])
            .unwrap();
        index.acquire(SourceId(0), &[term(0, 0, CompareOp::Gt, 10)]);
        let lt = index
            .acquire(SourceId(0), &[term(0, 1, CompareOp::Lt, 5)])
            .unwrap();
        let verdicts = index.classify(SourceId(0), &tuple(0, vec![20, 9]));
        assert_eq!(verdicts, vec![(gt, true), (lt, false)]);
        // Two classes evaluated — not three, despite three references.
        assert_eq!(index.evaluations(), 2);
        // A source with no classes classifies to nothing.
        assert!(index.classify(SourceId(7), &tuple(7, vec![1])).is_empty());
        // A tuple missing the filtered column is rejected, not passed.
        let short = index.classify(SourceId(0), &tuple(0, vec![20]));
        assert_eq!(short, vec![(gt, true), (lt, false)]);
    }

    #[test]
    fn classify_batch_matches_per_row_classify() {
        use jit_types::BlockBuilder;
        let mut index = SelectionIndex::new();
        let gt = index
            .acquire(SourceId(0), &[term(0, 0, CompareOp::Gt, 10)])
            .unwrap();
        let lt = index
            .acquire(SourceId(0), &[term(0, 1, CompareOp::Lt, 5)])
            .unwrap();
        let both = index
            .acquire(
                SourceId(0),
                &[term(0, 0, CompareOp::Gt, 10), term(0, 1, CompareOp::Lt, 5)],
            )
            .unwrap();
        let rows: Vec<Vec<i64>> = vec![vec![20, 9], vec![5, 1], vec![30, 2], vec![11, 5]];
        let mut builder = BlockBuilder::new().with_columns(true);
        for (i, values) in rows.iter().enumerate() {
            builder.push(
                SourceId(0),
                Arc::new(BaseTuple::new(
                    SourceId(0),
                    i as u64,
                    Timestamp(i as u64),
                    values.iter().map(|&v| Value::int(v)).collect(),
                )),
            );
        }
        let block = builder.finish();
        let batch = &block.batches()[0];
        let masks = index.classify_batch(SourceId(0), batch);
        assert_eq!(masks.len(), 3);
        // Three classes × four rows, charged as if classified row by row.
        assert_eq!(index.evaluations(), 12);
        // Kernel masks agree bit-for-bit with the scalar path.
        let mut scalar = SelectionIndex::new();
        scalar.acquire(SourceId(0), &[term(0, 0, CompareOp::Gt, 10)]);
        scalar.acquire(SourceId(0), &[term(0, 1, CompareOp::Lt, 5)]);
        scalar.acquire(
            SourceId(0),
            &[term(0, 0, CompareOp::Gt, 10), term(0, 1, CompareOp::Lt, 5)],
        );
        for (r, values) in rows.iter().enumerate() {
            let verdicts = scalar.classify(SourceId(0), &tuple(0, values.clone()));
            for ((class, mask), (scalar_class, passed)) in masks.iter().zip(verdicts) {
                assert_eq!(*class, scalar_class);
                assert_eq!(mask.get(r), passed, "class {class} row {r}");
            }
        }
        assert_eq!(
            masks
                .iter()
                .map(|(_, m)| m.count_ones())
                .collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
        let _ = (gt, lt, both);
    }

    #[test]
    fn release_reclaims_at_zero_and_never_reuses_ids() {
        let mut index = SelectionIndex::new();
        let terms = vec![term(0, 0, CompareOp::Eq, 1)];
        let a = index.acquire(SourceId(0), &terms).unwrap();
        index.acquire(SourceId(0), &terms);
        index.release(a);
        assert_eq!(index.refcount(a), 1);
        index.release(a);
        assert_eq!(index.num_classes(), 0);
        assert!(index.classify(SourceId(0), &tuple(0, vec![1])).is_empty());
        // Re-acquiring the same terms mints a fresh id.
        let b = index.acquire(SourceId(0), &terms).unwrap();
        assert_ne!(a, b);
        // Releasing a dead id is a no-op.
        index.release(a);
        assert_eq!(index.refcount(b), 1);
    }
}
