#![warn(missing_docs)]
//! Multi-query serving tier over the JIT engine.
//!
//! The single-query [`jit_engine::Engine`] answers "run *this* query over
//! *this* stream". A data-stream *service* faces the plural problem: many
//! standing queries, registered and cancelled at runtime, all fed by one
//! arrival stream — and most of them overlapping heavily in sources,
//! windows, predicates and filters. Processing each query in isolation
//! multiplies every per-arrival cost by the number of registered queries.
//!
//! [`QueryRegistry`] is the shared-serving answer. Queries enter as CQL text
//! ([`QueryRegistry::register`]) and leave at any time
//! ([`QueryRegistry::deregister`]); every arrival is pushed **once**
//! ([`QueryRegistry::push`]) and the registry routes it to exactly the work
//! that needs it:
//!
//! * **Pipeline sharing** — queries are canonicalized
//!   ([`jit_plan::CanonicalQuery`]) and queries with equal canonical keys
//!   share one executing pipeline (one [`jit_engine::Session`]), however
//!   their texts differ superficially. Results fan out to per-query
//!   mailboxes ([`QueryRegistry::poll_results`]), so every subscriber still
//!   observes its own complete result stream.
//! * **Shared selection pushdown** — the constant-filter conjunction each
//!   query applies to a source is deduplicated into a registry-wide class
//!   index; an arrival is classified once per *distinct* class, not once per
//!   query, and only pipelines whose class passed see the tuple.
//! * **Shared window state (STeM cache)** — the per-source sliding windows
//!   (the leaf STeMs of every plan, keyed by canonical sub-pattern: source,
//!   window, filter class) are kept once in a refcounted
//!   [`jit_exec::state::StateCache`] and maintained once per arrival,
//!   whatever the number of subscribing queries. The cache also prices the
//!   sharing: [`SharingReport::shared_state_bytes`] vs
//!   [`SharingReport::isolated_state_bytes`].
//! * **JIT cross-pollination** — suppression knowledge (blacklisted MNS
//!   signatures) learned by one pipeline is collected as a
//!   [`jit_exec::operator::SuppressionDigest`], rebased into the global
//!   catalog's column space, and compared across sibling pipelines: overlap
//!   and per-arrival pre-filter hits are *reported*
//!   ([`QueryRegistry::suppression_overlap`],
//!   [`SharingReport::cross_pollination_hits`]), never used to drop
//!   deliveries — each query's results stay byte-identical to a dedicated
//!   engine's.
//!
//! That last guarantee is the tier's contract: for every registered query,
//! the result stream equals what an independent [`jit_engine::Engine`] would
//! produce for the same query over the same arrivals (the
//! `serving_equivalence` integration tests pin this on both backends).

pub mod registry;
pub mod selection;

pub use registry::{QueryId, QueryRegistry, ServeError, ServeOptions, SharingReport};
