//! Offline, API-compatible subset of [criterion](https://docs.rs/criterion).
//!
//! Implements the slice of the criterion 0.5 surface the workspace's benches
//! use — [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`] and
//! [`BatchSize`] — measuring simple wall-clock statistics (mean / min / max
//! per sample) and printing them to stdout.
//!
//! Sample counts are intentionally small so `cargo test` (which executes
//! `harness = false` bench targets) stays fast; `cargo bench` runs the same
//! code. Set `CRITERION_SAMPLES` to override the per-benchmark sample count.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement (accepted for
/// compatibility; the stub times one routine call per sample regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Prevent the optimiser from discarding a value (best-effort stable
/// implementation).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to registered bench functions.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        Criterion { samples }
    }
}

impl Criterion {
    /// Configure the default number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Accepted for compatibility; the stub ignores measurement time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name.as_ref(), self.samples, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Accepted for compatibility; the stub ignores measurement time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, label: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, label.as_ref()),
            self.samples,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Under `cargo test` the bench binary is executed too; keep that cheap
    // by collapsing to a single sample when the harness passes `--test`.
    let test_mode = std::env::args().any(|a| a == "--test");
    let samples = if test_mode { 1 } else { samples };
    let mut bencher = Bencher {
        durations: Vec::with_capacity(samples),
        samples,
    };
    f(&mut bencher);
    let durations = &bencher.durations;
    if durations.is_empty() {
        println!("{name}: no measurements");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    println!(
        "{name}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        durations.len()
    );
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    durations: Vec<Duration>,
    samples: usize,
}

impl Bencher {
    /// Measure a routine with no per-sample setup.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.durations.push(start.elapsed());
            drop(out);
        }
    }

    /// Measure a routine with untimed per-sample setup.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.durations.push(start.elapsed());
            drop(out);
        }
    }
}

/// Bundle bench functions into a callable group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0;
        c.bench_function("demo", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn group_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut setups = 0;
        let mut runs = 0;
        group.bench_function("demo", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }
}
