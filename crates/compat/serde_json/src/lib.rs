//! Offline JSON text format for the local serde subset.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`] and [`from_str`] — over the `serde::Content` data
//! model. The emitted text is ordinary JSON; objects keep field order.

use serde::{Content, Deserialize, Serialize};

pub use serde::Error;

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialise a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_content(&content)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` prints the shortest representation that round-trips,
                // which is also valid JSON for finite values.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: decode from a bounded window (a code
                    // point is at most 4 bytes) — validating the whole
                    // remaining input per character would be quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let text = match std::str::from_utf8(window) {
                        Ok(text) => text,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).unwrap()
                        }
                        Err(_) => return Err(Error::msg("invalid UTF-8 in string")),
                    };
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            // Parse the full signed text so i64::MIN (whose magnitude
            // exceeds i64::MAX) round-trips.
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = vec![(1u64, "a\"b".to_string()), (u64::MAX, "x\ny".to_string())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip() {
        for v in [0.0f64, 1.5, -2.25, 1e-12, 1e300, 0.1] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![Some(3u64), None, Some(5)];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Option<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_integers() {
        let json = to_string(&-42i64).unwrap();
        assert_eq!(json, "-42");
        let back: i64 = from_str(&json).unwrap();
        assert_eq!(back, -42);
    }

    #[test]
    fn extreme_integers_round_trip() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            let back: i64 = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn non_ascii_strings_round_trip() {
        for s in ["héllo wörld", "日本語テキスト", "emoji 🦀 mix", "¡ü¡"] {
            let json = to_string(&s.to_string()).unwrap();
            let back: String = from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 2").is_err());
    }
}
