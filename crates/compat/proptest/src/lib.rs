//! Offline, API-compatible subset of [proptest](https://docs.rs/proptest).
//!
//! Supports the features the workspace's tests use: the [`proptest!`] macro
//! (with an optional `#![proptest_config(...)]` header), range and boolean
//! [`Strategy`](strategy::Strategy)s, [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Sampling is deterministic: each test function draws its inputs from a
//! fixed-seed generator (override with the `PROPTEST_SEED` environment
//! variable), so failures are reproducible. No shrinking is performed — the
//! failing input values are reported by the assertion message instead.

pub use rand;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
    /// Accepted for compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Strategies: deterministic samplers for test inputs.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::{Range, RangeInclusive};

    /// The deterministic generator backing a property test run.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeded from `PROPTEST_SEED` (default: a fixed constant).
        pub fn deterministic() -> TestRng {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x50_52_4F_50u64);
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    /// A source of random test inputs.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u16, u32, u64, usize, i32, i64, isize);

    /// Strategy yielding both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.0.gen()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Samples `true` and `false` with equal probability.
    pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
}

/// The usual import surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn` runs `config.cases` times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::strategy::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0u64..10,
            b in 3usize..=4,
            flag in crate::bool::ANY,
        ) {
            prop_assert!(a < 10);
            prop_assert!(b == 3 || b == 4);
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 1u64..=6) {
            prop_assert!((1..=6).contains(&x));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::{Strategy, TestRng};
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..50 {
            assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
        }
    }
}
