//! Derive macros for the offline serde subset.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses: **non-generic** structs (named,
//! tuple/newtype, unit) and enums whose variants are unit, tuple or struct
//! variants. The generated code targets the simplified `serde::Serialize` /
//! `serde::Deserialize` traits (conversion to and from `serde::Content`).
//!
//! The input item is parsed directly from the `proc_macro::TokenStream`
//! (neither `syn` nor `quote` is available offline); generics are rejected
//! with a compile error rather than silently miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or an enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => break id.to_string(),
            other => return Err(format!("unexpected token {other:?} before item keyword")),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (offline subset) does not support generic type `{name}`"
        ));
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&mut tokens)?),
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Kind::Enum(parse_variants(body)?)
        }
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Input { name, kind })
}

fn parse_struct_body(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Result<Fields, String> {
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Fields::Named(named_field_names(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_top_level_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        other => Err(format!("expected struct body, found {other:?}")),
    }
}

/// Split a token stream on commas that sit outside any `<...>` nesting.
/// (Bracketed/parenthesised groups arrive as single atomic tokens, so only
/// angle brackets need explicit depth tracking.)
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tt);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Extract the field names from the body of a brace struct (or struct
/// variant): for each comma-separated part, the identifier right before the
/// first top-level `:`.
fn named_field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut last_ident = None;
            let mut iter = part.into_iter().peekable();
            while let Some(tt) = iter.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next();
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' => {
                        return last_ident.ok_or_else(|| "field without a name".to_string());
                    }
                    TokenTree::Ident(id) => {
                        let text = id.to_string();
                        if text != "pub" {
                            last_ident = Some(text);
                        }
                    }
                    _ => {}
                }
            }
            Err("struct field without `:`".to_string())
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut name = None;
            let mut fields = Fields::Unit;
            let mut iter = part.into_iter().peekable();
            while let Some(tt) = iter.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next();
                    }
                    TokenTree::Ident(id) if name.is_none() => name = Some(id.to_string()),
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        fields = Fields::Named(named_field_names(g.stream())?);
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        fields = Fields::Tuple(count_top_level_fields(g.stream()));
                    }
                    _ => {}
                }
            }
            let name = name.ok_or_else(|| "enum variant without a name".to_string())?;
            Ok((name, fields))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Content::Str(String::from({v:?}))"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Content::Map(vec![(String::from({v:?}), \
                         ::serde::Serialize::to_content(f0))])"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Content::Map(vec![(String::from({v:?}), \
                             ::serde::Content::Seq(vec![{items}]))])",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from({f:?}), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![(String::from({v:?}), \
                             ::serde::Content::Map(vec![{entries}]))])",
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_content(content)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "let items = content.as_seq_n({n}, {name:?})?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(map, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let map = content.as_map().ok_or_else(|| ::serde::Error::expected(\"object\", {name:?}))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),"))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "{v:?} => return Ok({name}::{v}(::serde::Deserialize::from_content(value)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                    .collect();
                Some(format!(
                    "{v:?} => {{ let items = value.as_seq_n({n}, {name:?})?; \
                     return Ok({name}::{v}({})); }}",
                    items.join(", ")
                ))
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(inner, {f:?}, {name:?})?"))
                    .collect();
                Some(format!(
                    "{v:?} => {{ let inner = value.as_map().ok_or_else(|| \
                     ::serde::Error::expected(\"object\", {name:?}))?; \
                     return Ok({name}::{v} {{ {} }}); }}",
                    inits.join(", ")
                ))
            }
        })
        .collect();

    let mut body = String::new();
    if !unit_arms.is_empty() {
        body.push_str(&format!(
            "if let Some(tag) = content.as_str() {{\n\
                 match tag {{ {} _ => {{}} }}\n\
             }}\n",
            unit_arms.join(" ")
        ));
    }
    if !payload_arms.is_empty() {
        body.push_str(&format!(
            "if let Some(entries) = content.as_map() {{\n\
                 if entries.len() == 1 {{\n\
                     let (tag, value) = &entries[0];\n\
                     match tag.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
             }}\n",
            payload_arms.join(" ")
        ));
    }
    body.push_str(&format!(
        "Err(::serde::Error::expected(\"a known variant\", {name:?}))"
    ));
    body
}
