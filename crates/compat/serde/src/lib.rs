//! Offline, API-compatible subset of [serde](https://serde.rs).
//!
//! The build environment for this workspace has no network access, so the
//! real serde crate cannot be fetched. This crate provides just enough of the
//! same surface for the workspace to compile and round-trip its data:
//!
//! * [`Serialize`] / [`Deserialize`] traits (simplified: they convert to and
//!   from a JSON-like [`Content`] tree instead of driving a visitor), and
//! * `#[derive(Serialize, Deserialize)]` macros (re-exported from the local
//!   `serde_derive` proc-macro crate) covering non-generic structs and enums
//!   with unit, tuple and struct variants — the only shapes used here.
//!
//! The `serde_json` sibling crate renders [`Content`] as JSON text and parses
//! it back. Swapping these for the real crates only requires changing the
//! `[workspace.dependencies]` entries in the root `Cargo.toml`.

use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A serialised value: the JSON data model.
///
/// Integers keep their sign information (`U64` vs `I64`) so `u64` values
/// above `i64::MAX` round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, with insertion order preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries of an object, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// An array of exactly `n` elements, or an error mentioning `what`.
    pub fn as_seq_n(&self, n: usize, what: &str) -> Result<&[Content], Error> {
        match self.as_seq() {
            Some(items) if items.len() == n => Ok(items),
            _ => Err(Error::expected(&format!("array of {n} elements"), what)),
        }
    }
}

/// Serialisation / deserialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// A type-mismatch error.
    pub fn expected(wanted: &str, context: &str) -> Error {
        Error(format!("expected {wanted} while deserialising {context}"))
    }

    /// An arbitrary error message.
    pub fn msg(message: impl Into<String>) -> Error {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Convert `self` into serialised content.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct a value from serialised content.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Look up a struct field in an object and deserialise it.
pub fn field<T: Deserialize>(map: &[(String, Content)], name: &str, ty: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => Err(Error::msg(format!("missing field `{name}` in {ty}"))),
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::expected("in-range integer", stringify!($t)))?,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for &str {
    fn to_content(&self) -> Content {
        Content::Str((*self).to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(Arc::from(s.as_str())),
            _ => Err(Error::expected("string", "Arc<str>")),
        }
    }
}

impl<T: Deserialize> Deserialize for Arc<[T]> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Vec::<T>::from_content(content).map(Arc::from)
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($idx:tt $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let items = content.as_seq_n($n, "tuple")?;
                Ok(($($t::from_content(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => 0 A);
impl_tuple!(2 => 0 A, 1 B);
impl_tuple!(3 => 0 A, 1 B, 2 C);
impl_tuple!(4 => 0 A, 1 B, 2 C, 3 D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert_eq!(f64::from_content(&0.25f64.to_content()).unwrap(), 0.25);
        assert!(bool::from_content(&true.to_content()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u16, 2u64), (3, 4)];
        assert_eq!(Vec::<(u16, u64)>::from_content(&v.to_content()).unwrap(), v);
        let o: Option<String> = Some("hi".into());
        assert_eq!(Option::<String>::from_content(&o.to_content()).unwrap(), o);
        let none: Option<u64> = None;
        assert_eq!(
            Option::<u64>::from_content(&none.to_content()).unwrap(),
            none
        );
        let a: Arc<str> = Arc::from("abc");
        assert_eq!(&*Arc::<str>::from_content(&a.to_content()).unwrap(), "abc");
        let s: Arc<[u64]> = Arc::from(vec![1, 2, 3]);
        assert_eq!(
            &*Arc::<[u64]>::from_content(&s.to_content()).unwrap(),
            &[1, 2, 3]
        );
    }

    #[test]
    fn missing_field_reports_name() {
        let map = vec![("a".to_string(), Content::U64(1))];
        let err = field::<u64>(&map, "b", "Demo").unwrap_err();
        assert!(err.0.contains("`b`"));
    }
}
