//! Offline, API-compatible subset of the [rand](https://docs.rs/rand) crate.
//!
//! Provides the slice of the rand 0.8 surface this workspace uses:
//! [`RngCore`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64. The
//! stream differs from the real crate's ChaCha-based `StdRng`, which is fine
//! here: every consumer in the workspace seeds its own generator and only
//! relies on determinism and reasonable statistical quality, not on a
//! specific stream.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value with the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: maps a random `u64` onto `[0, span)`
/// with negligible bias for the span sizes used here.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy. Offline stub: derives the seed
    /// from the system clock — do not use where determinism matters.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(StdRng::seed_from_u64(9).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(1u64..=6);
            assert!((1..=6).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "both endpoints should appear");
        let v = rng.gen_range(5usize..6);
        assert_eq!(v, 5);
    }

    #[test]
    fn gen_range_covers_domain_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits));
    }
}
