//! The watermark-driven reorder stage.

use jit_types::{Duration, Timestamp};
use serde::{Content, Serialize};
use std::collections::BTreeMap;

/// How a session treats out-of-order arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisorderPolicy {
    /// The historical contract: any timestamp regression is an error.
    Strict,
    /// Tolerate arrivals up to this much later than the maximum timestamp
    /// seen. The watermark trails the maximum by the bound; tuples at or
    /// under the watermark are released downstream in timestamp order, and
    /// an arrival older than the watermark is dropped and counted (a typed
    /// [`PushOutcome::LateDrop`], never an error).
    Bounded(Duration),
}

impl DisorderPolicy {
    /// The lateness bound, if any.
    pub fn lateness(&self) -> Option<Duration> {
        match self {
            DisorderPolicy::Strict => None,
            DisorderPolicy::Bounded(l) => Some(*l),
        }
    }
}

/// What happened to one pushed arrival under a bounded-disorder policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a LateDrop means the tuple was NOT processed"]
pub enum PushOutcome {
    /// The arrival was accepted (buffered, and released once the watermark
    /// passes it).
    Accepted,
    /// The arrival was accepted and was late (smaller timestamp than an
    /// earlier arrival) — it will still be released in correct order.
    AcceptedLate,
    /// The arrival was older than the watermark allows; it was dropped and
    /// counted, not processed.
    LateDrop,
}

impl PushOutcome {
    /// Was the tuple accepted for processing?
    pub fn is_accepted(&self) -> bool {
        !matches!(self, PushOutcome::LateDrop)
    }
}

/// A reorder buffer in front of a push-based backend.
///
/// Arrivals go in via [`ReorderBuffer::push`] in any order within the
/// lateness bound; [`ReorderBuffer::release`] hands back everything at or
/// under a watermark in `(timestamp, arrival sequence)` order — ties release
/// in arrival order, so an already-sorted stream passes through unchanged.
///
/// The buffer is generic over the item carried with each timestamp; the
/// engine stores `(SourceId, Arc<BaseTuple>)`, tests store whatever is
/// convenient.
#[derive(Debug, Clone)]
pub struct ReorderBuffer<T> {
    lateness: Duration,
    /// Buffered arrivals keyed by (timestamp, arrival sequence).
    buffered: BTreeMap<(Timestamp, u64), T>,
    /// Arrival sequence counter (tie-break for equal timestamps).
    seq: u64,
    /// Largest timestamp ever pushed.
    max_ts: Timestamp,
    /// The released frontier: everything at or under it has been handed
    /// out, and an arrival under it is too late.
    frontier: Timestamp,
    late_arrivals: u64,
    late_dropped: u64,
    peak: u64,
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer with the given lateness bound.
    pub fn new(lateness: Duration) -> Self {
        ReorderBuffer {
            lateness,
            buffered: BTreeMap::new(),
            seq: 0,
            max_ts: Timestamp::ZERO,
            frontier: Timestamp::ZERO,
            late_arrivals: 0,
            late_dropped: 0,
            peak: 0,
        }
    }

    /// The configured lateness bound.
    pub fn lateness(&self) -> Duration {
        self.lateness
    }

    /// The released frontier (the current watermark).
    pub fn frontier(&self) -> Timestamp {
        self.frontier
    }

    /// The largest timestamp pushed so far.
    pub fn max_ts(&self) -> Timestamp {
        self.max_ts
    }

    /// Number of arrivals currently buffered.
    pub fn len(&self) -> usize {
        self.buffered.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buffered.is_empty()
    }

    /// Arrivals that came in with a timestamp smaller than an earlier one —
    /// reordered if within the bound, dropped if not (a superset of
    /// [`ReorderBuffer::late_dropped`]).
    pub fn late_arrivals(&self) -> u64 {
        self.late_arrivals
    }

    /// Arrivals older than the watermark, dropped and counted.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Largest number of arrivals ever buffered at once.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Accept one arrival. Too-late arrivals (timestamp under the released
    /// frontier) are dropped and counted; everything else is buffered.
    pub fn push(&mut self, ts: Timestamp, item: T) -> PushOutcome {
        if ts < self.frontier {
            // A drop is the extreme case of a late arrival: count it in
            // both, so `late_arrivals ≥ late_dropped` always holds.
            self.late_arrivals += 1;
            self.late_dropped += 1;
            return PushOutcome::LateDrop;
        }
        let late = ts < self.max_ts;
        if late {
            self.late_arrivals += 1;
        }
        self.max_ts = self.max_ts.max(ts);
        self.buffered.insert((ts, self.seq), item);
        self.seq += 1;
        self.peak = self.peak.max(self.buffered.len() as u64);
        if late {
            PushOutcome::AcceptedLate
        } else {
            PushOutcome::Accepted
        }
    }

    /// The watermark the stream has earned: the maximum timestamp seen minus
    /// the lateness bound, never behind the released frontier. Releasing at
    /// this point is safe because any future accepted arrival carries a
    /// timestamp above it.
    pub fn target_watermark(&self) -> Timestamp {
        self.max_ts
            .saturating_sub_duration(self.lateness)
            .max(self.frontier)
    }

    /// Release every buffered arrival with `ts <= watermark`, in
    /// `(timestamp, arrival sequence)` order, and advance the frontier.
    /// A watermark behind the frontier releases nothing (watermarks never
    /// move backwards).
    pub fn release(&mut self, watermark: Timestamp) -> Vec<(Timestamp, T)> {
        if watermark < self.frontier {
            return Vec::new();
        }
        self.frontier = watermark;
        // Split point: everything at or under (watermark, u64::MAX).
        let keep = self.buffered.split_off(&(watermark, u64::MAX));
        let released = std::mem::replace(&mut self.buffered, keep);
        released.into_iter().map(|((ts, _), t)| (ts, t)).collect()
    }

    /// Release everything still buffered (end of stream), advancing the
    /// frontier to the maximum timestamp seen.
    pub fn flush(&mut self) -> Vec<(Timestamp, T)> {
        self.release(self.max_ts.max(self.frontier))
    }

    /// Iterate the buffered arrivals in release order (for checkpointing).
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, &T)> {
        self.buffered.iter().map(|(&(ts, _), t)| (ts, t))
    }

    /// Serialise the buffer's control state (not the items — the caller
    /// serialises those via [`ReorderBuffer::iter`], since the item type is
    /// its own).
    pub fn checkpoint_control(&self) -> Content {
        Content::Map(vec![
            ("lateness".to_string(), self.lateness.to_content()),
            ("max_ts".to_string(), self.max_ts.to_content()),
            ("frontier".to_string(), self.frontier.to_content()),
            ("late_arrivals".to_string(), self.late_arrivals.to_content()),
            ("late_dropped".to_string(), self.late_dropped.to_content()),
            ("peak".to_string(), self.peak.to_content()),
        ])
    }

    /// Rebuild a buffer from [`ReorderBuffer::checkpoint_control`] plus the
    /// buffered items (in release order, as produced by
    /// [`ReorderBuffer::iter`]).
    pub fn restore(
        control: &Content,
        items: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<Self, serde::Error> {
        let map = control
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "ReorderBuffer"))?;
        let mut buffer = ReorderBuffer::new(serde::field(map, "lateness", "ReorderBuffer")?);
        buffer.max_ts = serde::field(map, "max_ts", "ReorderBuffer")?;
        buffer.frontier = serde::field(map, "frontier", "ReorderBuffer")?;
        buffer.late_arrivals = serde::field(map, "late_arrivals", "ReorderBuffer")?;
        buffer.late_dropped = serde::field(map, "late_dropped", "ReorderBuffer")?;
        buffer.peak = serde::field(map, "peak", "ReorderBuffer")?;
        for (ts, item) in items {
            buffer.buffered.insert((ts, buffer.seq), item);
            buffer.seq += 1;
        }
        Ok(buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn in_order_stream_passes_through_unchanged() {
        let mut buf = ReorderBuffer::new(Duration::from_millis(100));
        for i in 0..10u64 {
            assert_eq!(buf.push(ms(i * 50), i), PushOutcome::Accepted);
        }
        let released = buf.release(buf.target_watermark());
        let ids: Vec<u64> = released.iter().map(|&(_, id)| id).collect();
        // max_ts 450, bound 100 → watermark 350 releases ids 0..=7.
        assert_eq!(ids, (0..=7).collect::<Vec<_>>());
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.late_arrivals(), 0);
        let rest: Vec<u64> = buf.flush().iter().map(|&(_, id)| id).collect();
        assert_eq!(rest, vec![8, 9]);
        assert_eq!(buf.frontier(), ms(450));
    }

    #[test]
    fn late_arrival_within_bound_is_reordered() {
        let mut buf = ReorderBuffer::new(Duration::from_millis(100));
        assert!(buf.push(ms(200), "a").is_accepted());
        assert_eq!(buf.push(ms(150), "late"), PushOutcome::AcceptedLate);
        assert_eq!(buf.late_arrivals(), 1);
        let released = buf.flush();
        let order: Vec<&str> = released.iter().map(|&(_, s)| s).collect();
        assert_eq!(order, vec!["late", "a"]);
    }

    #[test]
    fn equal_timestamps_release_in_arrival_order() {
        let mut buf = ReorderBuffer::new(Duration::ZERO);
        let _ = buf.push(ms(10), 1);
        let _ = buf.push(ms(10), 2);
        let _ = buf.push(ms(10), 3);
        let ids: Vec<i32> = buf.flush().iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn too_late_arrival_is_dropped_and_counted() {
        let mut buf = ReorderBuffer::new(Duration::from_millis(50));
        let _ = buf.push(ms(1_000), "a");
        let released = buf.release(buf.target_watermark());
        assert_eq!(released.len(), 0); // watermark 950 < ts 1000
                                       // Push a tuple under the frontier after releasing past it.
        let _ = buf.push(ms(2_000), "b");
        let released = buf.release(buf.target_watermark());
        assert_eq!(released.len(), 1); // watermark 1950 releases "a"
        assert_eq!(buf.push(ms(900), "too-late"), PushOutcome::LateDrop);
        assert_eq!(buf.late_dropped(), 1);
        assert_eq!(buf.len(), 1); // only "b"
    }

    #[test]
    fn watermarks_never_move_backwards() {
        let mut buf = ReorderBuffer::new(Duration::ZERO);
        let _ = buf.push(ms(100), 1);
        assert_eq!(buf.release(ms(100)).len(), 1);
        assert!(buf.release(ms(50)).is_empty());
        assert_eq!(buf.frontier(), ms(100));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut buf = ReorderBuffer::new(Duration::from_millis(1_000));
        for i in 0..5u64 {
            let _ = buf.push(ms(i), i);
        }
        let _ = buf.flush();
        let _ = buf.push(ms(2_000), 9);
        assert_eq!(buf.peak(), 5);
    }

    #[test]
    fn control_round_trips_through_checkpoint() {
        let mut buf = ReorderBuffer::new(Duration::from_millis(100));
        let _ = buf.push(ms(500), 7u64);
        let _ = buf.push(ms(450), 8u64);
        let _ = buf.push(ms(300), 9u64); // released below
        let _ = buf.release(buf.target_watermark());
        let control = buf.checkpoint_control();
        let items: Vec<(Timestamp, u64)> = buf.iter().map(|(ts, &v)| (ts, v)).collect();
        let restored: ReorderBuffer<u64> = ReorderBuffer::restore(&control, items).unwrap();
        assert_eq!(restored.frontier(), buf.frontier());
        assert_eq!(restored.max_ts(), buf.max_ts());
        assert_eq!(restored.late_arrivals(), buf.late_arrivals());
        assert_eq!(restored.peak(), buf.peak());
        assert_eq!(restored.len(), buf.len());
        let a: Vec<(Timestamp, u64)> = restored
            .buffered
            .iter()
            .map(|(&(ts, _), &v)| (ts, v))
            .collect();
        let b: Vec<(Timestamp, u64)> = buf.buffered.iter().map(|(&(ts, _), &v)| (ts, v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn strict_policy_has_no_lateness() {
        assert_eq!(DisorderPolicy::Strict.lateness(), None);
        assert_eq!(
            DisorderPolicy::Bounded(Duration::from_secs(1)).lateness(),
            Some(Duration::from_secs(1))
        );
    }
}
