//! Durability subsystem: disorder tolerance and checkpoint files.
//!
//! The paper's arrival contract (Section II) requires tuples in
//! non-decreasing timestamp order, and until this crate the engine enforced
//! it with a hard error. Real feeds are *almost* ordered: a small fraction
//! of arrivals lags by a bounded amount. This crate adds the two pieces the
//! rest of the workspace composes into end-to-end durability:
//!
//! * **Disorder tolerance** — [`DisorderPolicy`] and [`ReorderBuffer`]: a
//!   watermark-driven reorder stage in front of a backend. Arrivals within
//!   the configured lateness bound are buffered and released in timestamp
//!   order once the watermark (max seen timestamp minus the bound) passes
//!   them; arrivals older than the watermark are dropped and counted, never
//!   silently reordered past a release.
//! * **Checkpoint files** — [`write_checkpoint`] / [`read_checkpoint`]: a
//!   versioned on-disk format (magic header + JSON body over the local
//!   `serde::Content` model) with typed corruption and version-mismatch
//!   errors ([`CheckpointError`]), plus [`CheckpointStats`] so callers can
//!   surface checkpoint size/latency in their metrics.
//!
//! What goes *into* a checkpoint body is owned by the layer being
//! checkpointed (executor, sharded session, serving registry); this crate
//! deliberately knows nothing about operators.

mod checkpoint;
mod reorder;

pub use checkpoint::{
    read_checkpoint, write_checkpoint, CheckpointError, CheckpointStats, FORMAT_VERSION, MAGIC,
};
pub use reorder::{DisorderPolicy, PushOutcome, ReorderBuffer};
