//! Versioned checkpoint files.
//!
//! # File format
//!
//! A checkpoint file is a single header line followed by a JSON body:
//!
//! ```text
//! JITDSMS-CHECKPOINT v1\n
//! { ...body... }
//! ```
//!
//! Invariants the format relies on:
//!
//! * The header line is exactly [`MAGIC`], one space, `v` and the decimal
//!   [`FORMAT_VERSION`], terminated by a single `\n`. Anything else is
//!   [`CheckpointError::Corrupt`]; a well-formed header with an unsupported
//!   version is [`CheckpointError::VersionMismatch`] (never silently
//!   reinterpreted).
//! * The body is one JSON value over the workspace `serde::Content` model.
//!   Its schema is owned by the layer that produced it (executor, sharded
//!   session, serving registry); this module only guarantees that what
//!   [`write_checkpoint`] wrote, [`read_checkpoint`] returns bit-for-bit as
//!   the same `Content` tree.
//! * Writes go through a temporary sibling file (`<path>.tmp`) renamed into
//!   place, so a crash mid-write leaves either the old checkpoint or none —
//!   never a torn file that parses.
//! * Checkpoint *bodies* are deterministic by construction upstream (hash
//!   maps are serialised as key-sorted pair lists), so identical state
//!   produces identical bytes — useful for tests and content-addressed
//!   storage alike.

use serde::Content;
use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// Magic string opening every checkpoint file.
pub const MAGIC: &str = "JITDSMS-CHECKPOINT";

/// Current (and only) supported format version.
pub const FORMAT_VERSION: u32 = 1;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not parse as a checkpoint (bad magic, truncated
    /// header, malformed JSON body).
    Corrupt(String),
    /// The file is a checkpoint, but from an unsupported format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The checkpoint parsed but does not match what the caller is trying
    /// to restore into (wrong backend kind, shard count, operator names…).
    Mismatch(String),
    /// The body parsed as JSON but not as the expected structure.
    Serde(serde::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(detail) => write!(f, "corrupt checkpoint: {detail}"),
            CheckpointError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads v{supported})"
            ),
            CheckpointError::Mismatch(detail) => {
                write!(f, "checkpoint does not match the restore target: {detail}")
            }
            CheckpointError::Serde(e) => write!(f, "checkpoint body malformed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde::Error> for CheckpointError {
    fn from(e: serde::Error) -> Self {
        CheckpointError::Serde(e)
    }
}

/// Size and latency of one checkpoint write, for metrics surfacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Bytes written (header + body).
    pub bytes: u64,
    /// Wall-clock milliseconds spent serialising and writing.
    pub millis: u64,
}

/// Serialise `body` and write it to `path` atomically (via a `.tmp`
/// sibling renamed into place).
pub fn write_checkpoint(
    path: impl AsRef<Path>,
    body: &Content,
) -> Result<CheckpointStats, CheckpointError> {
    let path = path.as_ref();
    let started = Instant::now();
    let mut payload = format!("{MAGIC} v{FORMAT_VERSION}\n");
    payload.push_str(&serde_json::to_string(body)?);
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(payload.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(CheckpointStats {
        bytes: payload.len() as u64,
        millis: started.elapsed().as_millis() as u64,
    })
}

/// Read a checkpoint file back, validating the header, and return the body.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Content, CheckpointError> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let Some((header, body)) = text.split_once('\n') else {
        return Err(CheckpointError::Corrupt(
            "missing header line (file truncated?)".to_string(),
        ));
    };
    let Some(version_str) = header
        .strip_prefix(MAGIC)
        .and_then(|rest| rest.strip_prefix(" v"))
    else {
        return Err(CheckpointError::Corrupt(format!(
            "bad magic: expected `{MAGIC} v<N>`, found `{}`",
            &header[..header.len().min(40)]
        )));
    };
    let found: u32 = version_str
        .parse()
        .map_err(|_| CheckpointError::Corrupt(format!("unparseable version `{version_str}`")))?;
    if found != FORMAT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found,
            supported: FORMAT_VERSION,
        });
    }
    serde_json::from_str(body)
        .map_err(|e| CheckpointError::Corrupt(format!("body is not valid JSON: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("jit-durable-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_body() -> Content {
        Content::Map(vec![
            ("kind".to_string(), Content::Str("test".to_string())),
            (
                "values".to_string(),
                Content::Seq(vec![Content::U64(1), Content::U64(2)]),
            ),
        ])
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = tmp_path("round_trip.ckpt");
        let body = sample_body();
        let stats = write_checkpoint(&path, &body).unwrap();
        assert!(stats.bytes > 0);
        let read = read_checkpoint(&path).unwrap();
        assert_eq!(
            serde_json::to_string(&read).unwrap(),
            serde_json::to_string(&body).unwrap()
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_checkpoint(tmp_path("does-not-exist.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let path = tmp_path("bad_magic.ckpt");
        std::fs::write(&path, "NOT-A-CHECKPOINT v1\n{}").unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn truncated_header_is_corrupt() {
        let path = tmp_path("truncated.ckpt");
        std::fs::write(&path, "JITDSMS-CHECK").unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn future_version_is_version_mismatch() {
        let path = tmp_path("future.ckpt");
        std::fs::write(&path, format!("{MAGIC} v999\n{{}}")).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        match err {
            CheckpointError::VersionMismatch { found, supported } => {
                assert_eq!(found, 999);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other}"),
        }
    }

    #[test]
    fn corrupted_body_is_corrupt() {
        let path = tmp_path("bad_body.ckpt");
        let body = sample_body();
        write_checkpoint(&path, &body).unwrap();
        // Flip bytes in the body region.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 3);
        std::fs::write(&path, text).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn identical_bodies_write_identical_bytes() {
        let a = tmp_path("det_a.ckpt");
        let b = tmp_path("det_b.ckpt");
        write_checkpoint(&a, &sample_body()).unwrap();
        write_checkpoint(&b, &sample_body()).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let path = tmp_path("clean.ckpt");
        write_checkpoint(&path, &sample_body()).unwrap();
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn errors_display_informatively() {
        let io = CheckpointError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("I/O"));
        let mismatch = CheckpointError::Mismatch("expected 4 shards, found 2".to_string());
        assert!(mismatch.to_string().contains("4 shards"));
        let serde_err = CheckpointError::from(serde::Error::expected("object", "Engine"));
        assert!(serde_err.to_string().contains("malformed"));
    }
}
