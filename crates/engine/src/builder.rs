//! Building engines: validated configuration in, runnable [`Engine`] out.

use crate::backend::{Backend, EngineOutcome, ShardedBackend, SingleThreadBackend};
use crate::error::EngineError;
use crate::partition::check_key_partitionable;
use crate::query::{QuerySpec, ResolvedQuery};
use crate::session::Session;
use jit_core::policy::ExecutionMode;
use jit_durable::{read_checkpoint, CheckpointError, DisorderPolicy, ReorderBuffer};
use jit_exec::executor::{Executor, ExecutorConfig};
use jit_exec::state::StateIndexMode;
use jit_plan::builder::{build_tree_plan_with, PlanOptions};
use jit_plan::shapes::PlanShape;
use jit_runtime::{RuntimeConfig, ShardPartitioner, ShardedRuntime};
use jit_stream::{Trace, WorkloadSpec};
use jit_types::{BaseTuple, BatchPolicy, PredicateSet, SourceId, Timestamp, Window};
use serde::Content;
use std::path::Path;
use std::sync::Arc;

/// Typed, defaulted construction of an [`Engine`].
///
/// Replaces the positional-argument sprawl of the historical entry points
/// (`QueryRuntime::run`, `run_parallel`, `run_parallel_trace`): the query
/// comes in as CQL *or* as a plan shape + predicates, the execution mode and
/// executor knobs default sensibly, and a single [`EngineBuilder::sharded`]
/// call switches the same program from the single-threaded executor to the
/// hash-partitioned multi-core runtime.
///
/// Every input is validated at [`EngineBuilder::build`] time with a typed
/// [`EngineError`] — including the key-partitionability of the workload when
/// the sharded backend is requested, which previously could silently lose
/// results.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    query: Option<QuerySpec>,
    mode: ExecutionMode,
    exec_config: ExecutorConfig,
    runtime: Option<RuntimeConfig>,
    key_column: usize,
    assume_partitionable: bool,
    state_index: StateIndexMode,
    disorder: DisorderPolicy,
    batch: BatchPolicy,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            query: None,
            mode: ExecutionMode::Ref,
            exec_config: ExecutorConfig::default(),
            runtime: None,
            key_column: 0,
            assume_partitionable: false,
            state_index: StateIndexMode::default(),
            disorder: DisorderPolicy::Strict,
            batch: BatchPolicy::default(),
        }
    }
}

impl EngineBuilder {
    /// A fresh builder: REF mode, default executor configuration,
    /// single-threaded backend, no query yet.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Define the query with a CQL-subset string (parsed and resolved at
    /// [`EngineBuilder::build`]; the plan is the left-deep tree over the
    /// declared sources).
    pub fn query_cql(mut self, text: impl Into<String>) -> Self {
        self.query = Some(QuerySpec::Cql(text.into()));
        self
    }

    /// Define the query explicitly: a Table-II plan shape, the equi-join
    /// predicates, and the sliding window.
    pub fn query_shape(
        mut self,
        shape: PlanShape,
        predicates: PredicateSet,
        window: Window,
    ) -> Self {
        self.query = Some(QuerySpec::Shape {
            shape,
            predicates,
            window,
        });
        self
    }

    /// Define the query from a synthetic [`WorkloadSpec`] and a plan shape —
    /// the form every experiment uses. The partitionability assumption is
    /// taken *from the spec*: shared-key workloads assert their data-level
    /// partitionability (see [`EngineBuilder::assume_key_partitionable`]),
    /// and a non-shared-key spec clears any earlier assumption so a reused
    /// builder cannot smuggle the flag onto a workload it is not true for.
    /// Call `assume_key_partitionable()` *after* `workload()` to override.
    pub fn workload(mut self, spec: &WorkloadSpec, shape: &PlanShape) -> Self {
        self.assume_partitionable = spec.shared_key;
        self.query_shape(*shape, spec.predicates(), spec.window())
    }

    /// Set the execution mode (REF / DOE / JIT with a policy). Default REF.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the per-executor options (result collection, temporal-order
    /// checking).
    pub fn executor_config(mut self, config: ExecutorConfig) -> Self {
        self.exec_config = config;
        self
    }

    /// Use the sharded multi-core backend with the given runtime
    /// configuration. The workload must be key-partitionable (statically
    /// provable from the predicates, or asserted via
    /// [`EngineBuilder::assume_key_partitionable`]) whenever more than one
    /// shard is configured.
    pub fn sharded(mut self, config: RuntimeConfig) -> Self {
        self.runtime = Some(config);
        self
    }

    /// Use the single-threaded cascade executor (the default).
    pub fn single_threaded(mut self) -> Self {
        self.runtime = None;
        self
    }

    /// Hash this column (of every source) for shard assignment. Default 0.
    pub fn partition_key_column(mut self, column: usize) -> Self {
        self.key_column = column;
        self
    }

    /// Select how every operator state answers probes:
    /// [`StateIndexMode::Hashed`] (the default — hash-partitioned on the
    /// equi-join key, with a scan fallback when no hashable key spans two
    /// inputs) or [`StateIndexMode::Scan`] (the paper's nested-loop
    /// baseline, used by the figure harness and the probe-scaling bench).
    /// Both modes produce byte-identical result sets; only the probe cost
    /// differs.
    pub fn state_index(mut self, mode: StateIndexMode) -> Self {
        self.state_index = mode;
        self
    }

    /// Set how sessions treat out-of-order arrivals. The default,
    /// [`DisorderPolicy::Strict`], keeps the paper's contract: a timestamp
    /// regression is a typed [`EngineError::OutOfOrder`].
    /// [`DisorderPolicy::Bounded`] puts a watermark-driven reorder buffer
    /// in front of the backend: arrivals within the lateness bound are
    /// buffered and released in timestamp order; older ones are dropped and
    /// counted, never errors (see `jit_durable` for the full protocol).
    pub fn disorder(mut self, policy: DisorderPolicy) -> Self {
        self.disorder = policy;
        self
    }

    /// Set the columnar batching policy of the data plane. The default
    /// ([`BatchPolicy::default`], one row per flush) is tuple-equivalent:
    /// the engine behaves exactly as before the batch layer existed.
    ///
    /// With a batching policy (`max_rows > 1`):
    ///
    /// * on the **single-threaded** backend, sessions accumulate accepted
    ///   arrivals into columnar [`jit_types::Block`]s and ship each block
    ///   through the executor's vectorized ingest path;
    /// * on the **sharded** backend, the runtime's channel batch size is
    ///   raised to `max_rows` (if smaller) and shard workers re-assemble
    ///   arrivals into columnar blocks on their own threads
    ///   ([`RuntimeConfig`]'s `vectorize` knob).
    ///
    /// Results, their order, and the workload counters (probes, predicate
    /// evaluations, purges, insertions) are identical either way — batching
    /// only amortises per-tuple overhead. Arrival-to-result latency grows by
    /// at most `max_rows` arrivals or `max_delay` of event time.
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Assert that the workload is key-partitionable as a *data* invariant
    /// even though the predicates do not prove it — the generator's
    /// shared-key mode replicates one key value into every column, so the
    /// clique predicates all reduce to key equality at runtime. With this
    /// set, [`EngineBuilder::build`] skips the static partitionability
    /// check.
    pub fn assume_key_partitionable(mut self) -> Self {
        self.assume_partitionable = true;
        self
    }

    /// Validate everything and produce a reusable [`Engine`].
    ///
    /// Typed failures: missing/malformed/unsupported queries, illegal
    /// runtime knobs ([`jit_runtime::ConfigError`]), plan-construction
    /// errors, and — for the sharded backend with more than one shard — a
    /// workload whose join predicates do not all reduce to equality on the
    /// partition key ([`EngineError::NotPartitionable`]).
    pub fn build(self) -> Result<Engine, EngineError> {
        let spec = self.query.ok_or(EngineError::MissingQuery)?;
        let query = spec.resolve()?;
        if let Some(config) = &self.runtime {
            config.validate()?;
            if config.shards > 1 && !self.assume_partitionable {
                check_key_partitionable(
                    &query.predicates,
                    query.shape.num_sources,
                    self.key_column,
                )
                .map_err(|detail| EngineError::NotPartitionable { detail })?;
            }
        }
        // Dry-build one plan instance so plan errors also surface now, not
        // at the first session.
        let options = PlanOptions {
            index_mode: self.state_index,
            filters: query.filters.clone(),
        };
        build_tree_plan_with(
            &query.shape,
            &query.predicates,
            query.window,
            self.mode,
            &options,
        )?;
        Ok(Engine {
            query,
            mode: self.mode,
            exec_config: self.exec_config,
            runtime: self.runtime,
            key_column: self.key_column,
            state_index: self.state_index,
            disorder: self.disorder,
            batch: self.batch,
        })
    }

    /// Run the same trace once per mode (on otherwise identical engines)
    /// and return the outcomes in mode order. At least one mode is required
    /// ([`EngineError::EmptyModes`]).
    pub fn compare(
        &self,
        trace: &Trace,
        modes: &[ExecutionMode],
    ) -> Result<Vec<EngineOutcome>, EngineError> {
        if modes.is_empty() {
            return Err(EngineError::EmptyModes);
        }
        modes
            .iter()
            .map(|mode| self.clone().mode(*mode).build()?.run_trace(trace))
            .collect()
    }
}

/// A validated continuous-query engine.
///
/// The engine itself is passive configuration; [`Engine::session`] opens a
/// live push-based [`Session`] on the configured backend (any number of
/// sessions may be opened, sequentially or concurrently — each gets fresh
/// operator state).
#[derive(Debug, Clone)]
pub struct Engine {
    query: ResolvedQuery,
    mode: ExecutionMode,
    exec_config: ExecutorConfig,
    runtime: Option<RuntimeConfig>,
    key_column: usize,
    state_index: StateIndexMode,
    disorder: DisorderPolicy,
    batch: BatchPolicy,
}

impl Engine {
    /// Start building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The resolved query (shape, predicates, window).
    pub fn query(&self) -> &ResolvedQuery {
        &self.query
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Does this engine run on the sharded multi-core backend?
    pub fn is_sharded(&self) -> bool {
        self.runtime.is_some()
    }

    /// The state index mode every session's operator states run under.
    pub fn state_index(&self) -> StateIndexMode {
        self.state_index
    }

    /// The disorder policy every session runs under.
    pub fn disorder(&self) -> DisorderPolicy {
        self.disorder
    }

    /// The columnar batching policy every session runs under.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.batch
    }

    /// The batching policy the single-threaded session batcher should use
    /// (`None` when batching is off or the sharded runtime batches at the
    /// channel/worker level instead).
    fn session_batch(&self) -> Option<BatchPolicy> {
        (self.runtime.is_none() && self.batch.is_batched()).then_some(self.batch)
    }

    /// Open a live session: instantiate the plan(s), spawn shard workers if
    /// sharded, and return the push-based handle.
    pub fn session(&self) -> Result<Session, EngineError> {
        let backend = self.backend(None)?;
        let buffer = self.disorder.lateness().map(ReorderBuffer::new);
        Ok(Session::new(backend, buffer, self.session_batch()))
    }

    /// Build the configured backend; with `restore` set, rebuild it from a
    /// checkpointed backend blob instead of starting fresh. The watermark
    /// clock is enabled exactly when the disorder policy is bounded — under
    /// it the session drives operator time through explicit watermarks
    /// instead of per-ingest timestamps.
    fn backend(&self, restore: Option<&Content>) -> Result<Box<dyn Backend>, EngineError> {
        let options = PlanOptions {
            index_mode: self.state_index,
            filters: self.query.filters.clone(),
        };
        let watermark_clock = matches!(self.disorder, DisorderPolicy::Bounded(_));
        let backend: Box<dyn Backend> = match &self.runtime {
            None => {
                let plan = build_tree_plan_with(
                    &self.query.shape,
                    &self.query.predicates,
                    self.query.window,
                    self.mode,
                    &options,
                )?;
                let mut executor = Executor::new(plan, self.exec_config.clone());
                executor.set_watermark_clock(watermark_clock);
                if let Some(state) = restore {
                    executor
                        .restore_checkpoint(state)
                        .map_err(|e| EngineError::Checkpoint(CheckpointError::Serde(e)))?;
                }
                Box::new(SingleThreadBackend::new(executor, self.mode.label()))
            }
            Some(config) => {
                // A batching policy turns on the columnar block path in the
                // shard workers and makes the channel chunks at least one
                // policy batch wide.
                let config = if self.batch.is_batched() {
                    config
                        .clone()
                        .with_vectorize(true)
                        .with_batch_size(config.batch_size.max(self.batch.max_rows))
                } else {
                    config.clone()
                };
                let runtime = ShardedRuntime::new(config.clone()).with_partitioner(
                    ShardPartitioner::new(config.shards).with_key_column(self.key_column),
                );
                let factory = |_shard: usize| {
                    build_tree_plan_with(
                        &self.query.shape,
                        &self.query.predicates,
                        self.query.window,
                        self.mode,
                        &options,
                    )
                };
                let session = match restore {
                    None => {
                        runtime.start_opts(self.exec_config.clone(), watermark_clock, factory)?
                    }
                    Some(state) => runtime.start_restored(
                        self.exec_config.clone(),
                        watermark_clock,
                        state,
                        factory,
                    )?,
                };
                Box::new(ShardedBackend::new(session, self.mode.label()))
            }
        };
        Ok(backend)
    }

    /// Rebuild a live [`Session`] from a checkpoint body produced by
    /// [`Session::checkpoint`] (or read back with
    /// `jit_durable::read_checkpoint`).
    ///
    /// The engine must be configured identically to the one that produced
    /// the checkpoint (same query, mode, backend and disorder policy) —
    /// operator state is replayed into freshly built plans, and any
    /// structural mismatch is a typed
    /// [`EngineError::Checkpoint`]. After the restore, resume pushing the
    /// input stream from arrival index [`Session::pushed`]; the results
    /// from then on are exactly those an uninterrupted run would have
    /// produced.
    pub fn restore(&self, checkpoint: &Content) -> Result<Session, EngineError> {
        const TY: &str = "Session checkpoint";
        let corrupt = |e: serde::Error| EngineError::Checkpoint(CheckpointError::Serde(e));
        let map = checkpoint.as_map().ok_or_else(|| {
            EngineError::Checkpoint(CheckpointError::Corrupt(
                "checkpoint body is not an object".to_string(),
            ))
        })?;
        let pushed: u64 = serde::field(map, "pushed", TY).map_err(corrupt)?;
        let last_push_ts: Timestamp = serde::field(map, "last_push_ts", TY).map_err(corrupt)?;
        let ckpt_bytes: u64 = serde::field(map, "ckpt_bytes", TY).map_err(corrupt)?;
        let ckpt_millis: u64 = serde::field(map, "ckpt_millis", TY).map_err(corrupt)?;
        let disorder_state = serde::field::<Content>(map, "disorder", TY).map_err(corrupt)?;
        let buffer = match (&disorder_state, self.disorder) {
            (Content::Null, DisorderPolicy::Strict) => None,
            (Content::Null, DisorderPolicy::Bounded(_)) => {
                return Err(EngineError::Checkpoint(CheckpointError::Mismatch(
                    "checkpoint was taken under the strict policy, engine is bounded".to_string(),
                )))
            }
            (_, DisorderPolicy::Strict) => {
                return Err(EngineError::Checkpoint(CheckpointError::Mismatch(
                    "checkpoint was taken under a bounded policy, engine is strict".to_string(),
                )))
            }
            (state, DisorderPolicy::Bounded(_)) => {
                let dmap = state.as_map().ok_or_else(|| {
                    EngineError::Checkpoint(CheckpointError::Corrupt(
                        "disorder state is not an object".to_string(),
                    ))
                })?;
                let control = serde::field::<Content>(dmap, "control", TY).map_err(corrupt)?;
                let items: Vec<(Timestamp, (SourceId, Arc<BaseTuple>))> =
                    serde::field(dmap, "items", TY).map_err(corrupt)?;
                Some(ReorderBuffer::restore(&control, items).map_err(corrupt)?)
            }
        };
        let backend_state = serde::field::<Content>(map, "backend", TY).map_err(corrupt)?;
        let backend = self.backend(Some(&backend_state))?;
        Ok(Session::restored(
            backend,
            pushed,
            last_push_ts,
            buffer,
            self.session_batch(),
            ckpt_bytes,
            ckpt_millis,
        ))
    }

    /// [`Engine::restore`] from a checkpoint *file* written by
    /// [`Session::checkpoint_to`] — validates the magic header and format
    /// version before touching the body.
    pub fn restore_file(&self, path: impl AsRef<Path>) -> Result<Session, EngineError> {
        let body = read_checkpoint(path)?;
        self.restore(&body)
    }

    /// One-shot convenience: open a session, replay `trace`, finish.
    pub fn run_trace(&self, trace: &Trace) -> Result<EngineOutcome, EngineError> {
        let mut session = self.session()?;
        session.push_trace(trace)?;
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{ColumnRef, EquiPredicate, SourceId};

    fn keyed_predicates(n: usize) -> PredicateSet {
        PredicateSet::from_predicates(
            (1..n)
                .map(|s| {
                    EquiPredicate::new(
                        ColumnRef::new(SourceId(0), 0),
                        ColumnRef::new(SourceId(s as u16), 0),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn missing_query_is_a_typed_error() {
        assert!(matches!(
            Engine::builder().build(),
            Err(EngineError::MissingQuery)
        ));
    }

    #[test]
    fn illegal_runtime_knobs_are_typed_errors() {
        let base = Engine::builder().query_shape(
            PlanShape::left_deep(2),
            keyed_predicates(2),
            Window::minutes(1.0),
        );
        let zero_shards = base
            .clone()
            .sharded(RuntimeConfig {
                shards: 0,
                batch_size: 8,
                channel_capacity: 8,
                vectorize: false,
            })
            .build();
        match zero_shards {
            Err(EngineError::Config(e)) => assert_eq!(e.field, "shards"),
            other => panic!("expected Config error, got {other:?}"),
        }
        let zero_batch = base
            .sharded(RuntimeConfig {
                shards: 2,
                batch_size: 0,
                channel_capacity: 8,
                vectorize: false,
            })
            .build();
        assert!(matches!(zero_batch, Err(EngineError::Config(_))));
    }

    #[test]
    fn sharded_rejects_non_partitionable_predicates() {
        let err = Engine::builder()
            .query_shape(
                PlanShape::bushy(3),
                PredicateSet::clique(3),
                Window::minutes(1.0),
            )
            .sharded(RuntimeConfig::with_shards(4))
            .build();
        assert!(matches!(err, Err(EngineError::NotPartitionable { .. })));
    }

    #[test]
    fn statically_keyed_predicates_shard_without_assumption() {
        let engine = Engine::builder()
            .query_shape(
                PlanShape::left_deep(3),
                keyed_predicates(3),
                Window::minutes(1.0),
            )
            .sharded(RuntimeConfig::with_shards(4))
            .build();
        assert!(engine.is_ok());
    }

    #[test]
    fn one_shard_needs_no_partitionability() {
        let engine = Engine::builder()
            .query_shape(
                PlanShape::bushy(3),
                PredicateSet::clique(3),
                Window::minutes(1.0),
            )
            .sharded(RuntimeConfig::with_shards(1))
            .build();
        assert!(engine.unwrap().is_sharded());
    }

    #[test]
    fn workload_resets_a_stale_partitionability_assumption() {
        use jit_stream::WorkloadSpec;
        let shared = WorkloadSpec::bushy_default()
            .with_sources(3)
            .with_shared_key();
        let clique = WorkloadSpec::bushy_default().with_sources(3);
        let shape = PlanShape::bushy(3);
        // A builder that earlier saw a shared-key workload must not carry
        // the assumption onto a non-shared-key one.
        let reused = Engine::builder()
            .workload(&shared, &shape)
            .workload(&clique, &shape)
            .sharded(RuntimeConfig::with_shards(4))
            .build();
        assert!(matches!(reused, Err(EngineError::NotPartitionable { .. })));
        // An explicit assertion after workload() still wins.
        assert!(Engine::builder()
            .workload(&clique, &shape)
            .assume_key_partitionable()
            .sharded(RuntimeConfig::with_shards(4))
            .build()
            .is_ok());
    }

    #[test]
    fn batch_policy_is_carried_and_observably_equivalent() {
        use jit_stream::{WorkloadGenerator, WorkloadSpec};
        let spec = WorkloadSpec::bushy_default()
            .with_sources(2)
            .with_duration(jit_types::Duration::from_secs(20));
        let trace = WorkloadGenerator::generate(&spec);
        let shape = PlanShape::left_deep(2);
        let builder = Engine::builder().workload(&spec, &shape);
        let tuple_mode = builder.clone().build().unwrap();
        assert!(!tuple_mode.batch_policy().is_batched());
        let batched = builder.batch_policy(BatchPolicy::rows(64)).build().unwrap();
        assert!(batched.batch_policy().is_batched());
        let a = tuple_mode.run_trace(&trace).unwrap();
        let b = batched.run_trace(&trace).unwrap();
        assert_eq!(a.results_count, b.results_count);
        assert_eq!(a.results.len(), b.results.len());
        assert!(a
            .results
            .iter()
            .zip(&b.results)
            .all(|(x, y)| x.ts() == y.ts()));
        assert_eq!(b.order_violations, 0);
        assert_eq!(a.snapshot.stats.probe_pairs, b.snapshot.stats.probe_pairs);
    }

    #[test]
    fn empty_modes_comparison_is_rejected() {
        let builder = Engine::builder().query_shape(
            PlanShape::left_deep(2),
            keyed_predicates(2),
            Window::minutes(1.0),
        );
        assert!(matches!(
            builder.compare(&Trace::empty(), &[]),
            Err(EngineError::EmptyModes)
        ));
    }
}
