//! # jit-engine
//!
//! The unified, push-based entry point of the workspace: one
//! [`EngineBuilder`] → [`Engine`] → [`Session`] pipeline serving both the
//! paper's single-threaded cascade executor and the sharded multi-core
//! runtime behind a single trait-level seam ([`Backend`]).
//!
//! The JIT mechanism is inherently *online* — MNS detection, feedback and
//! blacklists react tuple by tuple — so the API is too:
//!
//! ```
//! use jit_core::policy::{ExecutionMode, JitPolicy};
//! use jit_engine::Engine;
//! use jit_stream::{WorkloadGenerator, WorkloadSpec};
//! use jit_plan::shapes::PlanShape;
//!
//! let spec = WorkloadSpec::bushy_default()
//!     .with_sources(3)
//!     .with_duration(jit_types::Duration::from_secs(60));
//! let engine = Engine::builder()
//!     .workload(&spec, &PlanShape::left_deep(3))
//!     .mode(ExecutionMode::Jit(JitPolicy::full()))
//!     .build()
//!     .unwrap();
//! let mut session = engine.session().unwrap();
//! for event in WorkloadGenerator::generate(&spec).iter() {
//!     session.push_event(event.clone()).unwrap();
//! }
//! let outcome = session.finish().unwrap();
//! assert_eq!(outcome.mode_label, "JIT");
//! ```
//!
//! Switching the same program onto every core is one builder call —
//! `.sharded(RuntimeConfig::with_shards(8))` — and the builder *rejects*
//! workloads the hash partitioner cannot shard losslessly with a typed
//! [`EngineError::NotPartitionable`] instead of silently losing results
//! (see [`partition`]).
//!
//! * [`builder`] — [`EngineBuilder`] (typed, defaulted configuration) and
//!   the reusable [`Engine`].
//! * [`session`] — the live push/poll/finish [`Session`].
//! * [`backend`] — the [`Backend`] seam and its two implementations.
//! * [`partition`] — static key-partitionability analysis.
//! * [`query`] — CQL-or-shape query specification and validation.
//! * [`error`] — the typed [`EngineError`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod builder;
pub mod error;
pub mod partition;
pub mod query;
pub mod session;

pub use backend::{Backend, EngineOutcome, ShardedBackend, SingleThreadBackend};
pub use builder::{Engine, EngineBuilder};
pub use error::EngineError;
pub use jit_durable::{CheckpointError, CheckpointStats, DisorderPolicy, PushOutcome};
pub use partition::check_key_partitionable;
pub use query::{QuerySpec, ResolvedQuery};
pub use session::Session;
