//! The engine's typed error.

use jit_durable::CheckpointError;
use jit_exec::plan::PlanError;
use jit_plan::cql::CqlError;
use jit_runtime::{ConfigError, RuntimeError};
use jit_types::Timestamp;
use std::fmt;

/// Why building or running an [`crate::Engine`] failed.
///
/// Every failure mode a caller can provoke is typed: misconfigured knobs,
/// malformed or unsupported queries, non-partitionable workloads handed to
/// the sharded backend, and out-of-order pushes all surface here instead of
/// panicking (or worse, silently losing results) downstream.
#[derive(Debug)]
pub enum EngineError {
    /// The builder was finalised without a query
    /// ([`crate::EngineBuilder::query_cql`] or
    /// [`crate::EngineBuilder::query_shape`]).
    MissingQuery,
    /// The query is structurally invalid for plan construction (too few
    /// sources, a bushy shape outside Table II's 3–8 range, a zero-length
    /// window, …).
    InvalidQuery(String),
    /// The query parses but uses a feature the engine cannot execute yet.
    Unsupported(String),
    /// A runtime configuration knob is out of range.
    Config(ConfigError),
    /// A mode list was empty where at least one execution mode is required.
    EmptyModes,
    /// The CQL text failed to parse or resolve.
    Cql(CqlError),
    /// Plan construction failed.
    Plan(PlanError),
    /// The parallel runtime failed (a shard panicked, …).
    Runtime(RuntimeError),
    /// The sharded backend was requested for a workload whose join
    /// predicates do not all reduce to equality on the partition key, so
    /// hash-partitioning would silently lose results.
    NotPartitionable {
        /// Which source/column broke the key-equivalence requirement.
        detail: String,
    },
    /// A tuple was pushed with a timestamp smaller than an earlier push;
    /// sessions require non-decreasing application time (Section II).
    /// Raised only under [`jit_durable::DisorderPolicy::Strict`] — the
    /// bounded policy turns bounded lateness into reordering and unbounded
    /// lateness into a counted drop, never an error.
    OutOfOrder {
        /// Timestamp of the rejected tuple.
        pushed: Timestamp,
        /// Largest timestamp pushed so far.
        last: Timestamp,
    },
    /// Writing, reading or applying a durability checkpoint failed (I/O,
    /// corruption, format-version or configuration mismatch).
    Checkpoint(CheckpointError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MissingQuery => {
                write!(f, "no query configured: call query_cql() or query_shape()")
            }
            EngineError::InvalidQuery(detail) => write!(f, "invalid query: {detail}"),
            EngineError::Unsupported(detail) => write!(f, "unsupported query: {detail}"),
            EngineError::Config(e) => write!(f, "{e}"),
            EngineError::EmptyModes => {
                write!(
                    f,
                    "at least one execution mode is required (modes was empty)"
                )
            }
            EngineError::Cql(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "plan construction failed: {e}"),
            EngineError::Runtime(e) => write!(f, "{e}"),
            EngineError::NotPartitionable { detail } => write!(
                f,
                "workload is not key-partitionable, sharded execution would lose results: {detail}"
            ),
            EngineError::OutOfOrder { pushed, last } => write!(
                f,
                "out-of-order push: timestamp {pushed} after {last}; sessions require \
                 non-decreasing application time"
            ),
            EngineError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Cql(e) => Some(e),
            EngineError::Plan(e) => Some(e),
            EngineError::Runtime(e) => Some(e),
            EngineError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<CqlError> for EngineError {
    fn from(e: CqlError) -> Self {
        EngineError::Cql(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<RuntimeError> for EngineError {
    fn from(e: RuntimeError) -> Self {
        EngineError::Runtime(e)
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(EngineError::MissingQuery.to_string().contains("query_cql"));
        assert!(EngineError::NotPartitionable {
            detail: "source S2".into()
        }
        .to_string()
        .contains("S2"));
        let oo = EngineError::OutOfOrder {
            pushed: Timestamp::from_millis(5),
            last: Timestamp::from_millis(9),
        };
        assert!(oo.to_string().contains("out-of-order"));
    }
}
