//! Query specification and resolution.

use crate::error::EngineError;
use jit_plan::cql::parse_cql;
use jit_plan::shapes::{PlanShape, TreeShape};
use jit_types::{Duration, FilterPredicate, PredicateSet, Window};

/// How the caller described the continuous query.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// A CQL-subset string (see [`jit_plan::cql`]); the plan defaults to the
    /// left-deep tree over the declared sources.
    Cql(String),
    /// An explicit plan shape with its predicates and window — the form the
    /// synthetic workloads and the experiment harness use.
    Shape {
        /// Join-tree shape (Table II).
        shape: PlanShape,
        /// Equi-join predicates over the sources.
        predicates: PredicateSet,
        /// The sliding window applied at every operator.
        window: Window,
    },
}

/// A query validated and reduced to what the plan builder needs.
#[derive(Debug, Clone)]
pub struct ResolvedQuery {
    /// Join-tree shape.
    pub shape: PlanShape,
    /// Equi-join predicates.
    pub predicates: PredicateSet,
    /// Sliding window.
    pub window: Window,
    /// Constant filters (`A.x > 200`); each filtered source is routed
    /// through a selection operator before its join port.
    pub filters: Vec<FilterPredicate>,
}

impl QuerySpec {
    /// Validate the specification and resolve it to a [`ResolvedQuery`],
    /// reporting structural problems as typed errors instead of letting the
    /// plan layer panic on them.
    pub fn resolve(&self) -> Result<ResolvedQuery, EngineError> {
        match self {
            QuerySpec::Cql(text) => {
                let query = parse_cql(text)?;
                let n = query.sources.len();
                if n < 2 {
                    return Err(EngineError::InvalidQuery(format!(
                        "a join plan needs at least two sources (FROM lists {n})"
                    )));
                }
                let window = query.window();
                if window.length == Duration::ZERO {
                    return Err(EngineError::InvalidQuery(
                        "no RANGE window declared: an unbounded window never expires \
                         and the engine cannot bound its state"
                            .into(),
                    ));
                }
                let predicates = query.predicates()?;
                let filters = query.filter_predicates()?;
                Ok(ResolvedQuery {
                    shape: PlanShape::left_deep(n),
                    predicates,
                    window,
                    filters,
                })
            }
            QuerySpec::Shape {
                shape,
                predicates,
                window,
            } => {
                validate_shape(shape)?;
                Ok(ResolvedQuery {
                    shape: *shape,
                    predicates: predicates.clone(),
                    window: *window,
                    filters: Vec::new(),
                })
            }
        }
    }
}

/// Reject shapes the plan builder would panic on (its `nodes()` asserts).
fn validate_shape(shape: &PlanShape) -> Result<(), EngineError> {
    match shape.shape {
        TreeShape::LeftDeep if shape.num_sources < 2 => Err(EngineError::InvalidQuery(format!(
            "a left-deep plan needs at least two sources (got {})",
            shape.num_sources
        ))),
        TreeShape::Bushy if !(3..=8).contains(&shape.num_sources) => {
            Err(EngineError::InvalidQuery(format!(
                "Table II defines bushy plans for 3 to 8 sources (got {})",
                shape.num_sources
            )))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cql_resolves_to_left_deep_plan() {
        let q = QuerySpec::Cql(
            "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] WHERE A.x = B.x".into(),
        );
        let resolved = q.resolve().unwrap();
        assert_eq!(resolved.shape, PlanShape::left_deep(2));
        assert_eq!(resolved.predicates.len(), 1);
        assert_eq!(resolved.window.length, Duration::from_mins(5));
        assert!(resolved.filters.is_empty());
    }

    #[test]
    fn cql_filters_resolve_to_filter_predicates() {
        let q = QuerySpec::Cql(
            "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] \
             WHERE A.x = B.x AND A.x > 7"
                .into(),
        );
        let resolved = q.resolve().unwrap();
        assert_eq!(resolved.filters.len(), 1);
        assert_eq!(resolved.predicates.len(), 1);
    }

    #[test]
    fn cql_structural_errors_are_typed() {
        let parse = QuerySpec::Cql("nonsense".into()).resolve();
        assert!(matches!(parse, Err(EngineError::Cql(_))));
        let single = QuerySpec::Cql("SELECT * FROM A [RANGE 1 minutes]".into()).resolve();
        assert!(matches!(single, Err(EngineError::InvalidQuery(_))));
        let windowless = QuerySpec::Cql("SELECT * FROM A, B WHERE A.x = B.x".into()).resolve();
        assert!(matches!(windowless, Err(EngineError::InvalidQuery(_))));
        let unresolved = QuerySpec::Cql(
            "SELECT * FROM A [RANGE 1 minutes], B [RANGE 1 minutes] WHERE A.x = Z.x".into(),
        )
        .resolve();
        assert!(matches!(unresolved, Err(EngineError::Cql(_))));
    }

    #[test]
    fn shape_bounds_are_enforced() {
        let too_small = QuerySpec::Shape {
            shape: PlanShape::left_deep(1),
            predicates: PredicateSet::new(),
            window: Window::minutes(1.0),
        };
        assert!(matches!(
            too_small.resolve(),
            Err(EngineError::InvalidQuery(_))
        ));
        let too_bushy = QuerySpec::Shape {
            shape: PlanShape::bushy(9),
            predicates: PredicateSet::new(),
            window: Window::minutes(1.0),
        };
        assert!(matches!(
            too_bushy.resolve(),
            Err(EngineError::InvalidQuery(_))
        ));
    }
}
