//! Static key-partitionability analysis.
//!
//! The sharded backend runs one independent executor per shard, so it is
//! only transparent when any two tuples that *could* join are guaranteed to
//! land in the same shard. With a [`jit_stream::ShardPartitioner`] hashing
//! one designated key column of every source, that holds exactly when the
//! join predicates force every source's key column to carry the same value
//! in any joining combination — i.e. when all the key columns sit in one
//! equivalence class of the predicate set's transitive column-equality
//! closure.
//!
//! [`check_key_partitionable`] computes that closure with a union–find over
//! the referenced columns. Workloads whose partitionability is a *data*
//! invariant rather than a predicate consequence (the generator's
//! shared-key mode replicates one key into every column, so the clique
//! predicates all reduce to key equality even though their column indices
//! differ) cannot be proven statically; callers assert the invariant with
//! [`crate::EngineBuilder::assume_key_partitionable`] instead.

use jit_types::{ColumnRef, PredicateSet, SourceId};
use std::collections::BTreeMap;

/// A tiny union–find over dense node ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    fn add(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Verify that hashing column `key_column` of every source is a lossless
/// shard assignment for `predicates` over `num_sources` sources.
///
/// Returns `Err(detail)` naming the first source whose key column is not
/// transitively equated with source 0's — the witness that two joinable
/// tuples could disagree on the partition key and end up in different
/// shards.
pub fn check_key_partitionable(
    predicates: &PredicateSet,
    num_sources: usize,
    key_column: usize,
) -> Result<(), String> {
    if num_sources <= 1 {
        return Ok(()); // a single source never joins across shards
    }
    if predicates.is_empty() {
        return Err(format!(
            "the query has no join predicates (a cross product over {num_sources} sources \
             joins across any partitioning)"
        ));
    }
    let mut uf = UnionFind::new();
    let mut ids: BTreeMap<(u16, u16), usize> = BTreeMap::new();
    let mut id_of = |uf: &mut UnionFind, c: ColumnRef| {
        *ids.entry((c.source.0, c.column))
            .or_insert_with(|| uf.add())
    };
    for p in predicates.predicates() {
        let l = id_of(&mut uf, p.left);
        let r = id_of(&mut uf, p.right);
        uf.union(l, r);
    }
    let key = |s: usize| ColumnRef::new(SourceId(s as u16), key_column as u16);
    let anchor = id_of(&mut uf, key(0));
    let anchor = uf.find(anchor);
    for s in 1..num_sources {
        let k = id_of(&mut uf, key(s));
        if uf.find(k) != anchor {
            return Err(format!(
                "source {}'s partition key column {key_column} is not transitively equated \
                 with source {}'s by the join predicates",
                SourceId(s as u16),
                SourceId(0),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::EquiPredicate;

    fn col(s: u16, c: u16) -> ColumnRef {
        ColumnRef::new(SourceId(s), c)
    }

    #[test]
    fn chain_of_key_equalities_is_partitionable() {
        // A.0 = B.0 AND B.0 = C.0: one class covering every key column.
        let preds = PredicateSet::from_predicates(vec![
            EquiPredicate::new(col(0, 0), col(1, 0)),
            EquiPredicate::new(col(1, 0), col(2, 0)),
        ]);
        assert!(check_key_partitionable(&preds, 3, 0).is_ok());
    }

    #[test]
    fn transitive_closure_spans_intermediate_columns() {
        // A.0 = B.2 AND B.2 = B.0 is not expressible (predicates are
        // cross-source), but A.0 = B.0 AND A.0 = C.0 closes transitively.
        let preds = PredicateSet::from_predicates(vec![
            EquiPredicate::new(col(0, 0), col(1, 0)),
            EquiPredicate::new(col(0, 0), col(2, 0)),
        ]);
        assert!(check_key_partitionable(&preds, 3, 0).is_ok());
    }

    #[test]
    fn clique_predicates_are_not_statically_partitionable() {
        // The generator's clique joins equate *facing* columns with
        // different indices; only the shared-key data invariant makes them
        // partitionable, which a static check must not assume.
        let preds = PredicateSet::clique(3);
        let err = check_key_partitionable(&preds, 3, 0).unwrap_err();
        assert!(err.contains("partition key"), "{err}");
    }

    #[test]
    fn join_on_non_key_column_is_rejected() {
        let preds = PredicateSet::from_predicates(vec![EquiPredicate::new(col(0, 1), col(1, 1))]);
        assert!(check_key_partitionable(&preds, 2, 0).is_err());
    }

    #[test]
    fn cross_product_and_single_source_edge_cases() {
        assert!(check_key_partitionable(&PredicateSet::new(), 2, 0).is_err());
        assert!(check_key_partitionable(&PredicateSet::new(), 1, 0).is_ok());
    }

    #[test]
    fn alternative_key_column() {
        let preds = PredicateSet::from_predicates(vec![EquiPredicate::new(col(0, 1), col(1, 1))]);
        assert!(check_key_partitionable(&preds, 2, 1).is_ok());
        assert!(check_key_partitionable(&preds, 2, 0).is_err());
    }
}
