//! The backend seam: one push-based contract, two executors behind it.
//!
//! [`Backend`] is the trait-level seam between the public [`crate::Session`]
//! API and the machinery that actually runs the plan. Two implementations
//! exist, selected purely by configuration on the [`crate::EngineBuilder`]:
//!
//! * [`SingleThreadBackend`] — the paper's cascade [`Executor`], processing
//!   every arrival inline on the pushing thread.
//! * [`ShardedBackend`] — the hash-partitioned multi-core
//!   [`jit_runtime::ShardedSession`], routing each arrival to its shard's
//!   worker thread.
//!
//! Both honour the same semantics: arrivals are pushed in timestamp order,
//! `poll_results` releases results incrementally, and `finish` runs the
//! end-of-stream flush (PR-1 watermark/close semantics) and returns the
//! remaining results plus final metrics.

use crate::error::EngineError;
use jit_exec::executor::Executor;
use jit_exec::operator::SuppressionDigest;
use jit_metrics::MetricsSnapshot;
use jit_runtime::{ShardOutcome, ShardedSession};
use jit_stream::arrival::ArrivalEvent;
use jit_types::{BaseTuple, Block, SourceId, Timestamp, Tuple};
use serde::Content;
use std::sync::Arc;

/// Everything one finished engine session produced.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Label of the execution mode that ran (`"REF"`, `"DOE"`, `"JIT"`).
    pub mode_label: &'static str,
    /// Results never handed out through `poll_results`, in the backend's
    /// emission order (globally timestamp-merged for the sharded backend).
    /// A session that never polls gets the complete result stream here.
    pub results: Vec<Tuple>,
    /// Total results emitted over the whole run, polled or not (counted
    /// even when result collection is disabled).
    pub results_count: u64,
    /// Temporal-order violations observed at the sinks (0 for a correct
    /// run).
    pub order_violations: u64,
    /// Final metrics: totals plus pre-flush steady-state figures.
    pub snapshot: MetricsSnapshot,
    /// Per-shard outcomes (empty for the single-threaded backend).
    pub per_shard: Vec<ShardOutcome>,
}

impl EngineOutcome {
    /// Largest shard's share of all arrivals, in `[0, 1]` — a quick skew
    /// diagnostic (1/N is perfect balance; 0 for the single-threaded
    /// backend, which has no shards).
    pub fn max_shard_load(&self) -> f64 {
        let total: u64 = self.per_shard.iter().map(|s| s.arrivals).sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.per_shard.iter().map(|s| s.arrivals).max().unwrap_or(0);
        max as f64 / total as f64
    }
}

/// A push-based execution backend.
///
/// The trait is public so callers (and the cross-backend equivalence tests)
/// can drive the two implementations through one generic seam, but ordinary
/// use goes through [`crate::Session`], which adds ordering validation on
/// top.
pub trait Backend {
    /// Ingest one base tuple from `source`. Arrivals must be pushed in
    /// non-decreasing timestamp order.
    fn push(&mut self, source: SourceId, tuple: Arc<BaseTuple>);

    /// Ingest one columnar [`Block`] of arrivals (assembled by the session's
    /// batcher under a batching [`jit_types::BatchPolicy`]).
    ///
    /// The default replays the block row by row through [`Backend::push`],
    /// which is always semantically correct; the single-threaded backend
    /// overrides it to hand the whole block to the executor's vectorized
    /// ingest path.
    fn push_block(&mut self, block: Block) {
        for (source, tuple) in block.iter() {
            self.push(source, Arc::clone(tuple));
        }
    }

    /// Drain the results that are ready to hand out. For the sharded
    /// backend this releases only what is complete up to the cross-shard
    /// watermark, so the stream stays globally timestamp-merged.
    fn poll_results(&mut self) -> Vec<Tuple>;

    /// A live point-in-time metrics aggregate.
    fn metrics_snapshot(&mut self) -> MetricsSnapshot;

    /// A digest of the suppression knowledge (blacklisted MNS signatures)
    /// the plan currently holds — observational input to cross-query
    /// reporting in the serving tier; never used to drop deliveries.
    ///
    /// The default is empty, which is always sound: a backend that cannot
    /// cheaply aggregate its operators' blacklists (the sharded backend's
    /// plans live on worker threads) simply reports no knowledge.
    fn suppression_digest(&mut self) -> SuppressionDigest {
        SuppressionDigest::default()
    }

    /// Advance the backend's watermark clock: operators purge state expired
    /// at `w` and application time becomes `w`. Meaningful when the backend
    /// was built with the watermark clock enabled (the bounded-disorder
    /// path); the session calls it *after* pushing every tuple released at
    /// or under `w`, never before.
    fn advance_watermark(&mut self, w: Timestamp);

    /// Serialise the backend's full resumable state (operator state,
    /// progress, unpolled results) as a checkpoint blob.
    fn checkpoint(&mut self) -> Result<Content, EngineError>;

    /// End the stream: flush suppressed production to quiescence and return
    /// the outcome.
    fn finish(self: Box<Self>) -> Result<EngineOutcome, EngineError>;
}

/// The paper's single-threaded cascade executor behind the [`Backend`] seam.
pub struct SingleThreadBackend {
    executor: Executor,
    mode_label: &'static str,
}

impl SingleThreadBackend {
    /// Wrap an executor.
    pub fn new(executor: Executor, mode_label: &'static str) -> Self {
        SingleThreadBackend {
            executor,
            mode_label,
        }
    }
}

impl Backend for SingleThreadBackend {
    fn push(&mut self, source: SourceId, tuple: Arc<BaseTuple>) {
        self.executor.ingest(source, tuple);
    }

    fn push_block(&mut self, block: Block) {
        self.executor.ingest_block(&block);
    }

    fn poll_results(&mut self) -> Vec<Tuple> {
        self.executor.take_results()
    }

    fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        self.executor.metrics().snapshot()
    }

    fn suppression_digest(&mut self) -> SuppressionDigest {
        self.executor.suppression_digest()
    }

    fn advance_watermark(&mut self, w: Timestamp) {
        self.executor.advance_watermark(w);
    }

    fn checkpoint(&mut self) -> Result<Content, EngineError> {
        Ok(self.executor.checkpoint())
    }

    fn finish(self: Box<Self>) -> Result<EngineOutcome, EngineError> {
        let results_count = self.executor.results_count();
        let order_violations = self.executor.order_violations();
        let (results, snapshot) = self.executor.finish();
        Ok(EngineOutcome {
            mode_label: self.mode_label,
            results,
            results_count,
            order_violations,
            snapshot,
            per_shard: Vec::new(),
        })
    }
}

/// The hash-partitioned multi-core runtime behind the [`Backend`] seam.
pub struct ShardedBackend {
    session: ShardedSession,
    mode_label: &'static str,
}

impl ShardedBackend {
    /// Wrap a live sharded session.
    pub fn new(session: ShardedSession, mode_label: &'static str) -> Self {
        ShardedBackend {
            session,
            mode_label,
        }
    }
}

impl Backend for ShardedBackend {
    fn push(&mut self, source: SourceId, tuple: Arc<BaseTuple>) {
        self.session.push(ArrivalEvent {
            ts: tuple.ts,
            source,
            tuple,
        });
    }

    fn poll_results(&mut self) -> Vec<Tuple> {
        self.session.poll_results()
    }

    fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        self.session.metrics_snapshot()
    }

    fn advance_watermark(&mut self, w: Timestamp) {
        self.session.advance_watermark(w);
    }

    fn checkpoint(&mut self) -> Result<Content, EngineError> {
        Ok(self.session.checkpoint()?)
    }

    fn finish(self: Box<Self>) -> Result<EngineOutcome, EngineError> {
        let outcome = self.session.finish()?;
        Ok(EngineOutcome {
            mode_label: self.mode_label,
            results: outcome.results,
            results_count: outcome.results_count,
            order_violations: outcome.order_violations,
            snapshot: outcome.snapshot,
            per_shard: outcome.per_shard,
        })
    }
}
