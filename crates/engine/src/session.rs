//! Live push-based query sessions.

use crate::backend::{Backend, EngineOutcome};
use crate::error::EngineError;
use jit_exec::operator::SuppressionDigest;
use jit_metrics::MetricsSnapshot;
use jit_stream::arrival::ArrivalEvent;
use jit_stream::Trace;
use jit_types::{BaseTuple, SourceId, Timestamp, Tuple};
use std::sync::Arc;

/// A live execution of one engine's query.
///
/// Data goes in tuple by tuple ([`Session::push`] /
/// [`Session::push_batch`]); results and metrics come out incrementally
/// ([`Session::poll_results`], [`Session::metrics_snapshot`]); and
/// [`Session::finish`] closes the stream with the end-of-stream flush
/// semantics of PR 1 (suppressed production is drained to quiescence before
/// the outcome is final).
///
/// The session enforces the paper's arrival contract: tuples must be pushed
/// in non-decreasing timestamp order, and a violation is a typed
/// [`EngineError::OutOfOrder`] instead of a downstream debug assertion.
pub struct Session {
    backend: Box<dyn Backend>,
    last_push_ts: Timestamp,
    pushed: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("pushed", &self.pushed)
            .field("last_push_ts", &self.last_push_ts)
            .finish()
    }
}

impl Session {
    /// Wrap a backend (done by [`crate::Engine::session`]).
    pub(crate) fn new(backend: Box<dyn Backend>) -> Self {
        Session {
            backend,
            last_push_ts: Timestamp::ZERO,
            pushed: 0,
        }
    }

    /// Push one base tuple arriving on `source`.
    ///
    /// On the sharded backend a full ingestion channel blocks the call —
    /// backpressure, never unbounded queueing.
    pub fn push(&mut self, source: SourceId, tuple: Arc<BaseTuple>) -> Result<(), EngineError> {
        if tuple.ts < self.last_push_ts {
            return Err(EngineError::OutOfOrder {
                pushed: tuple.ts,
                last: self.last_push_ts,
            });
        }
        self.last_push_ts = tuple.ts;
        self.pushed += 1;
        self.backend.push(source, tuple);
        Ok(())
    }

    /// Push one arrival event.
    pub fn push_event(&mut self, event: ArrivalEvent) -> Result<(), EngineError> {
        self.push(event.source, event.tuple)
    }

    /// Push a sequence of arrivals (in timestamp order).
    pub fn push_batch(
        &mut self,
        events: impl IntoIterator<Item = ArrivalEvent>,
    ) -> Result<(), EngineError> {
        for event in events {
            self.push_event(event)?;
        }
        Ok(())
    }

    /// Replay a whole pre-generated trace.
    pub fn push_trace(&mut self, trace: &Trace) -> Result<(), EngineError> {
        self.push_batch(trace.iter().cloned())
    }

    /// Number of tuples pushed so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Drain the results that are ready: everything emitted since the last
    /// poll (single-threaded), or everything complete up to the cross-shard
    /// watermark (sharded). Polled results are excluded from the final
    /// outcome — nothing is ever delivered twice.
    pub fn poll_results(&mut self) -> Vec<Tuple> {
        self.backend.poll_results()
    }

    /// A live metrics aggregate (cost, memory, counters) for the work done
    /// so far.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        self.backend.metrics_snapshot()
    }

    /// The suppression knowledge the running plan currently holds (empty on
    /// backends that cannot aggregate it, notably the sharded runtime). See
    /// [`SuppressionDigest`].
    pub fn suppression_digest(&mut self) -> SuppressionDigest {
        self.backend.suppression_digest()
    }

    /// End the stream: flush suppressed production to quiescence
    /// (watermark/close semantics), join any workers, and return the
    /// remaining results plus final metrics.
    pub fn finish(self) -> Result<EngineOutcome, EngineError> {
        self.backend.finish()
    }
}
