//! Live push-based query sessions.

use crate::backend::{Backend, EngineOutcome};
use crate::error::EngineError;
use jit_durable::{write_checkpoint, CheckpointStats, PushOutcome, ReorderBuffer};
use jit_exec::operator::SuppressionDigest;
use jit_metrics::MetricsSnapshot;
use jit_stream::arrival::ArrivalEvent;
use jit_stream::Trace;
use jit_types::{BaseTuple, BatchPolicy, BlockBuilder, SourceId, Timestamp, Tuple};
use serde::{Content, Serialize};
use std::path::Path;
use std::sync::Arc;

/// What the session's reorder stage carries per buffered arrival.
type Buffered = (SourceId, Arc<BaseTuple>);

/// A live execution of one engine's query.
///
/// Data goes in tuple by tuple ([`Session::push`] /
/// [`Session::push_batch`]); results and metrics come out incrementally
/// ([`Session::poll_results`], [`Session::metrics_snapshot`]); and
/// [`Session::finish`] closes the stream with the end-of-stream flush
/// semantics of PR 1 (suppressed production is drained to quiescence before
/// the outcome is final).
///
/// ## Arrival order
///
/// Under the default [`jit_durable::DisorderPolicy::Strict`] the session
/// enforces the paper's arrival contract: tuples must be pushed in
/// non-decreasing timestamp order, and a violation is a typed
/// [`EngineError::OutOfOrder`]. Under
/// [`jit_durable::DisorderPolicy::Bounded`] a [`ReorderBuffer`] sits in
/// front of the backend: arrivals within the lateness bound are buffered
/// and released downstream in timestamp order as the watermark (max seen
/// timestamp minus the bound) advances, and arrivals older than the
/// watermark are dropped and counted ([`PushOutcome::LateDrop`]) instead of
/// erroring. Each release pushes the ready tuples *first* and advances the
/// backend's watermark clock *second*, so a released tuple always probes
/// the state as it stood before any expiry at its watermark.
///
/// ## Batching
///
/// Under a batching [`BatchPolicy`] (set via
/// [`crate::EngineBuilder::batch_policy`] on the single-threaded backend) a
/// [`BlockBuilder`] sits between `push` and the backend: accepted arrivals
/// accumulate into a columnar [`jit_types::Block`] and are flushed as one
/// [`Backend::push_block`] call when the policy says to (row count or
/// event-time delay). Every observation point — polling, metrics,
/// suppression digests, checkpoints, watermark advances, finish — flushes
/// the buffer first, so batching is never observable in *what* the session
/// produces, only in how fast.
///
/// ## Durability
///
/// [`Session::checkpoint`] serialises everything needed to resume — backend
/// operator state, the reorder stage, and the push/progress frontier — and
/// [`crate::Engine::restore`] rebuilds a session from it. The contract is
/// exactly-once with respect to the input stream: after a restore, replay
/// the source stream from arrival index [`Session::pushed`] onward and the
/// concatenation of polled plus final results equals an uninterrupted run's.
pub struct Session {
    backend: Box<dyn Backend>,
    last_push_ts: Timestamp,
    pushed: u64,
    /// The reorder stage; present only under a bounded disorder policy.
    disorder: Option<ReorderBuffer<Buffered>>,
    /// The columnar batcher; present only under a batching [`BatchPolicy`].
    batcher: Option<Batcher>,
    /// Cumulative checkpoint-file cost, surfaced through metrics.
    ckpt_bytes: u64,
    ckpt_millis: u64,
}

/// Accumulates accepted arrivals into columnar blocks per the policy.
struct Batcher {
    policy: BatchPolicy,
    builder: BlockBuilder,
}

impl Batcher {
    fn new(policy: BatchPolicy) -> Self {
        Batcher {
            policy,
            builder: BlockBuilder::new(),
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("pushed", &self.pushed)
            .field("last_push_ts", &self.last_push_ts)
            .field("disorder", &self.disorder.is_some())
            .finish()
    }
}

impl Session {
    /// Wrap a backend (done by [`crate::Engine::session`]).
    pub(crate) fn new(
        backend: Box<dyn Backend>,
        disorder: Option<ReorderBuffer<Buffered>>,
        batch: Option<BatchPolicy>,
    ) -> Self {
        Session {
            backend,
            last_push_ts: Timestamp::ZERO,
            pushed: 0,
            disorder,
            batcher: batch.map(Batcher::new),
            ckpt_bytes: 0,
            ckpt_millis: 0,
        }
    }

    /// Rebuild a session from checkpointed control state (done by
    /// [`crate::Engine::restore`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restored(
        backend: Box<dyn Backend>,
        pushed: u64,
        last_push_ts: Timestamp,
        disorder: Option<ReorderBuffer<Buffered>>,
        batch: Option<BatchPolicy>,
        ckpt_bytes: u64,
        ckpt_millis: u64,
    ) -> Self {
        Session {
            backend,
            last_push_ts,
            pushed,
            disorder,
            // Checkpoints flush the batcher first, so it restores empty.
            batcher: batch.map(Batcher::new),
            ckpt_bytes,
            ckpt_millis,
        }
    }

    /// Hand one accepted arrival to the backend — directly, or through the
    /// batcher when a batching policy is set.
    fn enqueue(&mut self, source: SourceId, tuple: Arc<BaseTuple>) {
        match &mut self.batcher {
            None => self.backend.push(source, tuple),
            Some(batcher) => {
                batcher.builder.push(source, tuple);
                if batcher.builder.should_flush(&batcher.policy) {
                    self.backend.push_block(batcher.builder.finish());
                }
            }
        }
    }

    /// Flush any batched-but-unshipped arrivals to the backend. Called
    /// before every observation of backend state so batching never changes
    /// what the session reports, only the per-arrival overhead.
    fn flush_batcher(&mut self) {
        if let Some(batcher) = &mut self.batcher {
            if !batcher.builder.is_empty() {
                self.backend.push_block(batcher.builder.finish());
            }
        }
    }

    /// Push one base tuple arriving on `source`.
    ///
    /// Strict policy: rejects a timestamp regression with
    /// [`EngineError::OutOfOrder`] and otherwise returns
    /// [`PushOutcome::Accepted`]. Bounded policy: never errors — the
    /// outcome says whether the tuple was accepted (possibly reordered) or
    /// dropped as too late.
    ///
    /// On the sharded backend a full ingestion channel blocks the call —
    /// backpressure, never unbounded queueing.
    pub fn push(
        &mut self,
        source: SourceId,
        tuple: Arc<BaseTuple>,
    ) -> Result<PushOutcome, EngineError> {
        // Every arrival, accepted or dropped, advances the replay cursor:
        // `pushed` is the index into the *input* stream, which is what a
        // post-restore replay must resume from.
        self.pushed += 1;
        let Some(buffer) = &mut self.disorder else {
            if tuple.ts < self.last_push_ts {
                self.pushed -= 1; // a rejected push is not consumed
                return Err(EngineError::OutOfOrder {
                    pushed: tuple.ts,
                    last: self.last_push_ts,
                });
            }
            self.last_push_ts = tuple.ts;
            self.enqueue(source, tuple);
            return Ok(PushOutcome::Accepted);
        };
        let ts = tuple.ts;
        let outcome = buffer.push(ts, (source, tuple));
        self.last_push_ts = buffer.max_ts();
        let target = buffer.target_watermark();
        if target > buffer.frontier() {
            let released = buffer.release(target);
            // Push first, advance second: the released tuples must probe
            // state as of the previous watermark before any expiry at the
            // new one runs. Under a batching policy the whole released run
            // ships as columnar blocks, and the batcher is drained before
            // the watermark moves.
            for (_ts, (source, tuple)) in released {
                self.enqueue(source, tuple);
            }
            self.flush_batcher();
            self.backend.advance_watermark(target);
        }
        Ok(outcome)
    }

    /// Push one arrival event.
    pub fn push_event(&mut self, event: ArrivalEvent) -> Result<PushOutcome, EngineError> {
        self.push(event.source, event.tuple)
    }

    /// Push a sequence of arrivals.
    pub fn push_batch(
        &mut self,
        events: impl IntoIterator<Item = ArrivalEvent>,
    ) -> Result<(), EngineError> {
        for event in events {
            // Batch pushes surface drops through the metrics counters, not
            // per-tuple outcomes.
            let _ = self.push_event(event)?;
        }
        Ok(())
    }

    /// Replay a whole pre-generated trace.
    pub fn push_trace(&mut self, trace: &Trace) -> Result<(), EngineError> {
        self.push_batch(trace.iter().cloned())
    }

    /// Number of input arrivals consumed so far (accepted *or* dropped as
    /// late — this is the replay cursor into the input stream, not a count
    /// of processed tuples).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Drain the results that are ready: everything emitted since the last
    /// poll (single-threaded), or everything complete up to the cross-shard
    /// watermark (sharded). Polled results are excluded from the final
    /// outcome — nothing is ever delivered twice.
    pub fn poll_results(&mut self) -> Vec<Tuple> {
        self.flush_batcher();
        self.backend.poll_results()
    }

    /// A live metrics aggregate (cost, memory, counters) for the work done
    /// so far, including the session's own disorder and checkpoint counters.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        self.flush_batcher();
        let mut snapshot = self.backend.metrics_snapshot();
        self.overlay(&mut snapshot);
        snapshot
    }

    /// Add the session-level counters (reorder stage, checkpoint cost) the
    /// backend cannot know about.
    fn overlay(&self, snapshot: &mut MetricsSnapshot) {
        if let Some(buffer) = &self.disorder {
            snapshot.late_arrivals = buffer.late_arrivals();
            snapshot.late_dropped = buffer.late_dropped();
            snapshot.reorder_buffer_peak = snapshot.reorder_buffer_peak.max(buffer.peak());
        }
        snapshot.checkpoint_bytes += self.ckpt_bytes;
        snapshot.checkpoint_millis += self.ckpt_millis;
    }

    /// The suppression knowledge the running plan currently holds (empty on
    /// backends that cannot aggregate it, notably the sharded runtime). See
    /// [`SuppressionDigest`].
    pub fn suppression_digest(&mut self) -> SuppressionDigest {
        self.flush_batcher();
        self.backend.suppression_digest()
    }

    /// Serialise the session's full resumable state as a checkpoint body
    /// for [`crate::Engine::restore`]. On the sharded backend this blocks
    /// until every shard reaches the checkpoint barrier (a consistent cut).
    ///
    /// The blob holds the backend's operator state, the reorder stage
    /// (control counters plus every buffered arrival), and the
    /// push/progress frontier. Wrap it in a file with
    /// [`Session::checkpoint_to`] or `jit_durable::write_checkpoint`.
    pub fn checkpoint(&mut self) -> Result<Content, EngineError> {
        // Ship buffered arrivals first: the checkpoint then covers them as
        // backend state, and a restored session's batcher starts empty.
        self.flush_batcher();
        let backend_state = self.backend.checkpoint()?;
        let disorder = match &self.disorder {
            None => Content::Null,
            Some(buffer) => {
                let items: Vec<(Timestamp, Buffered)> =
                    buffer.iter().map(|(ts, item)| (ts, item.clone())).collect();
                Content::Map(vec![
                    ("control".to_string(), buffer.checkpoint_control()),
                    ("items".to_string(), items.to_content()),
                ])
            }
        };
        Ok(Content::Map(vec![
            ("pushed".to_string(), Content::U64(self.pushed)),
            ("last_push_ts".to_string(), self.last_push_ts.to_content()),
            ("disorder".to_string(), disorder),
            ("ckpt_bytes".to_string(), Content::U64(self.ckpt_bytes)),
            ("ckpt_millis".to_string(), Content::U64(self.ckpt_millis)),
            ("backend".to_string(), backend_state),
        ]))
    }

    /// Checkpoint straight to a file (see [`Session::checkpoint`]), and
    /// fold the write cost into this session's metrics
    /// (`checkpoint_bytes` / `checkpoint_millis`).
    pub fn checkpoint_to(
        &mut self,
        path: impl AsRef<Path>,
    ) -> Result<CheckpointStats, EngineError> {
        let body = self.checkpoint()?;
        let stats = write_checkpoint(path, &body)?;
        self.ckpt_bytes += stats.bytes;
        self.ckpt_millis += stats.millis;
        Ok(stats)
    }

    /// End the stream: release anything still held by the reorder stage,
    /// flush suppressed production to quiescence (watermark/close
    /// semantics), join any workers, and return the remaining results plus
    /// final metrics.
    pub fn finish(mut self) -> Result<EngineOutcome, EngineError> {
        if let Some(mut buffer) = self.disorder.take() {
            let released = buffer.flush();
            for (_ts, (source, tuple)) in released {
                self.enqueue(source, tuple);
            }
            self.flush_batcher();
            self.backend.advance_watermark(buffer.frontier());
            self.disorder = Some(buffer); // keep counters for the overlay
        }
        self.flush_batcher();
        let backend = std::mem::replace(&mut self.backend, Box::new(NullBackend));
        let mut outcome = backend.finish()?;
        self.overlay(&mut outcome.snapshot);
        Ok(outcome)
    }
}

/// Placeholder backend left behind while [`Session::finish`] consumes the
/// real one (never pushed to — `finish` takes `self` by value).
struct NullBackend;

impl Backend for NullBackend {
    fn push(&mut self, _source: SourceId, _tuple: Arc<BaseTuple>) {
        // INVARIANT: finish() consumes the session while swapping this in,
        // so no push can follow.
        unreachable!("NullBackend is never pushed to")
    }
    fn poll_results(&mut self) -> Vec<Tuple> {
        Vec::new()
    }
    fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        MetricsSnapshot::zero()
    }
    fn advance_watermark(&mut self, _w: Timestamp) {}
    fn checkpoint(&mut self) -> Result<Content, EngineError> {
        Ok(Content::Null)
    }
    fn finish(self: Box<Self>) -> Result<EngineOutcome, EngineError> {
        // INVARIANT: finish() consumes the session while swapping this in,
        // so no second finish can follow.
        unreachable!("NullBackend is never finished")
    }
}
