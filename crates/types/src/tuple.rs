//! Base and composite tuples.
//!
//! A [`BaseTuple`] is a record arriving from one streaming source. A
//! [`Tuple`] is the composite of base tuples from *distinct* sources — the
//! unit that flows between operators of an execution plan. A base tuple is
//! simply a composite tuple with one component; the *empty tuple* Ø has no
//! components and is a sub-tuple of every tuple (Section III-A).
//!
//! The sub-tuple / super-tuple relation used throughout the paper is
//! implemented by [`Tuple::is_subtuple_of`]: `s` is a sub-tuple of `t` iff
//! every component (identified by source and per-source sequence number) of
//! `s` also appears in `t`.

use crate::schema::{ColumnRef, SourceId, SourceSet};
use crate::timestamp::Timestamp;
use crate::value::Value;
use crate::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A record arriving from a single streaming source.
///
/// Base tuples are immutable once created and shared by reference
/// (`Arc<BaseTuple>`) between operator states, composite tuples, MNS buffers
/// and blacklists, so a record arriving once is stored once.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BaseTuple {
    /// Which source produced the record.
    pub source: SourceId,
    /// Per-source sequence number; `(source, seq)` uniquely identifies the
    /// record for the lifetime of a run.
    pub seq: u64,
    /// Arrival timestamp (application time).
    pub ts: Timestamp,
    /// Column values, in the source schema's column order.
    pub values: Arc<[Value]>,
}

impl BaseTuple {
    /// Construct a base tuple.
    pub fn new(source: SourceId, seq: u64, ts: Timestamp, values: Vec<Value>) -> Self {
        BaseTuple {
            source,
            seq,
            ts,
            values: values.into(),
        }
    }

    /// Value of the `column`-th attribute, if present.
    pub fn value(&self, column: u16) -> Option<&Value> {
        self.values.get(column as usize)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Approximate footprint in bytes (struct + value payloads).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.values.iter().map(Value::size_bytes).sum::<usize>()
    }
}

impl fmt::Display for BaseTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}(", self.source, self.seq)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")@{}", self.ts)
    }
}

/// Identity of a composite tuple: the sorted list of `(source, seq)` pairs of
/// its components. Two tuples with equal keys represent the same join result.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct TupleKey(pub Vec<(u16, u64)>);

impl fmt::Display for TupleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (s, q)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}{}", SourceId(*s), q)?;
        }
        write!(f, "]")
    }
}

/// A composite tuple: the combination of base tuples from distinct sources.
///
/// * The empty tuple Ø ([`Tuple::empty`]) has no components.
/// * A single-component tuple wraps one [`BaseTuple`].
/// * Join results combine the components of both inputs
///   ([`Tuple::join`]); the result timestamp is the maximum component
///   timestamp, per Section II.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    /// Components sorted by source id; each source appears at most once.
    parts: Parts,
    /// Cached set of covered sources.
    sources: SourceSet,
    /// Cached timestamp (max component timestamp; `Timestamp::ZERO` for Ø).
    ts: Timestamp,
}

/// Component storage for [`Tuple`].
///
/// The single-component case is the per-arrival hot path (every base tuple is
/// wrapped before entering the plan), so it stores the `Arc<BaseTuple>`
/// inline instead of behind an `Arc<[_]>` slice — one refcount bump instead
/// of a heap allocation. The two representations compare, hash and serialize
/// identically: everything goes through [`Parts::as_slice`].
#[derive(Debug, Clone)]
enum Parts {
    Single(Arc<BaseTuple>),
    Multi(Arc<[Arc<BaseTuple>]>),
}

impl Parts {
    #[inline]
    fn as_slice(&self) -> &[Arc<BaseTuple>] {
        match self {
            Parts::Single(p) => std::slice::from_ref(p),
            Parts::Multi(ps) => ps,
        }
    }

    fn from_vec(mut parts: Vec<Arc<BaseTuple>>) -> Self {
        if parts.len() == 1 {
            // INVARIANT: len == 1 was just checked.
            Parts::Single(parts.pop().expect("len checked"))
        } else {
            Parts::Multi(Arc::from(parts))
        }
    }
}

impl PartialEq for Parts {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Parts {}

impl std::hash::Hash for Parts {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Serialize for Parts {
    fn to_content(&self) -> serde::Content {
        serde::Content::Seq(self.as_slice().iter().map(Serialize::to_content).collect())
    }
}

impl Deserialize for Parts {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        Vec::<Arc<BaseTuple>>::from_content(content).map(Parts::from_vec)
    }
}

impl Tuple {
    /// The empty tuple Ø — sub-tuple of every tuple.
    pub fn empty() -> Self {
        Tuple {
            parts: Parts::Multi(Arc::from(Vec::new())),
            sources: SourceSet::EMPTY,
            ts: Timestamp::ZERO,
        }
    }

    /// Wrap a base tuple as a single-component composite tuple.
    ///
    /// This runs once per arrival and allocates nothing: the component is
    /// stored inline in the single-part variant of the internal parts enum.
    pub fn from_base(base: Arc<BaseTuple>) -> Self {
        let sources = SourceSet::single(base.source);
        let ts = base.ts;
        Tuple {
            parts: Parts::Single(base),
            sources,
            ts,
        }
    }

    /// Build a composite tuple from components.
    ///
    /// Returns an error if two components come from the same source.
    pub fn from_parts(mut parts: Vec<Arc<BaseTuple>>) -> Result<Self, TypeError> {
        parts.sort_by_key(|p| p.source);
        let mut sources = SourceSet::EMPTY;
        let mut ts = Timestamp::ZERO;
        for p in &parts {
            if sources.contains(p.source) {
                return Err(TypeError::DuplicateSource(p.source));
            }
            sources.insert(p.source);
            ts = ts.max(p.ts);
        }
        Ok(Tuple {
            parts: Parts::from_vec(parts),
            sources,
            ts,
        })
    }

    /// Build a composite tuple from components already sorted by source id
    /// with no duplicates — the columnar result-assembly fast path, which
    /// skips [`Tuple::from_parts`]'s sort and duplicate check (the invariant
    /// is still verified under debug assertions).
    pub fn from_sorted_parts(parts: Vec<Arc<BaseTuple>>) -> Self {
        debug_assert!(parts.windows(2).all(|w| w[0].source < w[1].source));
        let mut sources = SourceSet::EMPTY;
        let mut ts = Timestamp::ZERO;
        for p in &parts {
            sources.insert(p.source);
            ts = ts.max(p.ts);
        }
        Tuple {
            parts: Parts::from_vec(parts),
            sources,
            ts,
        }
    }

    /// Join two tuples covering disjoint source sets.
    ///
    /// The result covers the union of sources and carries the later of the
    /// two timestamps.
    pub fn join(&self, other: &Tuple) -> Result<Tuple, TypeError> {
        if !self.sources.is_disjoint(other.sources) {
            return Err(TypeError::OverlappingSources {
                left: self.sources,
                right: other.sources,
            });
        }
        let mut parts: Vec<Arc<BaseTuple>> =
            Vec::with_capacity(self.num_parts() + other.num_parts());
        parts.extend(self.parts().iter().cloned());
        parts.extend(other.parts().iter().cloned());
        parts.sort_by_key(|p| p.source);
        Ok(Tuple {
            parts: Parts::Multi(Arc::from(parts)),
            sources: self.sources.union(other.sources),
            ts: self.ts.max(other.ts),
        })
    }

    /// The set of sources covered by this tuple.
    pub fn sources(&self) -> SourceSet {
        self.sources
    }

    /// The tuple's timestamp (maximum component timestamp).
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// The earliest component timestamp (`Timestamp::ZERO` for Ø).
    ///
    /// Useful for window-correctness checks: all components of a valid join
    /// result are pairwise within the window, hence
    /// `ts() − min_ts() ≤ w` must hold.
    pub fn min_ts(&self) -> Timestamp {
        self.parts()
            .iter()
            .map(|p| p.ts)
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Is this the empty tuple Ø?
    pub fn is_empty(&self) -> bool {
        self.parts().is_empty()
    }

    /// Number of components.
    pub fn num_parts(&self) -> usize {
        self.parts().len()
    }

    /// The components, sorted by source id.
    pub fn parts(&self) -> &[Arc<BaseTuple>] {
        self.parts.as_slice()
    }

    /// The component contributed by `source`, if any.
    pub fn part(&self, source: SourceId) -> Option<&Arc<BaseTuple>> {
        self.parts().iter().find(|p| p.source == source)
    }

    /// Value of the referenced column, if this tuple covers the source.
    pub fn value(&self, col: ColumnRef) -> Option<&Value> {
        self.part(col.source).and_then(|p| p.value(col.column))
    }

    /// Restrict the tuple to the components whose source is in `keep`.
    ///
    /// Produces the (possibly empty) sub-tuple covering
    /// `self.sources() ∩ keep`.
    pub fn project(&self, keep: SourceSet) -> Tuple {
        let parts: Vec<Arc<BaseTuple>> = self
            .parts()
            .iter()
            .filter(|p| keep.contains(p.source))
            .cloned()
            .collect();
        let mut sources = SourceSet::EMPTY;
        let mut ts = Timestamp::ZERO;
        for p in &parts {
            sources.insert(p.source);
            ts = ts.max(p.ts);
        }
        Tuple {
            parts: Parts::from_vec(parts),
            sources,
            ts,
        }
    }

    /// Is `self` a sub-tuple of `other`?
    ///
    /// True iff every component of `self` appears (same source, same sequence
    /// number) in `other`. The empty tuple is a sub-tuple of everything.
    pub fn is_subtuple_of(&self, other: &Tuple) -> bool {
        if !self.sources.is_subset(other.sources) {
            return false;
        }
        self.parts().iter().all(|p| {
            other
                .part(p.source)
                .map(|q| q.seq == p.seq)
                .unwrap_or(false)
        })
    }

    /// Is `self` a super-tuple of `other`?
    pub fn is_supertuple_of(&self, other: &Tuple) -> bool {
        other.is_subtuple_of(self)
    }

    /// The identity key of the tuple (sorted `(source, seq)` pairs).
    pub fn key(&self) -> TupleKey {
        TupleKey(self.parts().iter().map(|p| (p.source.0, p.seq)).collect())
    }

    /// Approximate footprint in bytes.
    ///
    /// Components are shared via `Arc`, but the analytical memory model of
    /// the paper charges each *stored copy* of an intermediate result for its
    /// full payload (that is exactly the memory REF wastes on NPRs), so we
    /// deliberately count component payloads rather than pointer sizes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.parts().iter().map(|p| p.size_bytes()).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Ø");
        }
        write!(f, "⟨")?;
        for (i, p) in self.parts().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}{}", p.source, p.seq)?;
        }
        write!(f, "⟩@{}", self.ts)
    }
}

impl From<BaseTuple> for Tuple {
    fn from(b: BaseTuple) -> Self {
        Tuple::from_base(Arc::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(source: u16, seq: u64, ts: u64, vals: &[i64]) -> Arc<BaseTuple> {
        Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts),
            vals.iter().map(|&v| Value::int(v)).collect(),
        ))
    }

    #[test]
    fn base_tuple_accessors() {
        let b = base(0, 1, 500, &[7, 8]);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.value(1), Some(&Value::int(8)));
        assert_eq!(b.value(2), None);
        assert!(b.size_bytes() > 0);
        assert!(b.to_string().starts_with("A1("));
    }

    #[test]
    fn empty_tuple_properties() {
        let e = Tuple::empty();
        assert!(e.is_empty());
        assert_eq!(e.num_parts(), 0);
        assert_eq!(e.ts(), Timestamp::ZERO);
        assert_eq!(e.sources(), SourceSet::EMPTY);
        assert_eq!(e.to_string(), "Ø");
    }

    #[test]
    fn from_base_covers_single_source() {
        let t = Tuple::from_base(base(2, 5, 100, &[1]));
        assert_eq!(t.num_parts(), 1);
        assert_eq!(t.sources(), SourceSet::single(SourceId(2)));
        assert_eq!(t.ts(), Timestamp::from_millis(100));
    }

    #[test]
    fn join_merges_and_takes_max_timestamp() {
        let a = Tuple::from_base(base(0, 1, 100, &[1]));
        let b = Tuple::from_base(base(1, 1, 300, &[1]));
        let ab = a.join(&b).unwrap();
        assert_eq!(ab.num_parts(), 2);
        assert_eq!(ab.ts(), Timestamp::from_millis(300));
        assert_eq!(ab.min_ts(), Timestamp::from_millis(100));
        assert!(ab.sources().contains(SourceId(0)));
        assert!(ab.sources().contains(SourceId(1)));
        // parts sorted by source regardless of join order
        let ba = b.join(&a).unwrap();
        assert_eq!(ab.key(), ba.key());
    }

    #[test]
    fn join_rejects_overlapping_sources() {
        let a1 = Tuple::from_base(base(0, 1, 100, &[1]));
        let a2 = Tuple::from_base(base(0, 2, 200, &[2]));
        assert!(a1.join(&a2).is_err());
    }

    #[test]
    fn from_parts_rejects_duplicate_source() {
        let err = Tuple::from_parts(vec![base(0, 1, 0, &[1]), base(0, 2, 0, &[2])]);
        assert!(err.is_err());
    }

    #[test]
    fn join_with_empty_is_identity() {
        let a = Tuple::from_base(base(0, 1, 100, &[1]));
        let e = Tuple::empty();
        let j = a.join(&e).unwrap();
        assert_eq!(j.key(), a.key());
        assert_eq!(j.ts(), a.ts());
    }

    #[test]
    fn value_lookup_via_column_ref() {
        let a = Tuple::from_base(base(0, 1, 100, &[10, 20]));
        let b = Tuple::from_base(base(1, 1, 100, &[30]));
        let ab = a.join(&b).unwrap();
        assert_eq!(
            ab.value(ColumnRef::new(SourceId(0), 1)),
            Some(&Value::int(20))
        );
        assert_eq!(
            ab.value(ColumnRef::new(SourceId(1), 0)),
            Some(&Value::int(30))
        );
        assert_eq!(ab.value(ColumnRef::new(SourceId(2), 0)), None);
        assert_eq!(ab.value(ColumnRef::new(SourceId(0), 5)), None);
    }

    #[test]
    fn projection_produces_subtuple() {
        let a = Tuple::from_base(base(0, 1, 100, &[1]));
        let b = Tuple::from_base(base(1, 2, 200, &[2]));
        let c = Tuple::from_base(base(2, 3, 300, &[3]));
        let abc = a.join(&b).unwrap().join(&c).unwrap();
        let ac = abc.project(SourceSet::from_iter([SourceId(0), SourceId(2)]));
        assert_eq!(ac.num_parts(), 2);
        assert!(ac.is_subtuple_of(&abc));
        assert!(abc.is_supertuple_of(&ac));
        assert_eq!(ac.ts(), Timestamp::from_millis(300));
        // Projecting to a source not covered yields the empty tuple.
        let none = abc.project(SourceSet::single(SourceId(5)));
        assert!(none.is_empty());
        assert!(none.is_subtuple_of(&abc));
    }

    #[test]
    fn subtuple_requires_same_sequence_numbers() {
        let a1 = Tuple::from_base(base(0, 1, 100, &[1]));
        let a2 = Tuple::from_base(base(0, 2, 100, &[1]));
        let b = Tuple::from_base(base(1, 1, 100, &[1]));
        let a1b = a1.join(&b).unwrap();
        assert!(a1.is_subtuple_of(&a1b));
        // Same source, different record → not a sub-tuple.
        assert!(!a2.is_subtuple_of(&a1b));
    }

    #[test]
    fn empty_is_subtuple_of_everything() {
        let a = Tuple::from_base(base(0, 1, 100, &[1]));
        assert!(Tuple::empty().is_subtuple_of(&a));
        assert!(Tuple::empty().is_subtuple_of(&Tuple::empty()));
        assert!(!a.is_subtuple_of(&Tuple::empty()));
    }

    #[test]
    fn key_identifies_results() {
        let a = Tuple::from_base(base(0, 7, 100, &[1]));
        let b = Tuple::from_base(base(1, 9, 50, &[1]));
        let ab = a.join(&b).unwrap();
        assert_eq!(ab.key(), TupleKey(vec![(0, 7), (1, 9)]));
        assert_eq!(ab.key().to_string(), "[A7 B9]");
    }

    #[test]
    fn size_counts_all_components() {
        let a = Tuple::from_base(base(0, 1, 100, &[1, 2, 3]));
        let b = Tuple::from_base(base(1, 1, 100, &[4, 5, 6]));
        let ab = a.join(&b).unwrap();
        assert!(ab.size_bytes() > a.size_bytes());
        assert!(ab.size_bytes() > b.size_bytes());
    }
}
