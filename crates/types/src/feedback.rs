//! Consumer → producer feedback messages.
//!
//! Section III-A introduces two feedback kinds — *suspension*
//! (`<suspend, Π>`) and *resumption* (`<resume, Π>`) — where `Π` is a set of
//! minimal non-demanded sub-tuples (MNSs). Section IV-B adds the
//! *mark-result* / *unmark-result* variants used when a Type II MNS is
//! decomposed and propagated to the producer's own inputs.
//!
//! This module defines only the message shape; detection of MNSs and the
//! producer's dynamic production control live in `jit-core`.

use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The command carried by a feedback message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeedbackCommand {
    /// Stop producing results that are super-tuples of the given MNSs.
    Suspend,
    /// Resume production for the given MNSs and return the suppressed
    /// super-tuples to the consumer.
    Resume,
    /// Keep producing super-tuples of the given sub-tuples but *mark* them
    /// (used for decomposed Type II MNSs, Section IV-B).
    Mark,
    /// Stop marking super-tuples of the given sub-tuples.
    Unmark,
}

impl FeedbackCommand {
    /// Does the command reduce production (suspend or mark)?
    pub fn is_restricting(self) -> bool {
        matches!(self, FeedbackCommand::Suspend | FeedbackCommand::Mark)
    }

    /// Does the command restore production (resume or unmark)?
    pub fn is_restoring(self) -> bool {
        !self.is_restricting()
    }
}

impl fmt::Display for FeedbackCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FeedbackCommand::Suspend => "suspend",
            FeedbackCommand::Resume => "resume",
            FeedbackCommand::Mark => "mark",
            FeedbackCommand::Unmark => "unmark",
        };
        write!(f, "{s}")
    }
}

/// A feedback message `<command, Π>` sent from a consumer operator to one of
/// its producers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Feedback {
    /// What the producer should do.
    pub command: FeedbackCommand,
    /// The set `Π` of (minimal non-demanded) sub-tuples the command refers to.
    pub mns_set: Vec<Tuple>,
}

impl Feedback {
    /// `<suspend, Π>`.
    pub fn suspend(mns_set: Vec<Tuple>) -> Self {
        Feedback {
            command: FeedbackCommand::Suspend,
            mns_set,
        }
    }

    /// `<resume, Π>`.
    pub fn resume(mns_set: Vec<Tuple>) -> Self {
        Feedback {
            command: FeedbackCommand::Resume,
            mns_set,
        }
    }

    /// `<mark, Π>`.
    pub fn mark(mns_set: Vec<Tuple>) -> Self {
        Feedback {
            command: FeedbackCommand::Mark,
            mns_set,
        }
    }

    /// `<unmark, Π>`.
    pub fn unmark(mns_set: Vec<Tuple>) -> Self {
        Feedback {
            command: FeedbackCommand::Unmark,
            mns_set,
        }
    }

    /// A message with the same command but a different MNS set — used when an
    /// operator propagates feedback upstream after projecting / decomposing
    /// the MNSs onto its own inputs.
    pub fn with_mns_set(&self, mns_set: Vec<Tuple>) -> Self {
        Feedback {
            command: self.command,
            mns_set,
        }
    }

    /// Is the MNS set empty (nothing to do)?
    pub fn is_empty(&self) -> bool {
        self.mns_set.is_empty()
    }

    /// Approximate footprint in bytes (for queue memory accounting).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.mns_set.iter().map(Tuple::size_bytes).sum::<usize>()
    }
}

impl fmt::Display for Feedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {{", self.command)?;
        for (i, t) in self.mns_set.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SourceId;
    use crate::timestamp::Timestamp;
    use crate::tuple::BaseTuple;
    use crate::value::Value;
    use std::sync::Arc;

    fn tup(source: u16, seq: u64) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(seq),
            vec![Value::int(1)],
        )))
    }

    #[test]
    fn command_classification() {
        assert!(FeedbackCommand::Suspend.is_restricting());
        assert!(FeedbackCommand::Mark.is_restricting());
        assert!(FeedbackCommand::Resume.is_restoring());
        assert!(FeedbackCommand::Unmark.is_restoring());
    }

    #[test]
    fn constructors_set_command() {
        assert_eq!(Feedback::suspend(vec![]).command, FeedbackCommand::Suspend);
        assert_eq!(Feedback::resume(vec![]).command, FeedbackCommand::Resume);
        assert_eq!(Feedback::mark(vec![]).command, FeedbackCommand::Mark);
        assert_eq!(Feedback::unmark(vec![]).command, FeedbackCommand::Unmark);
    }

    #[test]
    fn with_mns_set_preserves_command() {
        let f = Feedback::suspend(vec![tup(0, 1)]);
        let g = f.with_mns_set(vec![tup(1, 2), tup(2, 3)]);
        assert_eq!(g.command, FeedbackCommand::Suspend);
        assert_eq!(g.mns_set.len(), 2);
        assert!(!f.is_empty());
        assert!(Feedback::resume(vec![]).is_empty());
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = Feedback::suspend(vec![tup(0, 1)]);
        let s = f.to_string();
        assert!(s.starts_with("<suspend, {"), "{s}");
        assert!(s.contains("A1"));
    }

    #[test]
    fn size_grows_with_mns_set() {
        let small = Feedback::suspend(vec![tup(0, 1)]);
        let large = Feedback::suspend(vec![tup(0, 1), tup(1, 2), tup(2, 3)]);
        assert!(large.size_bytes() > small.size_bytes());
    }
}
