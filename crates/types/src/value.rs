//! Column values.
//!
//! The paper's experiments use integer-valued columns drawn uniformly from
//! `[1..dmax]`; real continuous queries also filter on strings, so the value
//! model supports both (plus `Null` for outer-ish extensions).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single column value carried by a stream tuple.
///
/// Values are cheap to clone (`Int`/`Null` are `Copy`-sized, `Str` is an
/// `Arc<str>`), hashable and totally ordered within a variant. Cross-variant
/// comparisons order `Null < Int < Str`, which gives a stable total order for
/// sorting without implying semantic comparability.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Absent / unknown value.
    Null,
    /// 64-bit signed integer — the workhorse of the paper's workloads.
    Int(i64),
    /// Interned string value.
    Str(Arc<str>),
}

impl Value {
    /// Construct an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Construct a string value.
    pub fn str(v: impl Into<Arc<str>>) -> Self {
        Value::Str(v.into())
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate heap + inline footprint of this value in bytes.
    ///
    /// Used by the analytical memory accountant (`jit-metrics`); the goal is a
    /// consistent, hardware-independent estimate rather than allocator truth.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => std::mem::size_of::<Value>(),
            Value::Int(_) => std::mem::size_of::<Value>(),
            Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
        }
    }

    /// Rank used to order across variants (`Null < Int < Str`).
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let v = Value::int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        assert!(!v.is_null());
    }

    #[test]
    fn str_roundtrip() {
        let v = Value::str("sensor-7");
        assert_eq!(v.as_str(), Some("sensor-7"));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn null_is_null() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn equality_is_by_value() {
        assert_eq!(Value::int(5), Value::from(5i64));
        assert_ne!(Value::int(5), Value::int(6));
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_ne!(Value::str("a"), Value::int(0));
    }

    #[test]
    fn ordering_within_variants() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn ordering_across_variants_is_total() {
        assert!(Value::Null < Value::int(i64::MIN));
        assert!(Value::int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
    }

    #[test]
    fn size_accounts_for_string_payload() {
        let short = Value::str("a");
        let long = Value::str("abcdefghijklmnop");
        assert!(long.size_bytes() > short.size_bytes());
        assert!(Value::int(1).size_bytes() >= std::mem::size_of::<Value>());
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3i32), Value::int(3));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }
}
