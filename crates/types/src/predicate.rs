//! Join and selection predicates.
//!
//! The paper's evaluation uses *clique* equi-join queries: there is an
//! equi-join condition between every pair of the `N` sources
//! (Section VI). [`PredicateSet::clique`] constructs exactly that predicate,
//! with the column layout described in the paper (each source carries `N − 1`
//! columns, one per partner source).
//!
//! [`FilterPredicate`] models single-tuple conditions used by selection
//! operators (Section V, Figure 9a).

use crate::schema::{ColumnRef, SourceId, SourceSet};
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An equality condition between two columns of different sources,
/// e.g. `A.x1 = B.x1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EquiPredicate {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
}

impl EquiPredicate {
    /// Construct an equi-join predicate.
    pub fn new(left: ColumnRef, right: ColumnRef) -> Self {
        EquiPredicate { left, right }
    }

    /// The pair of sources the predicate connects.
    pub fn sources(&self) -> (SourceId, SourceId) {
        (self.left.source, self.right.source)
    }

    /// Does the predicate connect a source in `a` with a source in `b`?
    pub fn spans(&self, a: SourceSet, b: SourceSet) -> bool {
        (a.contains(self.left.source) && b.contains(self.right.source))
            || (a.contains(self.right.source) && b.contains(self.left.source))
    }

    /// Are both referenced sources inside `set`?
    pub fn within(&self, set: SourceSet) -> bool {
        set.contains(self.left.source) && set.contains(self.right.source)
    }

    /// Does the predicate reference at least one source in `set`?
    pub fn touches(&self, set: SourceSet) -> bool {
        set.contains(self.left.source) || set.contains(self.right.source)
    }

    /// Evaluate the predicate over a single (composite) tuple.
    ///
    /// Returns `None` if the tuple does not cover both referenced sources
    /// (the predicate is then *not applicable*), otherwise whether the two
    /// values are equal.
    pub fn holds_on(&self, t: &Tuple) -> Option<bool> {
        let l = t.value(self.left)?;
        let r = t.value(self.right)?;
        Some(l == r)
    }

    /// Evaluate the predicate across two tuples (one column from each side).
    ///
    /// Returns `None` when the predicate does not span the two tuples.
    pub fn holds_across(&self, a: &Tuple, b: &Tuple) -> Option<bool> {
        let (va, vb) = match (a.value(self.left), b.value(self.right)) {
            (Some(x), Some(y)) => (x, y),
            _ => match (a.value(self.right), b.value(self.left)) {
                (Some(x), Some(y)) => (x, y),
                _ => return None,
            },
        };
        Some(va == vb)
    }
}

impl fmt::Display for EquiPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// A conjunction of equi-join predicates — the join condition of a query.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredicateSet {
    predicates: Vec<EquiPredicate>,
}

impl PredicateSet {
    /// An empty conjunction (always true — a cross product).
    pub fn new() -> Self {
        PredicateSet::default()
    }

    /// Build from an explicit list of predicates.
    pub fn from_predicates(predicates: Vec<EquiPredicate>) -> Self {
        PredicateSet { predicates }
    }

    /// The clique-join predicate over `n` sources used throughout Section VI.
    ///
    /// Each source carries `n − 1` columns, one per partner source; the
    /// column of source `i` that faces partner `j` is `j` if `j < i`, else
    /// `j − 1`. For every pair `i < j` there is one equi-join condition
    /// between the two facing columns, so all `n·(n−1)/2` conditions use
    /// distinct columns, exactly as in the paper's example for `N = 4`.
    pub fn clique(n: usize) -> Self {
        let mut predicates = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let left = ColumnRef::new(SourceId(i as u16), facing_column(i, j));
                let right = ColumnRef::new(SourceId(j as u16), facing_column(j, i));
                predicates.push(EquiPredicate::new(left, right));
            }
        }
        PredicateSet { predicates }
    }

    /// All predicates in the conjunction.
    pub fn predicates(&self) -> &[EquiPredicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Is the conjunction empty (i.e. a cross product)?
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Add a predicate to the conjunction.
    pub fn push(&mut self, p: EquiPredicate) {
        self.predicates.push(p);
    }

    /// The sub-conjunction of predicates connecting a source in `a` with a
    /// source in `b` — the join condition evaluated by an operator whose two
    /// inputs have schemas `a` and `b`.
    pub fn between(&self, a: SourceSet, b: SourceSet) -> PredicateSet {
        PredicateSet {
            predicates: self
                .predicates
                .iter()
                .filter(|p| p.spans(a, b))
                .copied()
                .collect(),
        }
    }

    /// Evaluate the *spanning* predicates between two tuples.
    ///
    /// Predicates entirely inside either tuple are assumed to have been
    /// checked when that tuple was produced; predicates referencing sources
    /// not covered by either tuple are ignored (they will be checked by a
    /// downstream operator). Returns `true` iff every applicable spanning
    /// predicate holds, and reports the number of predicate evaluations
    /// performed through `eval_count` (for the cost model).
    pub fn join_matches(&self, a: &Tuple, b: &Tuple, eval_count: &mut u64) -> bool {
        for p in &self.predicates {
            if p.spans(a.sources(), b.sources()) {
                *eval_count += 1;
                match p.holds_across(a, b) {
                    Some(true) => {}
                    Some(false) => return false,
                    None => {}
                }
            }
        }
        true
    }

    /// Like [`PredicateSet::join_matches`] without cost accounting.
    pub fn matches(&self, a: &Tuple, b: &Tuple) -> bool {
        let mut c = 0;
        self.join_matches(a, b, &mut c)
    }

    /// The sources in `side` that are referenced by a predicate reaching a
    /// source in `opposite`.
    ///
    /// These are the components eligible to appear in a candidate
    /// non-demanded sub-tuple (CNS) at a consumer whose opposite input has
    /// schema `opposite` (Section IV-A: "A CNS can only contain components
    /// that appear in the join predicate of O_C").
    pub fn sources_facing(&self, side: SourceSet, opposite: SourceSet) -> SourceSet {
        let mut out = SourceSet::EMPTY;
        for p in &self.predicates {
            if p.spans(side, opposite) {
                if side.contains(p.left.source) {
                    out.insert(p.left.source);
                }
                if side.contains(p.right.source) {
                    out.insert(p.right.source);
                }
            }
        }
        out
    }

    /// The columns of sources in `side` that participate in predicates
    /// reaching `opposite` — the *join attributes* of a sub-tuple with
    /// respect to this consumer. Sorted and deduplicated.
    pub fn join_columns(&self, side: SourceSet, opposite: SourceSet) -> Vec<ColumnRef> {
        let mut cols: Vec<ColumnRef> = Vec::new();
        for p in &self.predicates {
            if p.spans(side, opposite) {
                if side.contains(p.left.source) {
                    cols.push(p.left);
                }
                if side.contains(p.right.source) {
                    cols.push(p.right);
                }
            }
        }
        cols.sort();
        cols.dedup();
        cols
    }

    /// Union of all sources referenced by any predicate.
    pub fn referenced_sources(&self) -> SourceSet {
        let mut s = SourceSet::EMPTY;
        for p in &self.predicates {
            s.insert(p.left.source);
            s.insert(p.right.source);
        }
        s
    }
}

impl fmt::Display for PredicateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({p})")?;
        }
        Ok(())
    }
}

/// The column of source `i` that faces partner source `j` in the clique
/// layout (each source has one column per partner, in partner-id order).
pub fn facing_column(i: usize, j: usize) -> u16 {
    debug_assert_ne!(i, j);
    if j < i {
        j as u16
    } else {
        (j - 1) as u16
    }
}

/// Comparison operators for selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A single-tuple filter, e.g. `A.x > 200` (Figure 9a).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterPredicate {
    /// Column being tested.
    pub column: ColumnRef,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant operand.
    pub constant: Value,
}

impl FilterPredicate {
    /// Construct a filter predicate.
    pub fn new(column: ColumnRef, op: CompareOp, constant: Value) -> Self {
        FilterPredicate {
            column,
            op,
            constant,
        }
    }

    /// `column > constant`.
    pub fn gt(column: ColumnRef, constant: impl Into<Value>) -> Self {
        Self::new(column, CompareOp::Gt, constant.into())
    }

    /// `column = constant`.
    pub fn eq(column: ColumnRef, constant: impl Into<Value>) -> Self {
        Self::new(column, CompareOp::Eq, constant.into())
    }

    /// `column < constant`.
    pub fn lt(column: ColumnRef, constant: impl Into<Value>) -> Self {
        Self::new(column, CompareOp::Lt, constant.into())
    }

    /// Evaluate against a tuple. Returns `None` when the tuple does not cover
    /// the referenced column.
    pub fn holds_on(&self, t: &Tuple) -> Option<bool> {
        let v = t.value(self.column)?;
        Some(match self.op {
            CompareOp::Eq => *v == self.constant,
            CompareOp::Ne => *v != self.constant,
            CompareOp::Lt => *v < self.constant,
            CompareOp::Le => *v <= self.constant,
            CompareOp::Gt => *v > self.constant,
            CompareOp::Ge => *v >= self.constant,
        })
    }
}

impl fmt::Display for FilterPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{} {} {}", self.column, op, self.constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::Timestamp;
    use crate::tuple::BaseTuple;
    use std::sync::Arc;

    fn tup(source: u16, seq: u64, vals: &[i64]) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(seq * 10),
            vals.iter().map(|&v| Value::int(v)).collect(),
        )))
    }

    #[test]
    fn facing_column_layout() {
        // Source 0 faces partners 1,2,3 with columns 0,1,2.
        assert_eq!(facing_column(0, 1), 0);
        assert_eq!(facing_column(0, 3), 2);
        // Source 2 faces partners 0,1 with columns 0,1 and partner 3 with 2.
        assert_eq!(facing_column(2, 0), 0);
        assert_eq!(facing_column(2, 1), 1);
        assert_eq!(facing_column(2, 3), 2);
    }

    #[test]
    fn clique_has_all_pairs() {
        let p = PredicateSet::clique(4);
        assert_eq!(p.len(), 6);
        assert_eq!(p.referenced_sources(), SourceSet::first_n(4));
        // every pair appears exactly once
        for i in 0..4u16 {
            for j in (i + 1)..4u16 {
                let count = p
                    .predicates()
                    .iter()
                    .filter(|pr| {
                        let (a, b) = pr.sources();
                        (a, b) == (SourceId(i), SourceId(j))
                    })
                    .count();
                assert_eq!(count, 1, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn clique_columns_are_distinct_per_source() {
        let p = PredicateSet::clique(5);
        // Within one source, each predicate touching it uses a distinct column.
        for s in 0..5u16 {
            let mut cols: Vec<u16> = p
                .predicates()
                .iter()
                .flat_map(|pr| {
                    [pr.left, pr.right]
                        .into_iter()
                        .filter(|c| c.source == SourceId(s))
                        .map(|c| c.column)
                })
                .collect();
            cols.sort_unstable();
            let before = cols.len();
            cols.dedup();
            assert_eq!(cols.len(), before);
            assert_eq!(cols, (0..4).collect::<Vec<u16>>());
        }
    }

    #[test]
    fn spans_and_within() {
        let p = EquiPredicate::new(
            ColumnRef::new(SourceId(0), 0),
            ColumnRef::new(SourceId(1), 0),
        );
        let a = SourceSet::single(SourceId(0));
        let b = SourceSet::single(SourceId(1));
        assert!(p.spans(a, b));
        assert!(p.spans(b, a));
        assert!(!p.spans(a, a));
        assert!(p.within(a.union(b)));
        assert!(!p.within(a));
        assert!(p.touches(a));
        assert!(!p.touches(SourceSet::single(SourceId(4))));
    }

    #[test]
    fn holds_across_matches_values() {
        // A.x0 = B.x0
        let p = EquiPredicate::new(
            ColumnRef::new(SourceId(0), 0),
            ColumnRef::new(SourceId(1), 0),
        );
        let a = tup(0, 1, &[7, 9]);
        let b_match = tup(1, 1, &[7]);
        let b_nomatch = tup(1, 2, &[8]);
        assert_eq!(p.holds_across(&a, &b_match), Some(true));
        assert_eq!(p.holds_across(&b_match, &a), Some(true));
        assert_eq!(p.holds_across(&a, &b_nomatch), Some(false));
        // Not applicable when one side is missing.
        let c = tup(2, 1, &[7]);
        assert_eq!(p.holds_across(&a, &c), None);
    }

    #[test]
    fn join_matches_checks_only_spanning_predicates() {
        let preds = PredicateSet::clique(3);
        // Source columns: each of the 3 sources has 2 columns.
        // A=(x0 toward B, x1 toward C), B=(x0 toward A, x1 toward C), C=(x0 toward A, x1 toward B)
        let a = tup(0, 1, &[5, 100]);
        let b = tup(1, 1, &[5, 200]);
        let c_match = tup(2, 1, &[100, 200]);
        let c_nomatch = tup(2, 2, &[100, 999]);
        let mut cost = 0;
        assert!(preds.join_matches(&a, &b, &mut cost));
        assert_eq!(cost, 1); // only A-B predicate spans
        let ab = a.join(&b).unwrap();
        assert!(preds.matches(&ab, &c_match));
        assert!(!preds.matches(&ab, &c_nomatch));
    }

    #[test]
    fn between_selects_operator_condition() {
        let preds = PredicateSet::clique(4);
        let ab = SourceSet::first_n(2);
        let cd = SourceSet::from_iter([SourceId(2), SourceId(3)]);
        let cond = preds.between(ab, cd);
        // A-C, A-D, B-C, B-D
        assert_eq!(cond.len(), 4);
        assert!(cond.predicates().iter().all(|p| p.spans(ab, cd)));
    }

    #[test]
    fn sources_facing_restricts_cns_components() {
        // 3-way query from Figure 1: A.x = B.x, A.y = C.y.
        let preds = PredicateSet::from_predicates(vec![
            EquiPredicate::new(
                ColumnRef::new(SourceId(0), 0),
                ColumnRef::new(SourceId(1), 0),
            ),
            EquiPredicate::new(
                ColumnRef::new(SourceId(0), 1),
                ColumnRef::new(SourceId(2), 0),
            ),
        ]);
        let ab = SourceSet::first_n(2);
        let c = SourceSet::single(SourceId(2));
        // Only A appears in the predicate of Op2 (A.y = C.y), so CNSs of an AB
        // input can only contain the A component — as in the paper.
        assert_eq!(preds.sources_facing(ab, c), SourceSet::single(SourceId(0)));
        let cols = preds.join_columns(ab, c);
        assert_eq!(cols, vec![ColumnRef::new(SourceId(0), 1)]);
    }

    #[test]
    fn filter_predicates_evaluate() {
        let a = tup(0, 1, &[250, 3]);
        let f = FilterPredicate::gt(ColumnRef::new(SourceId(0), 0), 200);
        assert_eq!(f.holds_on(&a), Some(true));
        let f = FilterPredicate::lt(ColumnRef::new(SourceId(0), 0), 200);
        assert_eq!(f.holds_on(&a), Some(false));
        let f = FilterPredicate::eq(ColumnRef::new(SourceId(0), 1), 3);
        assert_eq!(f.holds_on(&a), Some(true));
        let f = FilterPredicate::eq(ColumnRef::new(SourceId(5), 0), 3);
        assert_eq!(f.holds_on(&a), None);
        assert_eq!(
            FilterPredicate::gt(ColumnRef::new(SourceId(0), 0), 200).to_string(),
            "A.x0 > 200"
        );
    }

    #[test]
    fn display_predicate_set() {
        let p = PredicateSet::clique(3);
        let s = p.to_string();
        assert!(s.contains("A.x0 = B.x0"));
        assert!(s.contains('∧'));
        assert_eq!(PredicateSet::new().to_string(), "TRUE");
    }
}
