//! Schema metadata: streaming sources, columns and source sets.
//!
//! A continuous query references a fixed set of streaming *sources*
//! (`A`, `B`, `C`, … in the paper). An operator's output schema is described
//! by the set of sources whose base tuples appear in its composite tuples —
//! e.g. the operator `A ⋈ B` in Figure 1b produces tuples covering `{A, B}`.
//! [`SourceSet`] is a bitmask over source ids (at most 64 sources, far beyond
//! the paper's N ≤ 8).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a streaming source (0-based, dense).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SourceId(pub u16);

impl SourceId {
    /// The numeric index of this source.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Sources are conventionally named A, B, C, ... in the paper.
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "S{}", self.0)
        }
    }
}

/// A reference to a column of a specific source, e.g. `A.x1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// The source the column belongs to.
    pub source: SourceId,
    /// 0-based column index within that source's schema.
    pub column: u16,
}

impl ColumnRef {
    /// Construct a column reference.
    pub fn new(source: SourceId, column: u16) -> Self {
        ColumnRef { source, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.x{}", self.source, self.column)
    }
}

/// A set of sources, represented as a bitmask (supports up to 64 sources).
///
/// Source sets describe composite-tuple coverage and operator schemas, and
/// they drive the sub-tuple / super-tuple relation: a tuple covering set `S`
/// is a sub-tuple of one covering `T` iff `S ⊆ T` and they agree on shared
/// components.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SourceSet(pub u64);

impl SourceSet {
    /// The empty set (schema of the empty tuple Ø).
    pub const EMPTY: SourceSet = SourceSet(0);

    /// Maximum number of distinct sources supported.
    pub const MAX_SOURCES: usize = 64;

    /// A singleton set containing only `source`.
    pub fn single(source: SourceId) -> Self {
        debug_assert!((source.0 as usize) < Self::MAX_SOURCES);
        SourceSet(1u64 << source.0)
    }

    /// Build a set from an iterator of source ids.
    ///
    /// An inherent method (not the `FromIterator` trait) so call sites can
    /// stay turbofish-free: `SourceSet::from_iter(ids)`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(ids: impl IntoIterator<Item = SourceId>) -> Self {
        let mut s = SourceSet::EMPTY;
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// The set `{0, 1, …, n−1}` of the first `n` sources.
    pub fn first_n(n: usize) -> Self {
        debug_assert!(n <= Self::MAX_SOURCES);
        if n == 64 {
            SourceSet(u64::MAX)
        } else {
            SourceSet((1u64 << n) - 1)
        }
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of sources in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Does the set contain `source`?
    pub fn contains(self, source: SourceId) -> bool {
        self.0 & (1u64 << source.0) != 0
    }

    /// Add a source to the set.
    pub fn insert(&mut self, source: SourceId) {
        self.0 |= 1u64 << source.0;
    }

    /// Remove a source from the set.
    pub fn remove(&mut self, source: SourceId) {
        self.0 &= !(1u64 << source.0);
    }

    /// Set union.
    pub fn union(self, other: SourceSet) -> SourceSet {
        SourceSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: SourceSet) -> SourceSet {
        SourceSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: SourceSet) -> SourceSet {
        SourceSet(self.0 & !other.0)
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset(self, other: SourceSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Is `self` a superset of `other`?
    pub fn is_superset(self, other: SourceSet) -> bool {
        other.is_subset(self)
    }

    /// Do the two sets share no source?
    pub fn is_disjoint(self, other: SourceSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterate over the member source ids in increasing order.
    pub fn iter(self) -> impl Iterator<Item = SourceId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(SourceId(idx))
            }
        })
    }

    /// All non-empty subsets of this set, in increasing order of cardinality.
    ///
    /// Used to enumerate candidate non-demanded sub-tuples (CNSs) for the
    /// lattice of Section IV-A. The number of subsets is `2^len − 1`, so
    /// callers should restrict the base set to predicate-relevant sources
    /// first (as the paper does).
    pub fn non_empty_subsets(self) -> Vec<SourceSet> {
        let members: Vec<SourceId> = self.iter().collect();
        let n = members.len();
        let mut out = Vec::with_capacity((1usize << n).saturating_sub(1));
        for mask in 1u64..(1u64 << n) {
            let mut s = SourceSet::EMPTY;
            for (i, &m) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(m);
                }
            }
            out.push(s);
        }
        out.sort_by_key(|s| (s.len(), s.0));
        out
    }
}

impl fmt::Display for SourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<SourceId> for SourceSet {
    fn from_iter<T: IntoIterator<Item = SourceId>>(iter: T) -> Self {
        SourceSet::from_iter(iter)
    }
}

/// Schema of a single streaming source: a name and named columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceSchema {
    /// Dense identifier of the source.
    pub id: SourceId,
    /// Human-readable name (`"A"`, `"sensors"`, …).
    pub name: String,
    /// Column names, in declaration order.
    pub columns: Vec<String>,
}

impl SourceSchema {
    /// Create a schema with the given name and columns.
    pub fn new(id: SourceId, name: impl Into<String>, columns: Vec<String>) -> Self {
        SourceSchema {
            id,
            name: name.into(),
            columns,
        }
    }

    /// Number of columns in the source.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<u16> {
        self.columns
            .iter()
            .position(|c| c == name)
            .map(|i| i as u16)
    }

    /// A [`ColumnRef`] for the named column, if it exists.
    pub fn column_ref(&self, name: &str) -> Option<ColumnRef> {
        self.column_index(name).map(|c| ColumnRef::new(self.id, c))
    }
}

/// The catalog of all sources referenced by a query.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    sources: Vec<SourceSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a source with the given name and column names; returns its id.
    ///
    /// Sources receive dense, increasing ids in registration order.
    pub fn add_source(&mut self, name: impl Into<String>, columns: Vec<String>) -> SourceId {
        let id = SourceId(self.sources.len() as u16);
        self.sources.push(SourceSchema::new(id, name, columns));
        id
    }

    /// Convenience: build the paper's experimental catalog of `n` sources
    /// named `A`, `B`, … each with `n − 1` join columns `x0 … x(n−2)`
    /// (one per other source, Section VI).
    pub fn clique(n: usize) -> Self {
        let mut cat = Catalog::new();
        for i in 0..n {
            let name = SourceId(i as u16).to_string();
            let columns = (0..n.saturating_sub(1)).map(|c| format!("x{c}")).collect();
            cat.add_source(name, columns);
        }
        cat
    }

    /// Number of registered sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// All registered schemas.
    pub fn sources(&self) -> &[SourceSchema] {
        &self.sources
    }

    /// Schema of a particular source.
    pub fn source(&self, id: SourceId) -> Option<&SourceSchema> {
        self.sources.get(id.index())
    }

    /// Look up a source by name.
    pub fn source_by_name(&self, name: &str) -> Option<&SourceSchema> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// The set of all source ids in the catalog.
    pub fn all_sources(&self) -> SourceSet {
        SourceSet::first_n(self.sources.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_display_uses_letters() {
        assert_eq!(SourceId(0).to_string(), "A");
        assert_eq!(SourceId(7).to_string(), "H");
        assert_eq!(SourceId(30).to_string(), "S30");
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::new(SourceId(1), 2).to_string(), "B.x2");
    }

    #[test]
    fn source_set_basic_ops() {
        let mut s = SourceSet::EMPTY;
        assert!(s.is_empty());
        s.insert(SourceId(0));
        s.insert(SourceId(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(SourceId(3)));
        assert!(!s.contains(SourceId(1)));
        s.remove(SourceId(3));
        assert!(!s.contains(SourceId(3)));
        assert_eq!(s, SourceSet::single(SourceId(0)));
    }

    #[test]
    fn source_set_algebra() {
        let a = SourceSet::from_iter([SourceId(0), SourceId(1)]);
        let b = SourceSet::from_iter([SourceId(1), SourceId(2)]);
        assert_eq!(a.union(b), SourceSet::first_n(3));
        assert_eq!(a.intersection(b), SourceSet::single(SourceId(1)));
        assert_eq!(a.difference(b), SourceSet::single(SourceId(0)));
        assert!(SourceSet::single(SourceId(1)).is_subset(a));
        assert!(a.is_superset(SourceSet::single(SourceId(0))));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(SourceSet::single(SourceId(5))));
    }

    #[test]
    fn source_set_iteration_is_sorted() {
        let s = SourceSet::from_iter([SourceId(5), SourceId(1), SourceId(3)]);
        let ids: Vec<u16> = s.iter().map(|x| x.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn first_n_covers_prefix() {
        let s = SourceSet::first_n(4);
        assert_eq!(s.len(), 4);
        assert!(s.contains(SourceId(3)));
        assert!(!s.contains(SourceId(4)));
        assert_eq!(SourceSet::first_n(0), SourceSet::EMPTY);
    }

    #[test]
    fn subsets_enumeration() {
        let s = SourceSet::from_iter([SourceId(0), SourceId(1), SourceId(2)]);
        let subs = s.non_empty_subsets();
        assert_eq!(subs.len(), 7);
        // Sorted by cardinality: three singletons first, the full set last.
        assert_eq!(subs[0].len(), 1);
        assert_eq!(subs[6], s);
        // All subsets are subsets of s and unique.
        let mut uniq = subs.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), subs.len());
        assert!(subs.iter().all(|x| x.is_subset(s)));
    }

    #[test]
    fn display_source_set() {
        let s = SourceSet::from_iter([SourceId(0), SourceId(2)]);
        assert_eq!(s.to_string(), "{A,C}");
        assert_eq!(SourceSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut cat = Catalog::new();
        let a = cat.add_source("A", vec!["x".into(), "y".into()]);
        let b = cat.add_source("B", vec!["x".into()]);
        assert_eq!(cat.num_sources(), 2);
        assert_eq!(a, SourceId(0));
        assert_eq!(b, SourceId(1));
        assert_eq!(cat.source(a).unwrap().arity(), 2);
        assert_eq!(cat.source_by_name("B").unwrap().id, b);
        assert_eq!(
            cat.source(a).unwrap().column_ref("y"),
            Some(ColumnRef::new(a, 1))
        );
        assert_eq!(cat.source(a).unwrap().column_ref("z"), None);
        assert_eq!(cat.all_sources(), SourceSet::first_n(2));
    }

    #[test]
    fn clique_catalog_matches_paper_setup() {
        // 4 sources, each with N-1 = 3 columns.
        let cat = Catalog::clique(4);
        assert_eq!(cat.num_sources(), 4);
        for s in cat.sources() {
            assert_eq!(s.arity(), 3);
        }
        assert_eq!(cat.source_by_name("D").unwrap().id, SourceId(3));
    }
}
