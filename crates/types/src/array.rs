//! Typed column arrays — the columnar half of the batch data plane.
//!
//! A tuple-at-a-time engine pays one `Vec<Value>` heap allocation and one
//! round of dynamic dispatch per tuple. The batch data plane instead ships
//! *columns*: an [`ArrayImpl`] holds the values of one column across every
//! row of a [`crate::Batch`], laid out contiguously per type so that
//! kernels (constant-filter selection, hash-key extraction) iterate a
//! `&[i64]` slice instead of matching an enum per row.
//!
//! The design is deliberately minimal arrow-style:
//!
//! * one typed variant per [`Value`] variant that benefits from unboxing
//!   ([`ArrayImpl::Int64`], [`ArrayImpl::Utf8`]), plus a catch-all
//!   [`ArrayImpl::Values`] for mixed or null-bearing columns;
//! * an [`ArrayBuilder`] that starts in the narrowest representation and
//!   *widens* on demand — appending a string to an `Int64` column converts
//!   it to `Values` exactly once, so clean streams never pay for the
//!   general case;
//! * zero-copy reads: [`ArrayImpl::as_i64`] / [`ArrayImpl::as_utf8`] hand
//!   out the underlying slice when the column is typed, and
//!   [`ArrayImpl::get`] falls back to per-row access everywhere else.
//!
//! Columns are an *acceleration structure*: every row of a batch still
//! carries its [`crate::BaseTuple`], which remains the unit of state
//! storage and result construction. Kernels that can use the columns do;
//! everything else reads the rows and is none the wiser.

use crate::value::Value;
use std::sync::Arc;

/// One column of a batch, laid out contiguously per type.
///
/// See the [module docs](self) for the design rationale. Arrays are
/// append-only during construction (via [`ArrayBuilder`]) and immutable
/// afterwards.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayImpl {
    /// Every row is [`Value::Int`]; stored unboxed.
    Int64(Vec<i64>),
    /// Every row is [`Value::Str`]; the `Arc<str>` payloads are shared with
    /// the row tuples, not copied.
    Utf8(Vec<Arc<str>>),
    /// Mixed or null-bearing column — the general representation.
    Values(Vec<Value>),
}

impl ArrayImpl {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ArrayImpl::Int64(v) => v.len(),
            ArrayImpl::Utf8(v) => v.len(),
            ArrayImpl::Values(v) => v.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`, if in bounds. Typed variants rebuild a [`Value`]
    /// on the fly (cheap: an `i64` copy or an `Arc` clone).
    pub fn get(&self, row: usize) -> Option<Value> {
        match self {
            ArrayImpl::Int64(v) => v.get(row).map(|&i| Value::Int(i)),
            ArrayImpl::Utf8(v) => v.get(row).map(|s| Value::Str(Arc::clone(s))),
            ArrayImpl::Values(v) => v.get(row).cloned(),
        }
    }

    /// The whole column as an `i64` slice — `Some` iff every row is an
    /// integer. This is the zero-copy fast path for vectorized kernels.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            ArrayImpl::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// The whole column as a string slice — `Some` iff every row is a
    /// string.
    pub fn as_utf8(&self) -> Option<&[Arc<str>]> {
        match self {
            ArrayImpl::Utf8(v) => Some(v),
            _ => None,
        }
    }
}

/// Builds one [`ArrayImpl`] by appending row values.
///
/// The builder starts in the narrowest representation that fits the data
/// seen so far and widens irreversibly when a value of a different shape
/// arrives: `Int64`/`Utf8` → `Values`. An all-integer column therefore
/// never touches the general representation.
#[derive(Debug, Clone)]
pub struct ArrayBuilder {
    repr: ArrayImpl,
}

impl Default for ArrayBuilder {
    fn default() -> Self {
        ArrayBuilder::new()
    }
}

impl ArrayBuilder {
    /// An empty builder (starts as an integer column and widens on demand).
    pub fn new() -> Self {
        ArrayBuilder {
            repr: ArrayImpl::Int64(Vec::new()),
        }
    }

    /// An empty builder with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ArrayBuilder {
            repr: ArrayImpl::Int64(Vec::with_capacity(capacity)),
        }
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.repr.len()
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.repr.is_empty()
    }

    /// Append one value, widening the representation if needed.
    pub fn push(&mut self, value: &Value) {
        match (&mut self.repr, value) {
            (ArrayImpl::Int64(v), Value::Int(i)) => v.push(*i),
            (ArrayImpl::Utf8(v), Value::Str(s)) => v.push(Arc::clone(s)),
            (ArrayImpl::Values(v), value) => v.push(value.clone()),
            // An empty integer column may still become a string column.
            (ArrayImpl::Int64(v), Value::Str(s)) if v.is_empty() => {
                self.repr = ArrayImpl::Utf8(vec![Arc::clone(s)]);
            }
            // Shape mismatch: widen to the general representation once.
            (repr, value) => {
                let mut values: Vec<Value> = match repr {
                    ArrayImpl::Int64(v) => v.iter().map(|&i| Value::Int(i)).collect(),
                    ArrayImpl::Utf8(v) => v.iter().map(|s| Value::Str(Arc::clone(s))).collect(),
                    // INVARIANT: the Values representation was consumed by the outer
                    // match arm above.
                    ArrayImpl::Values(_) => unreachable!("handled above"),
                };
                values.push(value.clone());
                self.repr = ArrayImpl::Values(values);
            }
        }
    }

    /// Finish the column.
    pub fn finish(self) -> ArrayImpl {
        self.repr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_stays_typed() {
        let mut b = ArrayBuilder::new();
        for i in 0..5 {
            b.push(&Value::int(i));
        }
        let a = b.finish();
        assert_eq!(a.len(), 5);
        assert_eq!(a.as_i64(), Some(&[0i64, 1, 2, 3, 4][..]));
        assert_eq!(a.get(2), Some(Value::int(2)));
        assert_eq!(a.get(5), None);
    }

    #[test]
    fn str_column_stays_typed() {
        let mut b = ArrayBuilder::new();
        b.push(&Value::str("x"));
        b.push(&Value::str("y"));
        let a = b.finish();
        assert!(a.as_i64().is_none());
        assert_eq!(a.as_utf8().map(|s| s.len()), Some(2));
        assert_eq!(a.get(1), Some(Value::str("y")));
    }

    #[test]
    fn mixed_column_widens_once_and_preserves_order() {
        let mut b = ArrayBuilder::with_capacity(4);
        b.push(&Value::int(1));
        b.push(&Value::str("s"));
        b.push(&Value::Null);
        let a = b.finish();
        assert!(a.as_i64().is_none());
        assert!(a.as_utf8().is_none());
        assert_eq!(a.get(0), Some(Value::int(1)));
        assert_eq!(a.get(1), Some(Value::str("s")));
        assert_eq!(a.get(2), Some(Value::Null));
    }

    #[test]
    fn empty_builder_properties() {
        let b = ArrayBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        let a = b.finish();
        assert!(a.is_empty());
    }
}
