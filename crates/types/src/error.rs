//! Error types shared across the workspace.

use crate::schema::{SourceId, SourceSet};
use std::fmt;

/// Errors arising from malformed tuples, schemas or predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A composite tuple was built with two components from the same source.
    DuplicateSource(SourceId),
    /// Two tuples with overlapping source coverage were joined.
    OverlappingSources {
        /// Sources covered by the left operand.
        left: SourceSet,
        /// Sources covered by the right operand.
        right: SourceSet,
    },
    /// A column reference pointed outside the source's schema.
    UnknownColumn {
        /// The offending source.
        source: SourceId,
        /// The out-of-range column index.
        column: u16,
    },
    /// A source id was not registered in the catalog.
    UnknownSource(SourceId),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateSource(s) => {
                write!(f, "composite tuple contains two components from source {s}")
            }
            TypeError::OverlappingSources { left, right } => write!(
                f,
                "cannot join tuples with overlapping sources {left} and {right}"
            ),
            TypeError::UnknownColumn { source, column } => {
                write!(f, "column {column} does not exist in source {source}")
            }
            TypeError::UnknownSource(s) => write!(f, "source {s} is not in the catalog"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TypeError::DuplicateSource(SourceId(0));
        assert!(e.to_string().contains("source A"));
        let e = TypeError::OverlappingSources {
            left: SourceSet::single(SourceId(0)),
            right: SourceSet::single(SourceId(0)),
        };
        assert!(e.to_string().contains("overlapping"));
        let e = TypeError::UnknownColumn {
            source: SourceId(1),
            column: 9,
        };
        assert!(e.to_string().contains('9'));
        let e = TypeError::UnknownSource(SourceId(2));
        assert!(e.to_string().contains('C'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&TypeError::UnknownSource(SourceId(0)));
    }
}
