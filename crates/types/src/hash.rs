//! A fast, non-cryptographic hasher for hot-path hash maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! HashDoS-resistant, which costs tens of nanoseconds per small key — a
//! real tax on maps probed once per arriving tuple, such as the hash
//! indexes over operator states. [`FastHasher`] is the classic
//! multiplicative "Fx" scheme (rotate, xor, multiply by a large odd
//! constant per 8-byte word), an order of magnitude cheaper on the short
//! integer keys the join states use.
//!
//! It is *not* collision-resistant against adversarial keys; use it only
//! for maps whose keys come from the data plane of a trusted process, never
//! for anything exposed to untrusted input.

// jit-analysis: allow(default-hasher): this is the definition site — the std
// containers are re-exported with the fast hasher plugged in.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FastHasher`]; deterministic (no per-map seed).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`]. Construct with `FastMap::default()`.
// jit-analysis: allow(default-hasher): alias definition site — this line plugs
// the fast hasher into the std container for everyone else to use.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`]. Construct with `FastSet::default()`.
// jit-analysis: allow(default-hasher): alias definition site — this line plugs
// the fast hasher into the std container for everyone else to use.
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

/// Multiplicative word-at-a-time hasher (the "Fx" scheme).
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

/// A large odd constant with well-mixed bits (2^64 / golden ratio, odd).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // INVARIANT: chunks_exact(8) yields exactly-8-byte slices.
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the length in so `"a"` and `"a\0"` hash differently.
            self.add(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FastBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"stream"), hash_of(&"stream"));
    }

    #[test]
    fn distinguishes_values_and_lengths() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[1u8]), hash_of(&[1u8, 0]));
        assert_ne!(hash_of(&"a"), hash_of(&"a\0"));
    }

    #[test]
    fn map_round_trips() {
        let mut map: FastMap<Vec<i64>, usize> = FastMap::default();
        for i in 0..100 {
            map.insert(vec![i, i * 7], i as usize);
        }
        for i in 0..100 {
            assert_eq!(map.get(&vec![i, i * 7]), Some(&(i as usize)));
        }
    }
}
