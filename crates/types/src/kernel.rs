//! SIMD-friendly columnar kernels.
//!
//! The batch data plane ([`crate::batch`]) carries typed column arrays; this
//! module holds the tight loops that consume them *as slices* instead of
//! boxing every cell into a [`Value`]:
//!
//! * [`BitMask`] — a packed `u64`-word row mask, the output format of every
//!   predicate kernel (one bit per row, 64 rows decided per word).
//! * [`filter_mask`] — constant-filter evaluation over one [`ArrayImpl`]:
//!   `Int64`/`Utf8` arrays are compared in a single pass over the typed
//!   slice; a type-mismatched constant is decided once for the whole batch
//!   (the [`Value`] order is total across variants, `Null < Int < Str`);
//!   `Values` arrays fall back to the scalar comparison, bit-packed.
//! * [`extract_probe_keys`] — equi-join probe-key extraction: one pass per
//!   key column over the batch instead of one `Vec<Value>` assembly per row
//!   at probe time.
//!
//! Every kernel is semantically identical to its scalar counterpart
//! ([`crate::predicate::FilterPredicate::holds_on`], per-row key assembly):
//! the kernels change how many rows are decided per call, never which rows
//! pass. "Not applicable" (a row not carrying the referenced column) stays a
//! rejection / an unkeyed row, exactly as on the tuple path.

use crate::array::ArrayImpl;
use crate::batch::Batch;
use crate::predicate::CompareOp;
use crate::schema::ColumnRef;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// Bits per mask word.
const WORD_BITS: usize = 64;

/// A packed per-row boolean mask: bit `i` of word `i / 64` is row `i`.
///
/// Rows beyond `len` inside the last word are kept zero, so
/// [`BitMask::count_ones`] and the word view ([`BitMask::words`]) need no
/// tail masking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

impl BitMask {
    /// An empty mask.
    pub fn new() -> Self {
        BitMask::default()
    }

    /// An all-false mask over `len` rows.
    pub fn zeros(len: usize) -> Self {
        BitMask {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// A uniform mask over `len` rows.
    pub fn filled(len: usize, value: bool) -> Self {
        if !value {
            return BitMask::zeros(len);
        }
        let mut mask = BitMask {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        mask.clear_tail();
        mask
    }

    /// Zero the bits of the last word beyond `len`.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of rows covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the mask over zero rows?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The row `i` bit.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(
            i < self.len,
            "bit {i} out of range for mask of {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Set the row `i` bit.
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(
            i < self.len,
            "bit {i} out of range for mask of {}",
            self.len
        );
        let word = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// Append one row to the mask.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        if value {
            let i = self.len;
            self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
        }
        self.len += 1;
    }

    /// Number of set (passing) rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is any row set?
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Are all rows set?
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// The packed words (tail bits beyond [`BitMask::len`] are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Intersect with another mask of the same length.
    pub fn and_assign(&mut self, other: &BitMask) {
        debug_assert_eq!(self.len, other.len, "mask length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Iterate the rows as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Build from an unpacked boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut mask = BitMask::zeros(bools.len());
        for (w, chunk) in mask.words.iter_mut().zip(bools.chunks(WORD_BITS)) {
            let mut word = 0u64;
            for (b, &v) in chunk.iter().enumerate() {
                word |= (v as u64) << b;
            }
            *w = word;
        }
        mask
    }
}

/// Does `op` hold for a pair of values comparing as `ord`?
fn op_holds(ord: Ordering, op: CompareOp) -> bool {
    match op {
        CompareOp::Eq => ord == Ordering::Equal,
        CompareOp::Ne => ord != Ordering::Equal,
        CompareOp::Lt => ord == Ordering::Less,
        CompareOp::Le => ord != Ordering::Greater,
        CompareOp::Gt => ord == Ordering::Greater,
        CompareOp::Ge => ord != Ordering::Less,
    }
}

/// Bit-pack `values[i] `op` probe(i)` for one typed slice: the inner loop is
/// monomorphized per comparison so the compiler sees a branch-free
/// compare-into-bit pattern over a dense slice.
#[inline(always)]
fn pack_by<T: Copy>(values: &[T], out: &mut BitMask, f: impl Fn(T) -> bool) {
    debug_assert_eq!(out.len, values.len());
    for (w, chunk) in out.words.iter_mut().zip(values.chunks(WORD_BITS)) {
        let mut word = 0u64;
        for (b, &v) in chunk.iter().enumerate() {
            word |= (f(v) as u64) << b;
        }
        *w = word;
    }
}

/// `values[i] `op` c` over a dense `i64` slice, one pass, bit-packed.
pub fn compare_i64_const(values: &[i64], op: CompareOp, c: i64, out: &mut BitMask) {
    *out = BitMask::zeros(values.len());
    match op {
        CompareOp::Eq => pack_by(values, out, |v| v == c),
        CompareOp::Ne => pack_by(values, out, |v| v != c),
        CompareOp::Lt => pack_by(values, out, |v| v < c),
        CompareOp::Le => pack_by(values, out, |v| v <= c),
        CompareOp::Gt => pack_by(values, out, |v| v > c),
        CompareOp::Ge => pack_by(values, out, |v| v >= c),
    }
}

/// `values[i] `op` c` over a string column, bit-packed.
pub fn compare_utf8_const(values: &[Arc<str>], op: CompareOp, c: &str, out: &mut BitMask) {
    *out = BitMask::zeros(values.len());
    for (w, chunk) in out.words.iter_mut().zip(values.chunks(WORD_BITS)) {
        let mut word = 0u64;
        for (b, v) in chunk.iter().enumerate() {
            word |= (op_holds(v.as_ref().cmp(c), op) as u64) << b;
        }
        *w = word;
    }
}

/// Scalar fallback over a boxed-value column, bit-packed. Uses the exact
/// [`Value`] total order, so mixed-variant cells compare as on the tuple
/// path.
pub fn compare_values_const(values: &[Value], op: CompareOp, c: &Value, out: &mut BitMask) {
    *out = BitMask::zeros(values.len());
    for (w, chunk) in out.words.iter_mut().zip(values.chunks(WORD_BITS)) {
        let mut word = 0u64;
        for (b, v) in chunk.iter().enumerate() {
            word |= (op_holds(v.cmp(c), op) as u64) << b;
        }
        *w = word;
    }
}

/// Evaluate `array[i] `op` constant` for every row of one column array.
///
/// Typed arrays compared against a same-variant constant take the dense
/// kernels; against a *different* variant the verdict is uniform for the
/// whole column (the [`Value`] order is total across variants:
/// `Null < Int < Str`), so the mask is filled in O(words). The `Values`
/// fallback preserves scalar semantics cell by cell.
pub fn filter_mask(array: &ArrayImpl, op: CompareOp, constant: &Value, out: &mut BitMask) {
    match (array, constant) {
        (ArrayImpl::Int64(vs), Value::Int(c)) => compare_i64_const(vs, op, *c, out),
        (ArrayImpl::Int64(vs), other) => {
            // Every Int compares the same way against a non-Int constant.
            let ord = Value::Int(0).cmp(other);
            *out = BitMask::filled(vs.len(), op_holds(ord, op));
        }
        (ArrayImpl::Utf8(vs), Value::Str(c)) => compare_utf8_const(vs, op, c, out),
        (ArrayImpl::Utf8(vs), other) => {
            // `other` is Int or Null here; Str outranks both uniformly.
            let ord = Value::str("").cmp(other);
            *out = BitMask::filled(vs.len(), op_holds(ord, op));
        }
        (ArrayImpl::Values(vs), c) => compare_values_const(vs, op, c, out),
    }
}

/// Row-major probe-key extraction: `keys[r * cols.len() + i]` is row `r`'s
/// value on `cols[i]`; `valid[r]` is false when some key column is missing
/// on row `r` (that row probes by scan, exactly as a failed per-row
/// `probe_key` would).
///
/// Typed `Int64` columns are copied in one pass over the `&[i64]` slice;
/// other arrays go through [`ArrayImpl::get`]; a column with no columnar
/// projection (or out of the projection's range) reads the row tuples.
pub fn extract_probe_keys(
    batch: &Batch,
    cols: &[ColumnRef],
    keys: &mut Vec<Value>,
    valid: &mut Vec<bool>,
) {
    let n = batch.len();
    let arity = cols.len();
    keys.clear();
    keys.resize(n * arity, Value::Null);
    valid.clear();
    valid.resize(n, true);
    for (ci, col) in cols.iter().enumerate() {
        match batch.column(col.column as usize) {
            Some(ArrayImpl::Int64(vs)) => {
                for (r, &v) in vs.iter().enumerate() {
                    keys[r * arity + ci] = Value::Int(v);
                }
            }
            Some(ArrayImpl::Utf8(vs)) => {
                for (r, v) in vs.iter().enumerate() {
                    keys[r * arity + ci] = Value::Str(v.clone());
                }
            }
            Some(arr) => {
                for (r, v) in valid.iter_mut().enumerate() {
                    match arr.get(r) {
                        Some(value) => keys[r * arity + ci] = value,
                        None => *v = false,
                    }
                }
            }
            None => {
                for ((r, row), v) in batch.rows().iter().enumerate().zip(valid.iter_mut()) {
                    match row.value(col.column) {
                        Some(value) => keys[r * arity + ci] = value.clone(),
                        None => *v = false,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BlockBuilder;
    use crate::schema::SourceId;
    use crate::timestamp::Timestamp;
    use crate::tuple::BaseTuple;

    #[test]
    fn bitmask_word_boundaries() {
        for len in [0, 1, 63, 64, 65, 127, 128, 200] {
            let mut mask = BitMask::zeros(len);
            assert_eq!(mask.len(), len);
            assert_eq!(mask.count_ones(), 0);
            for i in 0..len {
                mask.set(i, i % 3 == 0);
            }
            for i in 0..len {
                assert_eq!(mask.get(i), i % 3 == 0, "len {len} bit {i}");
            }
            assert_eq!(mask.count_ones(), len.div_ceil(3));
            let filled = BitMask::filled(len, true);
            assert_eq!(filled.count_ones(), len);
            assert!(len == 0 || filled.all());
            assert_eq!(filled.any(), len > 0);
        }
    }

    #[test]
    fn bitmask_push_matches_from_bools() {
        let bools: Vec<bool> = (0..130).map(|i| i % 7 < 3).collect();
        let mut pushed = BitMask::new();
        for &b in &bools {
            pushed.push(b);
        }
        assert_eq!(pushed, BitMask::from_bools(&bools));
        assert_eq!(pushed.iter().collect::<Vec<_>>(), bools);
    }

    #[test]
    fn bitmask_and_assign_intersects() {
        let a = BitMask::from_bools(&[true, true, false, false, true]);
        let b = BitMask::from_bools(&[true, false, true, false, true]);
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            [true, false, false, false, true]
        );
    }

    #[test]
    fn i64_kernel_matches_scalar_for_every_op() {
        let values: Vec<i64> = (0..100).map(|i| (i * 37) % 13 - 6).collect();
        let c = 3i64;
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            let mut mask = BitMask::new();
            compare_i64_const(&values, op, c, &mut mask);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(mask.get(i), op_holds(v.cmp(&c), op), "{op:?} row {i}");
            }
        }
    }

    #[test]
    fn utf8_kernel_compares_strings() {
        let values: Vec<Arc<str>> = ["apple", "pear", "fig", "pear"]
            .iter()
            .map(|&s| Arc::from(s))
            .collect();
        let mut mask = BitMask::new();
        compare_utf8_const(&values, CompareOp::Eq, "pear", &mut mask);
        assert_eq!(mask.iter().collect::<Vec<_>>(), [false, true, false, true]);
        compare_utf8_const(&values, CompareOp::Lt, "pear", &mut mask);
        assert_eq!(mask.iter().collect::<Vec<_>>(), [true, false, true, false]);
    }

    #[test]
    fn mismatched_constant_is_uniform() {
        // Int column vs Str constant: Int < Str for every row.
        let col = ArrayImpl::Int64(vec![1, 2, 3]);
        let mut mask = BitMask::new();
        filter_mask(&col, CompareOp::Lt, &Value::str("z"), &mut mask);
        assert!(mask.all());
        filter_mask(&col, CompareOp::Ge, &Value::str("z"), &mut mask);
        assert!(!mask.any());
        // Int column vs Null constant: Int > Null.
        filter_mask(&col, CompareOp::Gt, &Value::Null, &mut mask);
        assert!(mask.all());
        // Utf8 column vs Int constant: Str > Int.
        let col = ArrayImpl::Utf8(vec![Arc::from("a"), Arc::from("b")]);
        filter_mask(&col, CompareOp::Gt, &Value::int(5), &mut mask);
        assert!(mask.all());
    }

    #[test]
    fn values_fallback_matches_value_order() {
        let col = ArrayImpl::Values(vec![Value::Null, Value::int(5), Value::str("x")]);
        let mut mask = BitMask::new();
        filter_mask(&col, CompareOp::Le, &Value::int(5), &mut mask);
        assert_eq!(mask.iter().collect::<Vec<_>>(), [true, true, false]);
    }

    #[test]
    fn empty_inputs_produce_empty_masks() {
        let mut mask = BitMask::new();
        compare_i64_const(&[], CompareOp::Eq, 0, &mut mask);
        assert!(mask.is_empty());
        assert_eq!(mask.count_ones(), 0);
        assert!(!mask.any());
    }

    #[test]
    fn probe_key_extraction_matches_rows() {
        let mut builder = BlockBuilder::new();
        for i in 0..5i64 {
            builder.push(
                SourceId(0),
                Arc::new(BaseTuple::new(
                    SourceId(0),
                    i as u64,
                    Timestamp::from_millis(i as u64),
                    vec![Value::int(i), Value::int(i * 10)],
                )),
            );
        }
        let block = builder.finish();
        let batch = &block.batches()[0];
        let cols = [
            ColumnRef::new(SourceId(0), 1),
            ColumnRef::new(SourceId(0), 0),
        ];
        let (mut keys, mut valid) = (Vec::new(), Vec::new());
        extract_probe_keys(batch, &cols, &mut keys, &mut valid);
        assert!(valid.iter().all(|&v| v));
        for r in 0..5 {
            assert_eq!(keys[r * 2], Value::int(r as i64 * 10));
            assert_eq!(keys[r * 2 + 1], Value::int(r as i64));
        }
        // A column beyond the schema invalidates every row.
        let bad = [ColumnRef::new(SourceId(0), 9)];
        extract_probe_keys(batch, &bad, &mut keys, &mut valid);
        assert!(valid.iter().all(|&v| !v));
    }
}
