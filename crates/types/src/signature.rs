//! Join-attribute signatures.
//!
//! Section IV-B: once a tuple `a1` is known to be an MNS, the producer should
//! also treat tuples with *identical join-attribute values* (e.g. `a2` with
//! the same `y` as `a1`) as non-demanded. A [`Signature`] is the ordered list
//! of `(column, value)` pairs of a sub-tuple restricted to the join columns
//! relevant at a particular consumer, so "similar" tuples are exactly those
//! with equal signatures.

use crate::schema::ColumnRef;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The values a tuple exposes on a fixed, ordered set of join columns.
///
/// Signatures are hashable, so blacklists and MNS buffers can index entries
/// by signature for O(1) "similar tuple" lookups.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Signature(pub Vec<(ColumnRef, Value)>);

impl Signature {
    /// Extract the signature of `tuple` over `columns`.
    ///
    /// Columns not covered by the tuple are recorded as [`Value::Null`]; this
    /// keeps signatures over the same column list comparable even when taken
    /// from sub-tuples of different coverage.
    pub fn of(tuple: &Tuple, columns: &[ColumnRef]) -> Signature {
        let mut entries: Vec<(ColumnRef, Value)> = columns
            .iter()
            .map(|&c| (c, tuple.value(c).cloned().unwrap_or(Value::Null)))
            .collect();
        entries.sort_by_key(|(c, _)| *c);
        entries.dedup_by_key(|(c, _)| *c);
        Signature(entries)
    }

    /// Is the signature empty (no join columns)?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of `(column, value)` entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// The value recorded for `column`, if the signature covers it.
    pub fn value(&self, column: ColumnRef) -> Option<&Value> {
        self.0.iter().find(|(c, _)| *c == column).map(|(_, v)| v)
    }

    /// Approximate footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .0
                .iter()
                .map(|(_, v)| std::mem::size_of::<ColumnRef>() + v.size_bytes())
                .sum::<usize>()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟪")?;
        for (i, (c, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}={v}")?;
        }
        write!(f, "⟫")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SourceId;
    use crate::timestamp::Timestamp;
    use crate::tuple::BaseTuple;
    use std::sync::Arc;

    fn tup(source: u16, seq: u64, vals: &[i64]) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(seq),
            vals.iter().map(|&v| Value::int(v)).collect(),
        )))
    }

    #[test]
    fn similar_tuples_share_signature() {
        // a1 and a2 have the same value on A.x1 (the join attribute toward C)
        // but different values elsewhere — they are "similar" per Sec IV-B.
        let cols = [ColumnRef::new(SourceId(0), 1)];
        let a1 = tup(0, 1, &[7, 100]);
        let a2 = tup(0, 2, &[9, 100]);
        let a3 = tup(0, 3, &[7, 200]);
        assert_eq!(Signature::of(&a1, &cols), Signature::of(&a2, &cols));
        assert_ne!(Signature::of(&a1, &cols), Signature::of(&a3, &cols));
    }

    #[test]
    fn missing_columns_become_null() {
        let cols = [
            ColumnRef::new(SourceId(0), 0),
            ColumnRef::new(SourceId(1), 0),
        ];
        let a = tup(0, 1, &[5]);
        let sig = Signature::of(&a, &cols);
        assert_eq!(sig.len(), 2);
        assert_eq!(
            sig.value(ColumnRef::new(SourceId(1), 0)),
            Some(&Value::Null)
        );
        assert_eq!(
            sig.value(ColumnRef::new(SourceId(0), 0)),
            Some(&Value::int(5))
        );
    }

    #[test]
    fn signature_is_order_insensitive() {
        let c0 = ColumnRef::new(SourceId(0), 0);
        let c1 = ColumnRef::new(SourceId(0), 1);
        let a = tup(0, 1, &[1, 2]);
        assert_eq!(Signature::of(&a, &[c0, c1]), Signature::of(&a, &[c1, c0]));
        // duplicated columns collapse
        assert_eq!(Signature::of(&a, &[c0, c0]).len(), 1);
    }

    #[test]
    fn empty_signature() {
        let a = tup(0, 1, &[1]);
        let sig = Signature::of(&a, &[]);
        assert!(sig.is_empty());
        assert_eq!(sig.len(), 0);
    }

    #[test]
    fn display_and_size() {
        let cols = [ColumnRef::new(SourceId(0), 0)];
        let sig = Signature::of(&tup(0, 1, &[42]), &cols);
        assert_eq!(sig.to_string(), "⟪A.x0=42⟫");
        assert!(sig.size_bytes() > 0);
    }

    #[test]
    fn usable_as_hash_key() {
        use std::collections::HashMap;
        let cols = [ColumnRef::new(SourceId(0), 1)];
        let mut map: HashMap<Signature, u32> = HashMap::new();
        map.insert(Signature::of(&tup(0, 1, &[7, 100]), &cols), 1);
        *map.entry(Signature::of(&tup(0, 2, &[9, 100]), &cols))
            .or_insert(0) += 10;
        assert_eq!(map.len(), 1);
        assert_eq!(map.values().sum::<u32>(), 11);
    }
}
