//! # jit-types
//!
//! Foundational data types for the JIT continuous-query processing system
//! (reproduction of Yang & Papadias, *Just-In-Time Processing of Continuous
//! Queries*, ICDE 2008).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`Value`] — column values carried by stream tuples.
//! * [`Timestamp`], [`Duration`], [`Window`] — the sliding-window time model.
//! * [`SourceId`], [`SourceSet`], [`ColumnRef`], [`Catalog`] — schema metadata.
//! * [`BaseTuple`], [`Tuple`] — source tuples and composite (joined) tuples,
//!   including the *sub-tuple* / *super-tuple* relation central to the paper.
//! * [`EquiPredicate`], [`PredicateSet`], [`FilterPredicate`] — join and
//!   selection predicates.
//! * [`Signature`] — the join-attribute fingerprint of a sub-tuple, used to
//!   recognise "similar" tuples (e.g. `a2` sharing `a1`'s join values).
//! * [`Feedback`] — the consumer→producer control messages
//!   (`suspend` / `resume` / `mark` / `unmark`).
//! * [`ArrayImpl`], [`Batch`], [`Block`], [`BatchPolicy`] — the columnar
//!   batch data plane: typed column arrays and the vectorized arrival
//!   containers built from them (see the [`mod@array`] and [`batch`] docs).
//! * [`BitMask`] and the [`kernel`] module — SIMD-friendly predicate and
//!   probe-key kernels over the typed arrays.
//!
//! The crate is deliberately free of any execution logic so that the operator
//! framework (`jit-exec`) and the JIT mechanism (`jit-core`) can evolve
//! independently of the data model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod array;
pub mod batch;
pub mod error;
pub mod feedback;
pub mod hash;
pub mod kernel;
pub mod predicate;
pub mod schema;
pub mod signature;
pub mod timestamp;
pub mod tuple;
pub mod value;

pub use array::{ArrayBuilder, ArrayImpl};
pub use batch::{Batch, BatchPolicy, Block, BlockBuilder};
pub use error::TypeError;
pub use feedback::{Feedback, FeedbackCommand};
pub use hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use kernel::BitMask;
pub use predicate::{CompareOp, EquiPredicate, FilterPredicate, PredicateSet};
pub use schema::{Catalog, ColumnRef, SourceId, SourceSchema, SourceSet};
pub use signature::Signature;
pub use timestamp::{Duration, Timestamp, Window};
pub use tuple::{BaseTuple, Tuple, TupleKey};
pub use value::Value;
