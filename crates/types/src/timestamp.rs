//! The sliding-window time model.
//!
//! Following Section II of the paper, every tuple `t` carries a timestamp
//! `t.ts` and, under a global window of length `w`, is *alive* during
//! `[t.ts, t.ts + w)`. Two tuples `t`, `t'` may join only if
//! `|t.ts − t'.ts| ≤ w`, and a join result's timestamp is the maximum of its
//! components' timestamps.
//!
//! Timestamps are integer milliseconds of *application time* (the simulated
//! clock driven by the arrival trace), not wall-clock time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in application time, in milliseconds since the start of the run.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of application time, in milliseconds.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Timestamp {
    /// The origin of application time.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The latest representable instant.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Construct from raw milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000)
    }

    /// Raw millisecond representation.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference `self − other` (zero if `other` is later).
    pub fn saturating_sub(self, other: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Absolute distance between two instants.
    pub fn abs_diff(self, other: Timestamp) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }

    /// Saturating subtraction of a duration, clamping at time zero.
    pub fn saturating_sub_duration(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from raw milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000)
    }

    /// Construct from whole minutes (the unit Table III uses for `w`).
    pub fn from_mins(mins: u64) -> Self {
        Duration(mins * 60_000)
    }

    /// Construct from fractional minutes (Table III uses 7.5 and 12.5 min).
    pub fn from_mins_f64(mins: f64) -> Self {
        Duration((mins * 60_000.0).round() as u64)
    }

    /// Construct from fractional seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        Duration((secs * 1_000.0).round() as u64)
    }

    /// Raw millisecond representation.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (fractional) minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Timestamp::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, rhs: Timestamp) -> Duration {
        debug_assert!(self.0 >= rhs.0, "timestamp subtraction underflow");
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A sliding window of fixed length applied to every source (the paper's
/// global window `w`, clause `RANGE w` in CQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Window {
    /// Window length `w`.
    pub length: Duration,
}

impl Window {
    /// Create a window of the given length.
    pub fn new(length: Duration) -> Self {
        Window { length }
    }

    /// Window of `mins` minutes — the unit used throughout Section VI.
    pub fn minutes(mins: f64) -> Self {
        Window {
            length: Duration::from_mins_f64(mins),
        }
    }

    /// Is a tuple with timestamp `ts` still alive at time `now`?
    ///
    /// A tuple lives during `[ts, ts + w)`.
    pub fn is_alive(&self, ts: Timestamp, now: Timestamp) -> bool {
        ts <= now && now < ts + self.length
    }

    /// Has a tuple with timestamp `ts` expired by time `now`?
    pub fn is_expired(&self, ts: Timestamp, now: Timestamp) -> bool {
        ts + self.length <= now
    }

    /// The instant at which a tuple with timestamp `ts` expires.
    pub fn expiry(&self, ts: Timestamp) -> Timestamp {
        ts + self.length
    }

    /// Can two tuples with the given timestamps join under this window?
    ///
    /// Section II: `t` and `t'` join only if `|t.ts − t'.ts| ≤ w`.
    pub fn can_join(&self, a: Timestamp, b: Timestamp) -> bool {
        a.abs_diff(b) <= self.length
    }

    /// The purge threshold for a probe arriving at `now`: stored tuples with
    /// `ts < now − w` can no longer join anything with timestamp ≥ `now` and
    /// are removed by the purge step of purge–probe–insert.
    pub fn purge_before(&self, now: Timestamp) -> Timestamp {
        now.saturating_sub_duration(self.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(Timestamp::from_secs(2), Timestamp::from_millis(2_000));
        assert_eq!(Duration::from_mins(5), Duration::from_millis(300_000));
        assert_eq!(Duration::from_mins_f64(7.5), Duration::from_millis(450_000));
        assert_eq!(Duration::from_secs_f64(0.25), Duration::from_millis(250));
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10);
        let d = Duration::from_secs(3);
        assert_eq!(t + d, Timestamp::from_secs(13));
        assert_eq!(Timestamp::from_secs(13) - t, d);
        assert_eq!(t.saturating_sub(Timestamp::from_secs(20)), Duration::ZERO);
        assert_eq!(t.abs_diff(Timestamp::from_secs(7)), Duration::from_secs(3));
        assert_eq!(
            t.saturating_sub_duration(Duration::from_secs(30)),
            Timestamp::ZERO
        );
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Timestamp::ZERO;
        t += Duration::from_secs(1);
        t += Duration::from_secs(2);
        assert_eq!(t, Timestamp::from_secs(3));
    }

    #[test]
    fn window_lifespan_is_half_open() {
        let w = Window::new(Duration::from_secs(10));
        let ts = Timestamp::from_secs(100);
        assert!(w.is_alive(ts, ts));
        assert!(w.is_alive(ts, Timestamp::from_secs(109)));
        // Expires exactly at ts + w.
        assert!(!w.is_alive(ts, Timestamp::from_secs(110)));
        assert!(w.is_expired(ts, Timestamp::from_secs(110)));
        assert!(!w.is_expired(ts, Timestamp::from_secs(109)));
        assert_eq!(w.expiry(ts), Timestamp::from_secs(110));
    }

    #[test]
    fn window_join_condition_is_symmetric_and_inclusive() {
        let w = Window::new(Duration::from_secs(5));
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(15);
        let c = Timestamp::from_secs(16);
        assert!(w.can_join(a, b));
        assert!(w.can_join(b, a));
        assert!(!w.can_join(a, c));
        assert!(w.can_join(a, a));
    }

    #[test]
    fn purge_threshold_clamps_at_zero() {
        let w = Window::new(Duration::from_secs(60));
        assert_eq!(w.purge_before(Timestamp::from_secs(30)), Timestamp::ZERO);
        assert_eq!(
            w.purge_before(Timestamp::from_secs(90)),
            Timestamp::from_secs(30)
        );
    }

    #[test]
    fn display_is_in_seconds() {
        assert_eq!(Timestamp::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(Duration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn minutes_window_constructor() {
        let w = Window::minutes(5.0);
        assert_eq!(w.length, Duration::from_mins(5));
        let w = Window::minutes(12.5);
        assert_eq!(w.length, Duration::from_millis(750_000));
    }
}
