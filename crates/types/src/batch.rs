//! Columnar arrival batches — the transport unit of the batch data plane.
//!
//! # Layout
//!
//! A [`Batch`] is a run of arrivals from *one* source: the row tuples
//! (shared `Arc<BaseTuple>`s, still the unit of state storage), an optional
//! column-major projection of their values ([`ArrayImpl`] per column), and
//! the per-row timestamps with cached min/max — the batch *frontier* that
//! the sharded sink merges instead of individual tuples.
//!
//! A [`Block`] packages the batches of one flush window across sources,
//! plus the exact global arrival order as `(batch, row)` index pairs. The
//! executor replays rows in that order, so a batched run observes the same
//! interleaving a tuple-at-a-time run would — batching changes the physical
//! plumbing, never the semantics.
//!
//! # Building
//!
//! [`BlockBuilder`] accumulates pushed arrivals (grouping consecutive rows
//! by source) until the engine's [`BatchPolicy`] says to flush: either
//! `max_rows` rows are buffered or the oldest buffered row is `max_delay`
//! older (in event time) than the newest. Column building is optional —
//! when the consumer has no columnar kernels (or batching is off) the
//! builder skips the column pass entirely.

use crate::array::{ArrayBuilder, ArrayImpl};
use crate::schema::SourceId;
use crate::timestamp::{Duration, Timestamp};
use crate::tuple::BaseTuple;
use std::sync::Arc;

/// When the engine flushes buffered arrivals into a [`Block`].
///
/// The default (`max_rows == 1`) is tuple-equivalent: every push flushes
/// immediately and the engine behaves exactly as before the batch layer
/// existed. Larger `max_rows` trades arrival-to-result latency (bounded by
/// `max_delay` in event time) for per-tuple overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush after this many buffered rows (≥ 1).
    pub max_rows: usize,
    /// Flush when the oldest buffered row is this much older (event time)
    /// than the newest pushed row. [`Duration::ZERO`] disables the bound.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_rows: 1,
            max_delay: Duration::ZERO,
        }
    }
}

impl BatchPolicy {
    /// A policy that flushes every `max_rows` rows with no delay bound.
    pub fn rows(max_rows: usize) -> Self {
        BatchPolicy {
            max_rows: max_rows.max(1),
            max_delay: Duration::ZERO,
        }
    }

    /// Set the event-time delay bound.
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Does this policy actually batch (more than one row per flush)?
    pub fn is_batched(&self) -> bool {
        self.max_rows > 1
    }
}

/// A run of arrivals from one source, with optional columnar projection.
#[derive(Debug, Clone)]
pub struct Batch {
    source: SourceId,
    rows: Vec<Arc<BaseTuple>>,
    /// Column-major projection of the row values; empty when column
    /// building was disabled or the rows disagree on arity.
    columns: Vec<ArrayImpl>,
    timestamps: Vec<Timestamp>,
    min_ts: Timestamp,
    max_ts: Timestamp,
}

impl Batch {
    /// The source every row arrived on.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row tuples, in arrival order.
    pub fn rows(&self) -> &[Arc<BaseTuple>] {
        &self.rows
    }

    /// The row at `index`, if in bounds.
    pub fn row(&self, index: usize) -> Option<&Arc<BaseTuple>> {
        self.rows.get(index)
    }

    /// The columnar projection (empty when columns were not built).
    pub fn columns(&self) -> &[ArrayImpl] {
        &self.columns
    }

    /// One column of the projection, if built.
    pub fn column(&self, index: usize) -> Option<&ArrayImpl> {
        self.columns.get(index)
    }

    /// Per-row arrival timestamps (parallel to [`Batch::rows`]).
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// The batch frontier's lower bound: the earliest row timestamp.
    pub fn min_ts(&self) -> Timestamp {
        self.min_ts
    }

    /// The batch frontier's upper bound: the latest row timestamp.
    pub fn max_ts(&self) -> Timestamp {
        self.max_ts
    }
}

/// A batch of one source being accumulated by a [`BlockBuilder`].
#[derive(Debug)]
struct BatchInProgress {
    source: SourceId,
    rows: Vec<Arc<BaseTuple>>,
    timestamps: Vec<Timestamp>,
    /// Per-column builders; `None` when column building is off or the rows
    /// disagreed on arity (the projection is then abandoned for the batch).
    columns: Option<Vec<ArrayBuilder>>,
    min_ts: Timestamp,
    max_ts: Timestamp,
}

impl BatchInProgress {
    fn new(source: SourceId, with_columns: bool) -> Self {
        BatchInProgress {
            source,
            rows: Vec::new(),
            timestamps: Vec::new(),
            columns: with_columns.then(Vec::new),
            min_ts: Timestamp::MAX,
            max_ts: Timestamp::ZERO,
        }
    }

    fn push(&mut self, tuple: Arc<BaseTuple>) {
        let ts = tuple.ts;
        self.min_ts = self.min_ts.min(ts);
        self.max_ts = self.max_ts.max(ts);
        self.timestamps.push(ts);
        if let Some(builders) = &mut self.columns {
            if self.rows.is_empty() {
                *builders = (0..tuple.arity()).map(|_| ArrayBuilder::new()).collect();
            }
            if builders.len() == tuple.arity() {
                for (builder, value) in builders.iter_mut().zip(tuple.values.iter()) {
                    builder.push(value);
                }
            } else {
                // Arity drift within one source: abandon the projection for
                // this batch; kernels fall back to the row tuples.
                self.columns = None;
            }
        }
        self.rows.push(tuple);
    }

    fn finish(self) -> Batch {
        Batch {
            source: self.source,
            columns: self
                .columns
                .map(|builders| builders.into_iter().map(ArrayBuilder::finish).collect())
                .unwrap_or_default(),
            rows: self.rows,
            timestamps: self.timestamps,
            min_ts: self.min_ts,
            max_ts: self.max_ts,
        }
    }
}

/// A flush window of batches plus the exact global arrival order.
#[derive(Debug, Clone, Default)]
pub struct Block {
    batches: Vec<Batch>,
    /// `(batch index, row index)` per arrival, in global push order.
    order: Vec<(u32, u32)>,
}

impl Block {
    /// The per-source batches.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// The global arrival order as `(batch index, row index)` pairs.
    pub fn order(&self) -> &[(u32, u32)] {
        &self.order
    }

    /// Total number of rows across all batches.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the block empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The earliest row timestamp across all batches ([`Timestamp::MAX`]
    /// when empty).
    pub fn min_ts(&self) -> Timestamp {
        self.batches
            .iter()
            .map(Batch::min_ts)
            .min()
            .unwrap_or(Timestamp::MAX)
    }

    /// The latest row timestamp across all batches ([`Timestamp::ZERO`]
    /// when empty).
    pub fn max_ts(&self) -> Timestamp {
        self.batches
            .iter()
            .map(Batch::max_ts)
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Iterate the rows in global arrival order as `(source, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SourceId, &Arc<BaseTuple>)> {
        self.order.iter().map(move |&(b, r)| {
            let batch = &self.batches[b as usize];
            (batch.source(), &batch.rows()[r as usize])
        })
    }
}

/// Accumulates pushed arrivals into a [`Block`].
///
/// Consecutive rows from the same source extend that source's current
/// batch; a row from a different source opens (or extends) another batch.
/// The global push order is recorded exactly, so consumers can replay the
/// block as if the rows had arrived one at a time.
#[derive(Debug)]
pub struct BlockBuilder {
    with_columns: bool,
    batches: Vec<BatchInProgress>,
    order: Vec<(u32, u32)>,
    first_push_ts: Option<Timestamp>,
    last_push_ts: Timestamp,
}

impl Default for BlockBuilder {
    fn default() -> Self {
        BlockBuilder::new()
    }
}

impl BlockBuilder {
    /// An empty builder with column building enabled.
    pub fn new() -> Self {
        BlockBuilder {
            with_columns: true,
            batches: Vec::new(),
            order: Vec::new(),
            first_push_ts: None,
            last_push_ts: Timestamp::ZERO,
        }
    }

    /// Enable or disable the columnar projection (on by default). Disable
    /// it when no consumer runs columnar kernels to skip the column pass.
    pub fn with_columns(mut self, with_columns: bool) -> Self {
        self.with_columns = with_columns;
        self
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Timestamp of the first buffered row (`None` when empty) — the age
    /// anchor for [`BatchPolicy::max_delay`].
    pub fn first_push_ts(&self) -> Option<Timestamp> {
        self.first_push_ts
    }

    /// Should the buffered rows be flushed under `policy`, given the newest
    /// pushed timestamp?
    pub fn should_flush(&self, policy: &BatchPolicy) -> bool {
        if self.len() >= policy.max_rows {
            return true;
        }
        if policy.max_delay > Duration::ZERO {
            if let Some(first) = self.first_push_ts {
                return self.last_push_ts.saturating_sub(first) >= policy.max_delay;
            }
        }
        false
    }

    /// Append one arrival.
    pub fn push(&mut self, source: SourceId, tuple: Arc<BaseTuple>) {
        if self.first_push_ts.is_none() {
            self.first_push_ts = Some(tuple.ts);
        }
        self.last_push_ts = tuple.ts;
        // Few sources per query: a linear scan beats a map.
        let batch_idx = match self.batches.iter().position(|b| b.source == source) {
            Some(idx) => idx,
            None => {
                self.batches
                    .push(BatchInProgress::new(source, self.with_columns));
                self.batches.len() - 1
            }
        };
        let row_idx = self.batches[batch_idx].rows.len();
        self.order.push((batch_idx as u32, row_idx as u32));
        self.batches[batch_idx].push(tuple);
    }

    /// Drain the buffered rows into a [`Block`], leaving the builder empty.
    pub fn finish(&mut self) -> Block {
        self.first_push_ts = None;
        self.last_push_ts = Timestamp::ZERO;
        Block {
            batches: self
                .batches
                .drain(..)
                .map(BatchInProgress::finish)
                .collect(),
            order: std::mem::take(&mut self.order),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn base(source: u16, seq: u64, ts: u64, key: i64) -> Arc<BaseTuple> {
        Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::int(key), Value::int(seq as i64)],
        ))
    }

    #[test]
    fn builder_groups_by_source_and_preserves_order() {
        let mut b = BlockBuilder::new();
        b.push(SourceId(0), base(0, 0, 10, 7));
        b.push(SourceId(1), base(1, 0, 20, 8));
        b.push(SourceId(0), base(0, 1, 30, 9));
        assert_eq!(b.len(), 3);
        let block = b.finish();
        assert!(b.is_empty());
        assert_eq!(block.len(), 3);
        assert_eq!(block.batches().len(), 2);
        // Global order is exactly the push order.
        let replay: Vec<(u16, u64)> = block.iter().map(|(s, t)| (s.0, t.seq)).collect();
        assert_eq!(replay, vec![(0, 0), (1, 0), (0, 1)]);
        assert_eq!(block.min_ts(), Timestamp::from_millis(10));
        assert_eq!(block.max_ts(), Timestamp::from_millis(30));
    }

    #[test]
    fn batch_carries_columns_and_frontier() {
        let mut b = BlockBuilder::new();
        for i in 0..4u64 {
            b.push(SourceId(0), base(0, i, 100 + i, i as i64 % 2));
        }
        let block = b.finish();
        let batch = &block.batches()[0];
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.source(), SourceId(0));
        assert_eq!(batch.min_ts(), Timestamp::from_millis(100));
        assert_eq!(batch.max_ts(), Timestamp::from_millis(103));
        assert_eq!(batch.timestamps().len(), 4);
        assert_eq!(batch.columns().len(), 2);
        assert_eq!(
            batch.column(0).and_then(ArrayImpl::as_i64),
            Some(&[0i64, 1, 0, 1][..])
        );
        assert!(batch.column(2).is_none());
        assert_eq!(batch.row(3).map(|t| t.seq), Some(3));
    }

    #[test]
    fn columns_can_be_disabled() {
        let mut b = BlockBuilder::new().with_columns(false);
        b.push(SourceId(0), base(0, 0, 1, 1));
        let block = b.finish();
        assert!(block.batches()[0].columns().is_empty());
        assert_eq!(block.batches()[0].len(), 1);
    }

    #[test]
    fn policy_flush_conditions() {
        let policy = BatchPolicy::rows(3).with_max_delay(Duration::from_millis(50));
        assert!(policy.is_batched());
        assert!(!BatchPolicy::default().is_batched());
        let mut b = BlockBuilder::new();
        assert!(!b.should_flush(&policy));
        b.push(SourceId(0), base(0, 0, 0, 1));
        assert!(!b.should_flush(&policy));
        // Event-time age exceeds max_delay → flush even below max_rows.
        b.push(SourceId(0), base(0, 1, 60, 1));
        assert!(b.should_flush(&policy));
        let _ = b.finish();
        // Row count reaches max_rows → flush.
        for i in 0..3u64 {
            b.push(SourceId(0), base(0, i, i, 1));
        }
        assert!(b.should_flush(&policy));
    }

    #[test]
    fn empty_block_frontiers() {
        let block = Block::default();
        assert!(block.is_empty());
        assert_eq!(block.min_ts(), Timestamp::MAX);
        assert_eq!(block.max_ts(), Timestamp::ZERO);
    }
}
