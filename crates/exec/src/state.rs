//! Sliding-window operator state.
//!
//! An operator state (the rectangles `S_A`, `S_B`, `S_AB`, … of Figure 1b)
//! holds the tuples that arrived on one input in the past and are still
//! alive under the window. The state supports the three steps of the
//! purge–probe–insert routine of window joins (Kang et al., reference \[16\]
//! in the paper) plus the operations the JIT machinery needs: draining
//! selected tuples into a blacklist and appending resumed tuples.

use jit_types::{Timestamp, Tuple, Window};
use std::fmt;

/// One tuple stored in an operator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredTuple {
    /// The stored tuple.
    pub tuple: Tuple,
    /// When the tuple was inserted into this state (application time). Used
    /// by `Resume_Production` to avoid regenerating results that were
    /// already produced before a suspension.
    pub inserted_at: Timestamp,
}

/// A window-bounded collection of tuples with running byte accounting.
#[derive(Debug, Clone, Default)]
pub struct OperatorState {
    name: String,
    entries: Vec<StoredTuple>,
    bytes: usize,
}

impl OperatorState {
    /// An empty state with a diagnostic name (e.g. `"S_AB"`).
    pub fn new(name: impl Into<String>) -> Self {
        OperatorState {
            name: name.into(),
            entries: Vec::new(),
            bytes: 0,
        }
    }

    /// The state's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the state empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Running analytical size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// The stored entries, in insertion order.
    pub fn entries(&self) -> &[StoredTuple] {
        &self.entries
    }

    /// Iterate over stored entries.
    pub fn iter(&self) -> impl Iterator<Item = &StoredTuple> {
        self.entries.iter()
    }

    /// Insert a tuple at time `now`.
    pub fn insert(&mut self, tuple: Tuple, now: Timestamp) {
        self.bytes += tuple.size_bytes();
        self.entries.push(StoredTuple {
            tuple,
            inserted_at: now,
        });
    }

    /// Remove every tuple that has expired by `now` under `window`; returns
    /// how many were removed.
    ///
    /// Expiry is based on the tuple's own timestamp (its lifespan is
    /// `[ts, ts + w)`), not on when it was inserted — a resumed intermediate
    /// result inserted late still expires at its original time.
    pub fn purge(&mut self, window: Window, now: Timestamp) -> usize {
        let before = self.entries.len();
        let mut freed = 0usize;
        self.entries.retain(|e| {
            if window.is_expired(e.tuple.ts(), now) {
                freed += e.tuple.size_bytes();
                false
            } else {
                true
            }
        });
        self.bytes -= freed;
        before - self.entries.len()
    }

    /// Remove and return every entry for which `pred` holds (used by
    /// `Suspend_Production` to move super-tuples of an MNS into a blacklist).
    pub fn drain_where(&mut self, mut pred: impl FnMut(&StoredTuple) -> bool) -> Vec<StoredTuple> {
        let mut kept = Vec::with_capacity(self.entries.len());
        let mut drained = Vec::new();
        for e in self.entries.drain(..) {
            if pred(&e) {
                self.bytes -= e.tuple.size_bytes();
                drained.push(e);
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;
        drained
    }

    /// Re-insert a previously drained entry, preserving its original
    /// insertion time (used by `Resume_Production`).
    pub fn restore(&mut self, entry: StoredTuple) {
        self.bytes += entry.tuple.size_bytes();
        self.entries.push(entry);
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }
}

impl fmt::Display for OperatorState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples, {} B]", self.name, self.len(), self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Duration, SourceId, Value};
    use std::sync::Arc;

    fn tuple(seq: u64, ts_ms: u64) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            seq,
            Timestamp::from_millis(ts_ms),
            vec![Value::int(seq as i64)],
        )))
    }

    #[test]
    fn insert_updates_len_and_bytes() {
        let mut s = OperatorState::new("S_A");
        assert!(s.is_empty());
        let t = tuple(1, 100);
        let sz = t.size_bytes();
        s.insert(t, Timestamp::from_millis(100));
        assert_eq!(s.len(), 1);
        assert_eq!(s.size_bytes(), sz);
        assert_eq!(s.name(), "S_A");
        assert!(s.to_string().contains("S_A"));
    }

    #[test]
    fn purge_removes_expired_only() {
        let w = Window::new(Duration::from_secs(10));
        let mut s = OperatorState::new("S");
        s.insert(tuple(1, 0), Timestamp::ZERO);
        s.insert(tuple(2, 5_000), Timestamp::from_millis(5_000));
        s.insert(tuple(3, 9_000), Timestamp::from_millis(9_000));
        // At t = 12s the first tuple (alive [0,10s)) has expired.
        let removed = s.purge(w, Timestamp::from_millis(12_000));
        assert_eq!(removed, 1);
        assert_eq!(s.len(), 2);
        // Bytes shrink consistently.
        let expected: usize = s.iter().map(|e| e.tuple.size_bytes()).sum();
        assert_eq!(s.size_bytes(), expected);
        // Nothing more to purge at the same instant.
        assert_eq!(s.purge(w, Timestamp::from_millis(12_000)), 0);
    }

    #[test]
    fn purge_uses_tuple_timestamp_not_insertion_time() {
        let w = Window::new(Duration::from_secs(10));
        let mut s = OperatorState::new("S");
        // Inserted late (resumed), but carries an old timestamp.
        s.insert(tuple(1, 0), Timestamp::from_millis(9_999));
        assert_eq!(s.purge(w, Timestamp::from_millis(10_000)), 1);
        assert!(s.is_empty());
        assert_eq!(s.size_bytes(), 0);
    }

    #[test]
    fn drain_where_moves_matching_entries() {
        let mut s = OperatorState::new("S");
        for i in 0..6 {
            s.insert(tuple(i, i * 100), Timestamp::from_millis(i * 100));
        }
        let drained = s.drain_where(|e| e.tuple.parts()[0].seq % 2 == 0);
        assert_eq!(drained.len(), 3);
        assert_eq!(s.len(), 3);
        let expected: usize = s.iter().map(|e| e.tuple.size_bytes()).sum();
        assert_eq!(s.size_bytes(), expected);
        // Restoring brings them back with their original insertion time.
        let original_time = drained[0].inserted_at;
        for d in drained {
            s.restore(d);
        }
        assert_eq!(s.len(), 6);
        assert!(s.iter().any(|e| e.inserted_at == original_time));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = OperatorState::new("S");
        s.insert(tuple(1, 0), Timestamp::ZERO);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.size_bytes(), 0);
    }

    #[test]
    fn entries_preserve_insertion_order() {
        let mut s = OperatorState::new("S");
        for i in 0..5 {
            s.insert(tuple(i, i), Timestamp::from_millis(i));
        }
        let seqs: Vec<u64> = s.iter().map(|e| e.tuple.parts()[0].seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
